"""Benchmark: the artifact store's warm path vs a cold fleet analysis.

The store's reason to exist is amortization at fleet scale: re-validating
every bundled app after a change that does not touch the analysis should
cost digest lookups and JSON loads, not record walks. The acceptance bar
is a **≥5x** end-to-end speedup of a warm ``analyze-batch`` over the app
fleet versus the cold run that populated the store (measured far above —
the warm path performs zero trace-record decodes, see
``tests/test_store.py``).

Trace generation is kept out of both measurements: the traces are written
once, untimed, into the batch's own reuse location
(``repro.store.batch.app_trace_path``), so cold measures *analysis* and
warm measures *store lookups* — the honest comparison.
"""

from __future__ import annotations

import os

import pytest

from repro.apps.registry import app_names, get_app
from repro.codegen.lowering import compile_source
from repro.store import ArtifactStore, BatchEntry, app_trace_path, run_batch
from repro.tracer.driver import trace_to_file

#: The fleet: the 14 study benchmarks + the worked example + bigarray.
FLEET = app_names(include_example=True) + ["bigarray"]

#: Acceptance bar: warm batch ≥ this factor faster than cold.
WARM_SPEEDUP_BAR = 5.0


@pytest.fixture(scope="module")
def fleet_dirs(tmp_path_factory):
    """Pre-generated binary traces for every fleet app (untimed)."""
    root = tmp_path_factory.mktemp("bench-store")
    trace_dir = str(root / "traces")
    os.makedirs(trace_dir, exist_ok=True)
    for name in FLEET:
        app = get_app(name)
        module = compile_source(app.source(), module_name=app.name)
        path = app_trace_path(trace_dir, app.name)
        trace_to_file(module, path, module_name=app.name, fmt="binary")
    return {"trace_dir": trace_dir, "cache_dir": str(root / "cache")}


def test_warm_batch_beats_cold_by_5x(fleet_dirs):
    entries = [BatchEntry(app=name) for name in FLEET]

    cold = run_batch(entries, workers=1, use_cache=True,
                     cache_dir=fleet_dirs["cache_dir"],
                     trace_dir=fleet_dirs["trace_dir"])
    assert cold.all_ok and cold.misses == len(FLEET)

    warm = run_batch(entries, workers=1, use_cache=True,
                     cache_dir=fleet_dirs["cache_dir"],
                     trace_dir=fleet_dirs["trace_dir"])
    assert warm.all_ok and warm.hits == len(FLEET)

    speedup = cold.seconds / max(warm.seconds, 1e-9)
    print(f"\nartifact store, {len(FLEET)}-app fleet: "
          f"cold {cold.seconds:.3f}s, warm {warm.seconds:.3f}s "
          f"({speedup:.1f}x)")
    assert speedup >= WARM_SPEEDUP_BAR, (
        f"warm analyze-batch is only {speedup:.1f}x faster than cold "
        f"(bar: {WARM_SPEEDUP_BAR}x)")

    # The warm run returned the same critical-variable sets.
    cold_sets = {item.name: item.critical for item in cold.items}
    warm_sets = {item.name: item.critical for item in warm.items}
    assert warm_sets == cold_sets

    # And the store holds exactly one entry per fleet app.
    assert ArtifactStore(fleet_dirs["cache_dir"]).stats().entries == len(FLEET)
