"""Benchmark: a deterministic fault-injection campaign smoke.

A 3-app x critical-content x 2-trial campaign with a pinned seed: every
trial must be restart-equivalent, and the same seed must reproduce the same
report byte-for-byte.  This is the CI-facing smoke for the campaign
subsystem; the full 16-app x 3-content x 3-interval acceptance sweep lives
behind ``autocheck campaign --apps all``.
"""

import pytest

from repro.campaign import CampaignConfig, run_campaign

SMOKE_APPS = ["example", "cg", "himeno"]
SMOKE_SEED = 7


def _smoke_config(tmp_path):
    return CampaignConfig(
        apps=list(SMOKE_APPS),
        content_policies=["critical"],
        interval_policies=["every-k"],
        trials=2,
        seed=SMOKE_SEED,
        cache_dir=str(tmp_path / "cache"),
    )


def test_campaign_smoke(benchmark, once, tmp_path):
    report = once(benchmark, run_campaign, _smoke_config(tmp_path))
    print(f"\n{report.summary()}")
    assert report.all_pass
    assert [verdict.app for verdict in report.apps] == SMOKE_APPS
    for verdict in report.apps:
        assert verdict.saved_bytes_vs_blcr > 0


def test_campaign_smoke_is_reproducible(tmp_path):
    # The second run hits the warm artifact store but must still inject the
    # identical kill schedule and serialize the identical report.
    first = run_campaign(_smoke_config(tmp_path))
    second = run_campaign(_smoke_config(tmp_path))
    assert first.to_json() == second.to_json()


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-v"])
