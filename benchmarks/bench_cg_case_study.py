"""Benchmark: the CG case study of paper Sec. IV-D.

Runs the full pipeline on the CG benchmark and checks the case-study result:
only ``x`` carries a Write-After-Read dependency across main-loop iterations,
and the induction variable ``it`` completes the checkpoint set; the other
Algorithm-2 inputs (z, p, q, r, A) need no checkpoint.
"""

from repro.apps import get_app
from repro.experiments.common import analyze_app


def test_cg_case_study(benchmark, once):
    app = get_app("cg")
    analysis = once(benchmark, analyze_app, app)
    report = analysis.report

    assert report.find("x").dependency.value == "WAR"
    assert report.find("it").dependency.value == "Index"
    for name in ("z", "p", "q", "r", "A"):
        assert report.find(name) is None

    print()
    print("CG case study (paper Sec. IV-D):")
    print(f"  critical variables: {report.dependency_string()}")
    print("  analysis stages   : "
          + ", ".join(f"{k}={v:.3f}s" for k, v in report.timings.stages.items()))
