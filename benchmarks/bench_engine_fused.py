"""Benchmark: the fused single-pass analysis engine vs. the multi-pass
pipeline (the pre-refactor baseline kept behind
``AutoCheckConfig(analysis_engine="multipass")``).

The multi-pass pipeline walks the loop region at least four times — MLI
identification, dependency analysis, R/W extraction, and the
dynamic-induction fallback — and in streaming mode every walk re-streams
the trace file.  The fused engine
(:class:`repro.core.engine.AnalysisEngine`) dispatches all four stages over
**one** record walk.  On the ``bigarray`` app (million-element-capable
arrays, per-iteration callee scratch churn) the acceptance bar is a
**≥1.5x** end-to-end ``analyze`` speedup in streaming mode (measured:
~2.4x, with identical reports asserted record for record).

The file also tracks the columnar block decode
(`AutoCheckConfig(decode="columnar")`, the default for binary traces): the
fused walk consumes column slices per block instead of one ``TraceRecord``
object per record, materializing records only for the rare scope-changing
opcodes.  Acceptance bars on the same bigarray trace: **≥3x records/second**
in the ``fused_analysis`` stage vs the per-record walk, **≥1.0x** end to
end (turning the default on must never regress), byte-identical reports.
The measured numbers are also written to ``BENCH_columnar.json`` at the
repository root for machine consumption.

The file also tracks the opcode-dispatch micro-optimization the engine and
``dependency.py`` build on: classifying a record via the precomputed
raw-value frozensets (``op in FORWARDING_OPCODE_VALUES``) instead of
constructing an ``Opcode`` enum per record (``Opcode(op) in
FORWARDING_OPCODES``) — ~19x faster per check on this machine, bar 3x.
"""

from __future__ import annotations

import gc
import json
import os
import time

import pytest

from repro.apps import get_app
from repro.codegen import compile_source
from repro.core import AutoCheck, AutoCheckConfig
from repro.ir.opcodes import (
    FORWARDING_OPCODES,
    FORWARDING_OPCODE_VALUES,
    Opcode,
)
from repro.tracer.driver import trace_to_file


@pytest.fixture(scope="module")
def bigarray_trace(tmp_path_factory):
    """A binary bigarray trace large enough for stable timing (~80k records)."""
    app = get_app("bigarray")
    source = app.source(size=4096, iterations=32, block=64)
    module = compile_source(source, module_name="bigarray")
    path = str(tmp_path_factory.mktemp("bench-engine") / "bigarray.btrace")
    size, _ = trace_to_file(module, path, fmt="binary")
    return {"path": path, "size": size, "spec": app.main_loop(source)}


def _analyze(path, spec, engine, streaming):
    config = AutoCheckConfig(main_loop=spec, streaming_preprocessing=streaming,
                             analysis_engine=engine)
    return AutoCheck(config, trace_path=path).run()


def _best_of(function, *args, rounds=3):
    """Best-of-N wall time with the GC paused."""
    best = float("inf")
    result = None
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        for _ in range(rounds):
            started = time.perf_counter()
            result = function(*args)
            best = min(best, time.perf_counter() - started)
    finally:
        if gc_was_enabled:
            gc.enable()
    return result, best


def _assert_same_report(fused, multipass):
    assert fused.dependency_string() == multipass.dependency_string()
    assert fused.mli_variable_names == multipass.mli_variable_names
    assert [(e.dyn_id, e.variable, e.kind, e.element_offset)
            for e in fused.rw_sequence.loop_events] == \
        [(e.dyn_id, e.variable, e.kind, e.element_offset)
         for e in multipass.rw_sequence.loop_events]


# --------------------------------------------------------------------------- #
# End-to-end: fused vs. multi-pass
# --------------------------------------------------------------------------- #
def test_fused_streaming_speedup(bigarray_trace):
    """The headline acceptance number: one streamed pass vs. one stream per
    stage, same trace, same report."""
    path, spec = bigarray_trace["path"], bigarray_trace["spec"]
    multipass, multipass_seconds = _best_of(
        _analyze, path, spec, "multipass", True)
    fused, fused_seconds = _best_of(_analyze, path, spec, "fused", True)
    _assert_same_report(fused, multipass)
    records = fused.trace_stats.record_count
    speedup = multipass_seconds / fused_seconds
    print(f"\nstreaming analyze of {bigarray_trace['size']}B "
          f"({records} records): multipass {multipass_seconds:.3f}s "
          f"({records / multipass_seconds / 1000:.0f} krec/s) vs fused "
          f"{fused_seconds:.3f}s ({records / fused_seconds / 1000:.0f} "
          f"krec/s) -> {speedup:.2f}x")
    assert speedup >= 1.5, (
        f"fused single-pass analyze must be >= 1.5x faster than the "
        f"multi-pass streaming pipeline ({multipass_seconds:.3f}s vs "
        f"{fused_seconds:.3f}s = {speedup:.2f}x)")


def test_fused_materialized_not_slower(bigarray_trace):
    """With the trace resident in memory the re-walks are cheap, but the
    fused engine must still at least hold its ground (it also skips the
    per-stage re-iteration there)."""
    path, spec = bigarray_trace["path"], bigarray_trace["spec"]
    multipass, multipass_seconds = _best_of(
        _analyze, path, spec, "multipass", False)
    fused, fused_seconds = _best_of(_analyze, path, spec, "fused", False)
    _assert_same_report(fused, multipass)
    ratio = multipass_seconds / fused_seconds
    print(f"\nmaterialized analyze: multipass {multipass_seconds:.3f}s vs "
          f"fused {fused_seconds:.3f}s -> {ratio:.2f}x")
    assert ratio >= 0.9


def test_fused_pipeline_benchmark(benchmark, bigarray_trace):
    path, spec = bigarray_trace["path"], bigarray_trace["spec"]
    report = benchmark(_analyze, path, spec, "fused", True)
    assert report.critical_variables
    rate = report.timings.records_per_second("fused_analysis")
    print(f"\nfused streaming walk: {rate / 1000:.0f} krec/s")


# --------------------------------------------------------------------------- #
# Columnar block decode vs. per-record walk
# --------------------------------------------------------------------------- #
#: required ``fused_analysis``-stage (decode + walk) throughput ratio
COLUMNAR_WALK_BAR = 3.0
#: turning the columnar default on must never lose end to end
COLUMNAR_END_TO_END_BAR = 1.0
#: machine-readable result file, written at the repository root
BENCH_COLUMNAR_JSON = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_columnar.json")


def _analyze_decode(path, spec, decode):
    # Streaming keeps the decode inside the ``fused_analysis`` stage for
    # *both* modes (the materialized record walk decodes during
    # preprocessing instead), so the stage timings compare decode + walk
    # against decode + walk.
    config = AutoCheckConfig(main_loop=spec, streaming_preprocessing=True,
                             decode=decode)
    return AutoCheck(config, trace_path=path).run()


def _interleaved_best(path, spec, rounds):
    """Best-of-N wall/walk seconds per decode mode, modes interleaved.

    Machine noise on shared runners dwarfs the effect under test, so the
    two modes alternate within each round (a slow round hits both) and
    only the per-mode minimum is compared.
    """
    best = {mode: {"total": float("inf"), "walk": float("inf"),
                   "report": None}
            for mode in ("records", "columnar")}
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        for _ in range(rounds):
            for mode in ("records", "columnar"):
                started = time.perf_counter()
                report = _analyze_decode(path, spec, mode)
                total = time.perf_counter() - started
                slot = best[mode]
                slot["total"] = min(slot["total"], total)
                slot["walk"] = min(slot["walk"],
                                   report.timings.get("fused_analysis"))
                slot["report"] = report
    finally:
        if gc_was_enabled:
            gc.enable()
    return best


def test_columnar_walk_speedup(bigarray_trace):
    """The columnar acceptance number: ≥3x records/second through the
    fused walk (decode included — both modes decode inside the
    ``fused_analysis`` stage), identical report, and no end-to-end loss.
    Also writes ``BENCH_columnar.json``."""
    path, spec = bigarray_trace["path"], bigarray_trace["spec"]
    # Best-of-12: the per-round ratio wobbles +/-10% on shared runners,
    # but both modes reach their floor well within twelve interleaved
    # rounds, and the floor ratio is what the bar is about.
    best = _interleaved_best(path, spec, rounds=12)
    records, columnar = best["records"], best["columnar"]
    _assert_same_report(columnar["report"], records["report"])
    count = columnar["report"].trace_stats.record_count
    walk_speedup = records["walk"] / columnar["walk"]
    total_speedup = records["total"] / columnar["total"]
    payload = {
        "trace": {"records": count, "bytes": bigarray_trace["size"]},
        "records": {
            "walk_seconds": round(records["walk"], 4),
            "walk_krec_per_s": round(count / records["walk"] / 1000, 1),
            "total_seconds": round(records["total"], 4),
        },
        "columnar": {
            "walk_seconds": round(columnar["walk"], 4),
            "walk_krec_per_s": round(count / columnar["walk"] / 1000, 1),
            "total_seconds": round(columnar["total"], 4),
        },
        "walk_speedup": round(walk_speedup, 2),
        "end_to_end_speedup": round(total_speedup, 2),
        "bars": {"walk": COLUMNAR_WALK_BAR,
                 "end_to_end": COLUMNAR_END_TO_END_BAR},
    }
    with open(BENCH_COLUMNAR_JSON, "w", encoding="utf-8") as sink:
        json.dump(payload, sink, indent=2)
        sink.write("\n")
    print(f"\ncolumnar walk of {count} records: records "
          f"{records['walk']:.3f}s ({count / records['walk'] / 1000:.0f} "
          f"krec/s) vs columnar {columnar['walk']:.3f}s "
          f"({count / columnar['walk'] / 1000:.0f} krec/s) -> "
          f"{walk_speedup:.2f}x walk, {total_speedup:.2f}x end to end "
          f"-> {BENCH_COLUMNAR_JSON}")
    assert walk_speedup >= COLUMNAR_WALK_BAR, (
        f"columnar decode must be >= {COLUMNAR_WALK_BAR}x records/second "
        f"through the fused walk ({records['walk']:.3f}s vs "
        f"{columnar['walk']:.3f}s = {walk_speedup:.2f}x)")
    assert total_speedup >= COLUMNAR_END_TO_END_BAR, (
        f"columnar decode must not lose end to end "
        f"({records['total']:.3f}s vs {columnar['total']:.3f}s = "
        f"{total_speedup:.2f}x)")


# --------------------------------------------------------------------------- #
# Opcode-dispatch micro-optimization
# --------------------------------------------------------------------------- #
def test_raw_opcode_check_beats_enum_construction():
    """`op in FORWARDING_OPCODE_VALUES` vs `Opcode(op) in FORWARDING_OPCODES`
    — the per-record check the old dependency walk performed."""
    opcodes = [int(Opcode.LOAD), int(Opcode.STORE), int(Opcode.BITCAST),
               int(Opcode.ADD), int(Opcode.GETELEMENTPTR), int(Opcode.CALL),
               int(Opcode.ZEXT), int(Opcode.BR)] * 2000

    def enum_checks():
        return [Opcode(op) in FORWARDING_OPCODES for op in opcodes]

    def raw_checks():
        return [op in FORWARDING_OPCODE_VALUES for op in opcodes]

    old_result, old_seconds = _best_of(enum_checks, rounds=5)
    new_result, new_seconds = _best_of(raw_checks, rounds=5)
    assert old_result == new_result
    speedup = old_seconds / new_seconds
    print(f"\nopcode classification of {len(opcodes)} records: enum "
          f"{old_seconds * 1000:.1f}ms vs raw {new_seconds * 1000:.1f}ms "
          f"-> {speedup:.1f}x")
    assert speedup >= 3.0
