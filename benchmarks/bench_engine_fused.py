"""Benchmark: the fused single-pass analysis engine vs. the multi-pass
pipeline (the pre-refactor baseline kept behind
``AutoCheckConfig(analysis_engine="multipass")``).

The multi-pass pipeline walks the loop region at least four times — MLI
identification, dependency analysis, R/W extraction, and the
dynamic-induction fallback — and in streaming mode every walk re-streams
the trace file.  The fused engine
(:class:`repro.core.engine.AnalysisEngine`) dispatches all four stages over
**one** record walk.  On the ``bigarray`` app (million-element-capable
arrays, per-iteration callee scratch churn) the acceptance bar is a
**≥1.5x** end-to-end ``analyze`` speedup in streaming mode (measured:
~2.4x, with identical reports asserted record for record).

The file also tracks the opcode-dispatch micro-optimization the engine and
``dependency.py`` build on: classifying a record via the precomputed
raw-value frozensets (``op in FORWARDING_OPCODE_VALUES``) instead of
constructing an ``Opcode`` enum per record (``Opcode(op) in
FORWARDING_OPCODES``) — ~19x faster per check on this machine, bar 3x.
"""

from __future__ import annotations

import gc
import time

import pytest

from repro.apps import get_app
from repro.codegen import compile_source
from repro.core import AutoCheck, AutoCheckConfig
from repro.ir.opcodes import (
    FORWARDING_OPCODES,
    FORWARDING_OPCODE_VALUES,
    Opcode,
)
from repro.tracer.driver import trace_to_file


@pytest.fixture(scope="module")
def bigarray_trace(tmp_path_factory):
    """A binary bigarray trace large enough for stable timing (~80k records)."""
    app = get_app("bigarray")
    source = app.source(size=4096, iterations=32, block=64)
    module = compile_source(source, module_name="bigarray")
    path = str(tmp_path_factory.mktemp("bench-engine") / "bigarray.btrace")
    size, _ = trace_to_file(module, path, fmt="binary")
    return {"path": path, "size": size, "spec": app.main_loop(source)}


def _analyze(path, spec, engine, streaming):
    config = AutoCheckConfig(main_loop=spec, streaming_preprocessing=streaming,
                             analysis_engine=engine)
    return AutoCheck(config, trace_path=path).run()


def _best_of(function, *args, rounds=3):
    """Best-of-N wall time with the GC paused."""
    best = float("inf")
    result = None
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        for _ in range(rounds):
            started = time.perf_counter()
            result = function(*args)
            best = min(best, time.perf_counter() - started)
    finally:
        if gc_was_enabled:
            gc.enable()
    return result, best


def _assert_same_report(fused, multipass):
    assert fused.dependency_string() == multipass.dependency_string()
    assert fused.mli_variable_names == multipass.mli_variable_names
    assert [(e.dyn_id, e.variable, e.kind, e.element_offset)
            for e in fused.rw_sequence.loop_events] == \
        [(e.dyn_id, e.variable, e.kind, e.element_offset)
         for e in multipass.rw_sequence.loop_events]


# --------------------------------------------------------------------------- #
# End-to-end: fused vs. multi-pass
# --------------------------------------------------------------------------- #
def test_fused_streaming_speedup(bigarray_trace):
    """The headline acceptance number: one streamed pass vs. one stream per
    stage, same trace, same report."""
    path, spec = bigarray_trace["path"], bigarray_trace["spec"]
    multipass, multipass_seconds = _best_of(
        _analyze, path, spec, "multipass", True)
    fused, fused_seconds = _best_of(_analyze, path, spec, "fused", True)
    _assert_same_report(fused, multipass)
    records = fused.trace_stats.record_count
    speedup = multipass_seconds / fused_seconds
    print(f"\nstreaming analyze of {bigarray_trace['size']}B "
          f"({records} records): multipass {multipass_seconds:.3f}s "
          f"({records / multipass_seconds / 1000:.0f} krec/s) vs fused "
          f"{fused_seconds:.3f}s ({records / fused_seconds / 1000:.0f} "
          f"krec/s) -> {speedup:.2f}x")
    assert speedup >= 1.5, (
        f"fused single-pass analyze must be >= 1.5x faster than the "
        f"multi-pass streaming pipeline ({multipass_seconds:.3f}s vs "
        f"{fused_seconds:.3f}s = {speedup:.2f}x)")


def test_fused_materialized_not_slower(bigarray_trace):
    """With the trace resident in memory the re-walks are cheap, but the
    fused engine must still at least hold its ground (it also skips the
    per-stage re-iteration there)."""
    path, spec = bigarray_trace["path"], bigarray_trace["spec"]
    multipass, multipass_seconds = _best_of(
        _analyze, path, spec, "multipass", False)
    fused, fused_seconds = _best_of(_analyze, path, spec, "fused", False)
    _assert_same_report(fused, multipass)
    ratio = multipass_seconds / fused_seconds
    print(f"\nmaterialized analyze: multipass {multipass_seconds:.3f}s vs "
          f"fused {fused_seconds:.3f}s -> {ratio:.2f}x")
    assert ratio >= 0.9


def test_fused_pipeline_benchmark(benchmark, bigarray_trace):
    path, spec = bigarray_trace["path"], bigarray_trace["spec"]
    report = benchmark(_analyze, path, spec, "fused", True)
    assert report.critical_variables
    rate = report.timings.records_per_second("fused_analysis")
    print(f"\nfused streaming walk: {rate / 1000:.0f} krec/s")


# --------------------------------------------------------------------------- #
# Opcode-dispatch micro-optimization
# --------------------------------------------------------------------------- #
def test_raw_opcode_check_beats_enum_construction():
    """`op in FORWARDING_OPCODE_VALUES` vs `Opcode(op) in FORWARDING_OPCODES`
    — the per-record check the old dependency walk performed."""
    opcodes = [int(Opcode.LOAD), int(Opcode.STORE), int(Opcode.BITCAST),
               int(Opcode.ADD), int(Opcode.GETELEMENTPTR), int(Opcode.CALL),
               int(Opcode.ZEXT), int(Opcode.BR)] * 2000

    def enum_checks():
        return [Opcode(op) in FORWARDING_OPCODES for op in opcodes]

    def raw_checks():
        return [op in FORWARDING_OPCODE_VALUES for op in opcodes]

    old_result, old_seconds = _best_of(enum_checks, rounds=5)
    new_result, new_seconds = _best_of(raw_checks, rounds=5)
    assert old_result == new_result
    speedup = old_seconds / new_seconds
    print(f"\nopcode classification of {len(opcodes)} records: enum "
          f"{old_seconds * 1000:.1f}ms vs raw {new_seconds * 1000:.1f}ms "
          f"-> {speedup:.1f}x")
    assert speedup >= 3.0
