"""Benchmark: the parallel fused engine vs. the serial fused engine.

The parallel engine (``AutoCheckConfig(analysis_engine="parallel",
workers=N)``) shards the fused single-pass walk across worker processes
over partitions of the block-indexed binary trace: a cheap sequential scope
scan snapshots the live variable map at every partition boundary, workers
run the full per-record pass work seeded from those snapshots, and the
per-partition pass states merge back into a report identical to the serial
fused engine's (see :mod:`repro.core.parallel`).

Acceptance bar on the ``bigarray`` app at 4 workers: **>= 1.2x** end-to-end
speedup over the serial fused engine (target 1.5x) — *when the host
actually has cores to shard over*.  Wall-clock parallel speedup is
physically impossible on a single-core host (the workers time-slice one
CPU and only the coordination overhead remains visible), so on such hosts
the speedup assertion is replaced by an overhead bound plus the
machine-independent properties that make the speedup real on multi-core
hardware:

* report equality is asserted record-for-record in every configuration;
* the sequential phase-1 scope scan — the Amdahl term that caps the
  speedup — must stay a small fraction of the serial fused walk.
"""

from __future__ import annotations

import gc
import os
import time

import pytest

from repro.apps import get_app
from repro.codegen import compile_source
from repro.core import AutoCheck, AutoCheckConfig
from repro.tracer.driver import trace_to_file

#: Acceptance bar (and the target the design aims for).
SPEEDUP_BAR = 1.2
SPEEDUP_TARGET = 1.5
WORKERS = 4


def _effective_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


@pytest.fixture(scope="module")
def bigarray_trace(tmp_path_factory):
    """A binary bigarray trace large enough for stable timing (~80k records)."""
    app = get_app("bigarray")
    source = app.source(size=4096, iterations=32, block=64)
    module = compile_source(source, module_name="bigarray")
    path = str(tmp_path_factory.mktemp("bench-parallel") / "bigarray.btrace")
    size, _ = trace_to_file(module, path, fmt="binary")
    return {"path": path, "size": size, "spec": app.main_loop(source)}


def _analyze(path, spec, engine, workers=WORKERS):
    config = AutoCheckConfig(main_loop=spec, analysis_engine=engine,
                             workers=workers,
                             streaming_preprocessing=(engine == "fused"))
    return AutoCheck(config, trace_path=path).run()


def _best_of(function, *args, rounds=3):
    """Best-of-N wall time with the GC paused."""
    best = float("inf")
    result = None
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        for _ in range(rounds):
            started = time.perf_counter()
            result = function(*args)
            best = min(best, time.perf_counter() - started)
    finally:
        if gc_was_enabled:
            gc.enable()
    return result, best


def _assert_same_report(parallel, fused):
    assert parallel.dependency_string() == fused.dependency_string()
    assert parallel.mli_variable_names == fused.mli_variable_names
    assert sorted(parallel.complete_ddg.edges()) == \
        sorted(fused.complete_ddg.edges())
    assert [(event.dyn_id, event.variable, event.kind, event.element_offset)
            for event in parallel.rw_sequence.loop_events] == \
        [(event.dyn_id, event.variable, event.kind, event.element_offset)
         for event in fused.rw_sequence.loop_events]


# --------------------------------------------------------------------------- #
# End-to-end: parallel vs. serial fused
# --------------------------------------------------------------------------- #
def test_parallel_speedup(bigarray_trace):
    """The headline acceptance number: the sharded walk vs. one serial
    pass, same binary trace, same report."""
    path, spec = bigarray_trace["path"], bigarray_trace["spec"]
    fused, fused_seconds = _best_of(_analyze, path, spec, "fused")
    parallel, parallel_seconds = _best_of(_analyze, path, spec, "parallel")
    _assert_same_report(parallel, fused)
    records = fused.trace_stats.record_count
    speedup = fused_seconds / parallel_seconds
    cores = _effective_cores()
    print(f"\nparallel analyze of {bigarray_trace['size']}B "
          f"({records} records, {cores} cores): fused {fused_seconds:.3f}s "
          f"({records / fused_seconds / 1000:.0f} krec/s) vs parallel@"
          f"{WORKERS}w {parallel_seconds:.3f}s "
          f"({records / parallel_seconds / 1000:.0f} krec/s) "
          f"-> {speedup:.2f}x (bar {SPEEDUP_BAR}x, target {SPEEDUP_TARGET}x)")
    if cores < 2:
        # One schedulable CPU: the workers time-slice a single core, so a
        # wall-clock speedup cannot exist here.  Bound the sharding
        # overhead instead (scan + fan-out + merge must stay cheap), then
        # skip the speedup bar with an explicit reason.
        assert parallel_seconds <= fused_seconds * 2.5, (
            f"single-core sharding overhead exploded: {parallel_seconds:.3f}s "
            f"vs fused {fused_seconds:.3f}s")
        pytest.skip(f"host exposes {cores} CPU core(s); the >= "
                    f"{SPEEDUP_BAR}x wall-clock bar needs >= 2")
    assert speedup >= SPEEDUP_BAR, (
        f"parallel fused analyze must be >= {SPEEDUP_BAR}x faster than the "
        f"serial fused engine on a {cores}-core host ({fused_seconds:.3f}s "
        f"vs {parallel_seconds:.3f}s = {speedup:.2f}x)")


def test_scope_scan_stays_amdahl_friendly(bigarray_trace):
    """The phase-1 scan is the sequential term that bounds the achievable
    speedup; it must stay a small fraction of the serial fused walk
    (machine-independent — it holds on any core count)."""
    path, spec = bigarray_trace["path"], bigarray_trace["spec"]
    fused, fused_seconds = _best_of(_analyze, path, spec, "fused")
    parallel, _ = _best_of(_analyze, path, spec, "parallel", 1)
    _assert_same_report(parallel, fused)
    scan_seconds = parallel.timings.get("scope_scan")
    assert scan_seconds > 0
    fraction = scan_seconds / fused_seconds
    print(f"\nscope scan: {scan_seconds:.3f}s = {fraction:.0%} of the "
          f"serial fused walk ({fused_seconds:.3f}s)")
    assert fraction <= 0.5, (
        f"phase-1 scope scan costs {fraction:.0%} of a full serial walk — "
        f"it no longer leaves room for parallel speedup")


def test_worker_counts_all_match(bigarray_trace):
    path, spec = bigarray_trace["path"], bigarray_trace["spec"]
    fused = _analyze(path, spec, "fused")
    for workers in (1, 2, WORKERS):
        parallel = _analyze(path, spec, "parallel", workers)
        _assert_same_report(parallel, fused)


def test_parallel_pipeline_benchmark(benchmark, bigarray_trace):
    path, spec = bigarray_trace["path"], bigarray_trace["spec"]
    report = benchmark(_analyze, path, spec, "parallel")
    assert report.critical_variables
    rate = report.timings.records_per_second("parallel_walk")
    print(f"\nparallel walk: {rate / 1000:.0f} krec/s "
          f"across {WORKERS} workers")
