"""Benchmark: regenerate the paper's Fig. 4/5 worked example.

Reproduces the complete/contracted DDG and the R/W dependency sequence of the
example code and checks the critical variables match the paper's hand
analysis (r WAR, a RAPO, sum Outcome, it Index).
"""

from repro.experiments.figure5 import run_figure5


def test_figure5_worked_example(benchmark, once):
    result = once(benchmark, run_figure5)

    assert set(result.mli_variables) == {"a", "b", "sum", "s", "r"}
    assert result.critical_variables == {
        "r": "WAR", "a": "RAPO", "sum": "Outcome", "it": "Index"}
    assert ("r", "a") in result.contracted_edges
    assert ("a", "sum") in result.contracted_edges

    print()
    print(result.summary())
