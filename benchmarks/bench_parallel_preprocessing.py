"""Benchmark: the trace I/O and pre-processing matrix (paper Sec. V-A).

The paper partitions the trace file into block-aligned sub-streams parsed by
worker threads.  This benchmark tracks the full matrix the repo now
supports, on the largest generated trace (the ``cg`` app):

====================  =========================================
axis                  variants
====================  =========================================
encoding              text (LLVM-Tracer-like) vs. block-indexed binary
read strategy         serial vs. partition-parallel
pre-processing        materialized vs. single-pass streaming
====================  =========================================

Every variant is checked for *full record equality* (not just dynamic-id
equality) against the serial text reader, so a speedup can never come from
silently dropping or duplicating records — the failure mode of the old
byte/character-confused partitioner.  The binary serial read is additionally
asserted to be at least 2x faster than the text serial read, which is the
speedup the block-indexed format exists to deliver.
"""

import gc
import time

import pytest

from repro.apps import get_app
from repro.codegen import compile_source
from repro.core import AutoCheck, AutoCheckConfig
from repro.tracer.driver import trace_to_file
from repro.trace.binio import (
    read_trace_file_binary,
    read_trace_file_binary_parallel,
)
from repro.trace.partition import read_trace_file_parallel
from repro.trace.textio import read_trace_file


@pytest.fixture(scope="module")
def big_trace_files(tmp_path_factory):
    """The cg trace in both encodings, plus its main-loop spec."""
    app = get_app("cg")
    source = app.source()
    module = compile_source(source, module_name="cg")
    directory = tmp_path_factory.mktemp("bench-traces")
    text_path = str(directory / "cg.trace")
    binary_path = str(directory / "cg.btrace")
    text_size, _ = trace_to_file(module, text_path, fmt="text")
    binary_size, _ = trace_to_file(module, binary_path, fmt="binary")
    spec = app.main_loop(source)
    return {
        "text": (text_path, text_size),
        "binary": (binary_path, binary_size),
        "spec": spec,
    }


@pytest.fixture(scope="module")
def reference_records(big_trace_files):
    """Ground truth: the serial text reader's records."""
    path, _ = big_trace_files["text"]
    return read_trace_file(path).records


def _best_of(function, *args, rounds=3):
    """Best-of-N wall time with the GC paused (the other benchmark tests in
    this module keep whole traces alive, and collector pauses triggered by
    those millions of unrelated objects would otherwise dominate the
    comparison)."""
    best = float("inf")
    result = None
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        for _ in range(rounds):
            started = time.perf_counter()
            result = function(*args)
            best = min(best, time.perf_counter() - started)
    finally:
        if gc_was_enabled:
            gc.enable()
    return result, best


# --------------------------------------------------------------------------- #
# Serial reads: text vs. binary
# --------------------------------------------------------------------------- #
def test_serial_trace_read(benchmark, big_trace_files):
    path, size = big_trace_files["text"]
    trace = benchmark(read_trace_file, path)
    assert len(trace.records) > 10_000
    print(f"\ntext serial read of {size} bytes -> {len(trace.records)} records")


def test_binary_serial_trace_read(benchmark, big_trace_files,
                                  reference_records):
    path, size = big_trace_files["binary"]
    trace = benchmark(read_trace_file_binary, path)
    assert trace.records == reference_records
    print(f"\nbinary serial read of {size} bytes -> {len(trace.records)} records")


def test_binary_serial_is_2x_faster_than_text(big_trace_files):
    """The headline acceptance number for the binary format."""
    text_path, text_size = big_trace_files["text"]
    binary_path, binary_size = big_trace_files["binary"]
    text_trace, text_seconds = _best_of(read_trace_file, text_path)
    binary_trace, binary_seconds = _best_of(read_trace_file_binary, binary_path)
    assert binary_trace.records == text_trace.records
    speedup = text_seconds / binary_seconds
    print(f"\ntext {text_size}B in {text_seconds:.3f}s vs binary "
          f"{binary_size}B in {binary_seconds:.3f}s -> {speedup:.2f}x")
    assert speedup >= 2.0, (
        f"binary serial read must be >= 2x faster than text "
        f"({text_seconds:.3f}s vs {binary_seconds:.3f}s = {speedup:.2f}x)")


# --------------------------------------------------------------------------- #
# Parallel reads
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("workers", [2, 4, 8])
def test_parallel_trace_read(benchmark, big_trace_files, reference_records,
                             workers):
    path, size = big_trace_files["text"]
    trace = benchmark(read_trace_file_parallel, path, num_workers=workers)
    assert trace.records == reference_records
    print(f"\ntext parallel read ({workers} workers) of {size} bytes -> "
          f"{len(trace.records)} records")


@pytest.mark.parametrize("workers", [2, 4, 8])
def test_binary_parallel_trace_read(benchmark, big_trace_files,
                                    reference_records, workers):
    path, size = big_trace_files["binary"]
    trace = benchmark(read_trace_file_binary_parallel, path,
                      num_workers=workers)
    assert trace.records == reference_records
    print(f"\nbinary parallel read ({workers} workers) of {size} bytes -> "
          f"{len(trace.records)} records")


# --------------------------------------------------------------------------- #
# Streaming vs. materialized pre-processing
# --------------------------------------------------------------------------- #
def _run_pipeline(path, spec, streaming):
    config = AutoCheckConfig(main_loop=spec,
                             streaming_preprocessing=streaming)
    return AutoCheck(config, trace_path=path).run()


@pytest.mark.parametrize("encoding", ["text", "binary"])
def test_materialized_pipeline(benchmark, big_trace_files, encoding):
    path, _ = big_trace_files[encoding]
    report = benchmark(_run_pipeline, path, big_trace_files["spec"], False)
    assert report.critical_variables
    print(f"\nmaterialized pipeline ({encoding}): "
          f"{report.dependency_string()}")


@pytest.mark.parametrize("encoding", ["text", "binary"])
def test_streaming_pipeline(benchmark, big_trace_files, encoding):
    path, _ = big_trace_files[encoding]
    report = benchmark(_run_pipeline, path, big_trace_files["spec"], True)
    reference = _run_pipeline(path, big_trace_files["spec"], False)
    assert report.dependency_string() == reference.dependency_string()
    assert report.mli_variable_names == reference.mli_variable_names
    print(f"\nstreaming pipeline ({encoding}): {report.dependency_string()}")
