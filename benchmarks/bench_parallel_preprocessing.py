"""Benchmark: the parallel trace pre-processing optimization (paper Sec. V-A).

The paper partitions the trace file into block-aligned sub-streams parsed by
worker threads.  This benchmark measures serial vs. partitioned reading of
the largest generated trace and checks the parallel result is identical
record for record (the speedup itself is hardware dependent; the paper
reports ~16x with 48 OpenMP threads on multi-hundred-MB traces).
"""

import pytest

from repro.apps import get_app
from repro.codegen import compile_source
from repro.tracer.driver import trace_to_file
from repro.trace.partition import read_trace_file_parallel
from repro.trace.textio import read_trace_file


@pytest.fixture(scope="module")
def big_trace_file(tmp_path_factory):
    app = get_app("cg")
    source = app.source()
    module = compile_source(source, module_name="cg")
    path = str(tmp_path_factory.mktemp("bench-traces") / "cg.trace")
    size, _ = trace_to_file(module, path)
    return path, size


def test_serial_trace_read(benchmark, big_trace_file):
    path, size = big_trace_file
    trace = benchmark(read_trace_file, path)
    assert len(trace.records) > 10_000
    print(f"\nserial read of {size} bytes -> {len(trace.records)} records")


@pytest.mark.parametrize("workers", [2, 4, 8])
def test_parallel_trace_read(benchmark, big_trace_file, workers):
    path, size = big_trace_file
    trace = benchmark(read_trace_file_parallel, path, num_workers=workers)
    serial = read_trace_file(path)
    assert [r.dyn_id for r in trace.records] == [r.dyn_id for r in serial.records]
    print(f"\nparallel read ({workers} workers) of {size} bytes -> "
          f"{len(trace.records)} records")
