"""Benchmark: the serve daemon over the full bundled-app fleet.

Two smoke-level acceptance checks for analysis-as-a-service:

* **equality under concurrency** — every response the daemon produces
  while being hammered from a thread pool is byte-identical to a cold
  serial ``AutoCheck.run`` of the same app (the canonical wire encoding,
  ``canonical_report_json``).  This is the subset CI runs (``-k
  equality``): correctness first, the throughput bar stays local.
* **warm throughput** — once the fleet's artifacts are stored, the
  daemon answers warm requests as O(1) store reads; the measured
  requests/second figure is written to ``BENCH_serve.json`` at the
  repository root for machine consumption, with a deliberately
  conservative floor so shared runners don't flake.
"""

from __future__ import annotations

import json
import os
import random
import time
from concurrent.futures import ThreadPoolExecutor
from types import SimpleNamespace

import pytest

from repro.apps.registry import app_names
from repro.serve import AnalysisServer, ServeClient
from repro.store.batch import prepare_app_analysis
from repro.store.serialize import canonical_report_json

#: Every bundled application: the 14 study benchmarks + example + bigarray.
ALL_APP_NAMES = app_names(include_example=True) + ["bigarray"]

#: warm requests must clear this floor (local machines do far better; the
#: floor only guards against pathological serialization on the warm path)
WARM_RPS_BAR = 10.0
#: machine-readable result file, written at the repository root
BENCH_SERVE_JSON = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_serve.json")

SEED = 20240808
THREADS = 8
WARM_REQUESTS = 160


@pytest.fixture(scope="module")
def serve_fleet(tmp_path_factory):
    """A daemon plus cold serial reference bytes for every bundled app."""
    root = tmp_path_factory.mktemp("bench-serve")
    trace_dir = str(root / "traces")
    expected = {}
    cold_started = time.perf_counter()
    for name in ALL_APP_NAMES:
        prepared = prepare_app_analysis(name, use_cache=False,
                                        trace_dir=trace_dir)
        expected[name] = canonical_report_json(prepared.autocheck.run()
                                               ).encode()
    cold_seconds = time.perf_counter() - cold_started

    server = AnalysisServer(port=0, workers=4, queue_limit=64,
                            cache_dir=str(root / "cache"),
                            trace_dir=trace_dir).start()
    yield SimpleNamespace(server=server,
                          client=ServeClient(server.host, server.port),
                          expected=expected, cold_seconds=cold_seconds)
    server.close(graceful=True, timeout=120.0)


def test_serve_fleet_equality(serve_fleet):
    """Concurrent daemon responses == cold serial runs, byte for byte."""
    rng = random.Random(SEED)
    schedule = ALL_APP_NAMES * 2
    rng.shuffle(schedule)

    with ThreadPoolExecutor(max_workers=THREADS) as pool:
        results = list(pool.map(serve_fleet.client.analyze_app, schedule))

    for app_name, (status, _, body) in zip(schedule, results):
        assert status == 200, (app_name, status, body)
        assert body == serve_fleet.expected[app_name], app_name

    snap = serve_fleet.server.stats_snapshot()
    assert snap["jobs"]["failed"] == 0
    assert snap["store"]["entries"] == len(ALL_APP_NAMES)


def test_serve_warm_throughput(serve_fleet):
    """Measure warm requests/second over the fleet; write BENCH_serve.json."""
    client = serve_fleet.client
    # Make sure every artifact exists (independent of test ordering).
    for name in ALL_APP_NAMES:
        status, _, _ = client.analyze_app(name)
        assert status == 200

    rng = random.Random(SEED + 1)
    schedule = [rng.choice(ALL_APP_NAMES) for _ in range(WARM_REQUESTS)]
    started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=THREADS) as pool:
        results = list(pool.map(client.analyze_app, schedule))
    elapsed = time.perf_counter() - started

    hits = sum(1 for _, headers, _ in results
               if headers["x-autocheck-cache"] == "hit")
    assert hits == len(schedule), "warm hammer must be all store hits"
    rps = len(schedule) / elapsed

    payload = {
        "fleet": {"apps": len(ALL_APP_NAMES),
                  "cold_serial_seconds": round(serve_fleet.cold_seconds, 2)},
        "warm": {"requests": len(schedule), "threads": THREADS,
                 "seconds": round(elapsed, 3),
                 "requests_per_second": round(rps, 1)},
        "bars": {"warm_requests_per_second": WARM_RPS_BAR},
    }
    with open(BENCH_SERVE_JSON, "w", encoding="utf-8") as sink:
        json.dump(payload, sink, indent=2)
        sink.write("\n")
    print(f"\nserve warm hammer: {len(schedule)} requests over "
          f"{len(ALL_APP_NAMES)} apps in {elapsed:.2f}s ({rps:.0f} req/s; "
          f"cold serial fleet {serve_fleet.cold_seconds:.1f}s)")
    assert rps >= WARM_RPS_BAR
