"""Benchmark: the static engine prefilter must pay for itself.

The fused engine dispatches every record to every subscribed pass.  The
static prefilter (:mod:`repro.static.prefilter`) skips pass dispatch for
records the IR analysis proves irrelevant — but a skip decision that costs
as much as the callbacks it avoids is a net loss, so this benchmark holds
the feature to two acceptance numbers:

* **report equality, fleet-wide** — for every bundled app the prefiltered
  run must serialize to exactly the unfiltered report (modulo timings and
  the prefilter stats block), while actually skipping records (the count
  must be positive everywhere: each app has at least pre-loop setup whose
  records never reach the static candidate set);
* **records/sec** — on an init-heavy ``bigarray`` configuration (a large
  pre-loop initialization phase over an array the main loop never touches,
  the regime the filter targets) the prefiltered analysis must sustain
  >= 1.15x the unfiltered records/sec.  The current implementation
  measures ~1.3x: non-memory records resolve against a precomputed
  opcode set without a Python call, memory records through a closure with
  every table bound as a local.
"""

from __future__ import annotations

import time
from typing import Tuple

import pytest

from repro.apps import get_app
from repro.apps.registry import app_names
from repro.codegen import compile_source
from repro.core.config import AutoCheckConfig
from repro.core.pipeline import AutoCheck
from repro.core.report import AutoCheckReport
from repro.store.serialize import report_to_dict
from repro.tracer.driver import run_and_trace

#: the prefilter's showcase workload: six pre-loop initialization sweeps
#: over a dedicated ``seed`` array produce a before-region that dwarfs the
#: two main-loop iterations — exactly the records the filter can prove
#: irrelevant.
INIT_HEAVY = {"size": 65536, "iterations": 2, "block": 2048,
              "init_sweeps": 12}

SPEEDUP_BAR = 1.15


def _comparable(report: AutoCheckReport) -> dict:
    """The serialized report minus run-dependent blocks (timings, prefilter
    stats) — the equality the filter must preserve bit-for-bit."""
    data = report_to_dict(report)
    data.pop("timings", None)
    data.pop("prefilter", None)
    return data


def _analyze(app_name: str, params: dict, *,
             static_prefilter: bool) -> Tuple[AutoCheckReport, int, float]:
    """One full pipeline run; returns (report, record count, seconds)."""
    app = get_app(app_name)
    source = app.source(**params)
    module = compile_source(source, module_name=app_name)
    spec = app.main_loop(source)
    trace, result = run_and_trace(module, module_name=app_name, seed=314159)
    assert not result.failed
    options = dict(app.autocheck_options)
    config = AutoCheckConfig(main_loop=spec, static_prefilter=static_prefilter,
                             **options)
    started = time.perf_counter()
    report = AutoCheck(config, trace=trace, module=module).run()
    return report, len(trace), time.perf_counter() - started


def test_report_equality_fleet_wide():
    """Every bundled app: prefiltered report == unfiltered report, with a
    positive skip count."""
    fleet = app_names(include_example=True) + ["bigarray"]
    for name in fleet:
        plain, _, _ = _analyze(name, {}, static_prefilter=False)
        filtered, _, _ = _analyze(name, {}, static_prefilter=True)
        assert _comparable(plain) == _comparable(filtered), (
            f"{name}: prefiltered report diverges from the unfiltered run")
        info = filtered.prefilter_info
        assert info is not None, f"{name}: prefiltered run carries no stats"
        assert info.skipped_records > 0, (
            f"{name}: the prefilter skipped nothing")
    print(f"\nreport equality holds on all {len(fleet)} bundled apps")


@pytest.fixture(scope="module")
def init_heavy_setup():
    app = get_app("bigarray")
    source = app.source(**INIT_HEAVY)
    module = compile_source(source, module_name="bigarray")
    spec = app.main_loop(source)
    trace, result = run_and_trace(module, module_name="bigarray", seed=314159)
    assert not result.failed
    return module, spec, trace


def test_records_per_second_bar(init_heavy_setup):
    """Acceptance: >= 1.15x records/sec on the init-heavy bigarray config,
    with the report unchanged and the skip count dominated by the
    initialization records."""
    module, spec, trace = init_heavy_setup
    records = len(trace)

    def best_of(static_prefilter: bool, rounds: int = 3):
        best, report = float("inf"), None
        for _ in range(rounds):
            config = AutoCheckConfig(main_loop=spec,
                                     static_prefilter=static_prefilter)
            runner = AutoCheck(config, trace=trace, module=module)
            started = time.perf_counter()
            report = runner.run()
            best = min(best, time.perf_counter() - started)
        return report, best

    plain, plain_seconds = best_of(False)
    filtered, filtered_seconds = best_of(True)

    assert _comparable(plain) == _comparable(filtered)
    info = filtered.prefilter_info
    assert info is not None and info.skipped_records > 0
    # The init sweeps alone contribute hundreds of thousands of records the
    # main loop provably cannot depend on; the filter must catch the bulk.
    assert info.skipped_records > records // 3

    speedup = plain_seconds / filtered_seconds
    print(f"\nstatic prefilter ({records} records, "
          f"{info.skipped_records} skipped): "
          f"off {records / plain_seconds:,.0f} rec/s, "
          f"on {records / filtered_seconds:,.0f} rec/s -> {speedup:.2f}x")
    assert speedup >= SPEEDUP_BAR, (
        f"prefiltered analysis must sustain >= {SPEEDUP_BAR}x records/sec "
        f"({plain_seconds:.3f}s unfiltered vs {filtered_seconds:.3f}s "
        f"prefiltered = {speedup:.2f}x)")
