"""Benchmark: regenerate paper Table II (identified critical variables).

One benchmark per application: generate the dynamic trace to a file, run the
full AutoCheck pipeline, and check the identified (variable, dependency type)
set equals the paper's row for that benchmark.  A final collector prints the
assembled table in the paper's layout.
"""

import pytest

from repro.apps import APP_ORDER, get_app
from repro.experiments.common import analyze_app
from repro.experiments.table2 import Table2Row, format_table2

_ROWS = {}


@pytest.mark.parametrize("name", APP_ORDER)
def test_table2_row(benchmark, once, name, tmp_path):
    app = get_app(name)
    analysis = once(benchmark, analyze_app, app, trace_dir=str(tmp_path))

    got = {v.name: v.dependency.value for v in analysis.report.critical_variables}
    assert got == dict(app.expected_critical), analysis.mismatch_description()

    _ROWS[name] = Table2Row(
        name=app.title,
        description=app.description,
        loc=analysis.source_loc,
        trace_bytes=analysis.trace_bytes or 0,
        trace_generation_seconds=analysis.trace_generation_seconds,
        critical_variables=analysis.report.dependency_string(),
        mclr=analysis.report.main_loop.mclr,
        matches_paper=analysis.matches_expected,
        mismatch=analysis.mismatch_description(),
        analysis=analysis,
    )


def test_table2_print_assembled(benchmark, once):
    def assemble():
        return [_ROWS[name] for name in APP_ORDER if name in _ROWS]

    rows = once(benchmark, assemble)
    if rows:
        print()
        print("Table II (regenerated):")
        print(format_table2(rows))
    assert all(row.matches_paper for row in rows)
