"""Benchmark: regenerate paper Table III (analysis-time breakdown).

Times the three AutoCheck stages per benchmark — pre-processing (serial and
with the parallel partitioned trace reader), dependency analysis, and
critical-variable identification — and prints the assembled table.  The
paper's qualitative findings are asserted: pre-processing (trace reading)
dominates the total analysis time and the identification stage is the
cheapest.
"""

from repro.experiments.table3 import format_table3, run_table3

#: A representative spread of small / medium / large traces; running all 14
#: here would only repeat the same measurement (the full table is available
#: via `autocheck table3`).
SELECTION = ["hpccg", "is", "mg", "cg", "amg"]


def test_table3_breakdown(benchmark, once, tmp_path):
    rows = once(benchmark, run_table3, apps=SELECTION, trace_dir=str(tmp_path))

    print()
    print("Table III (regenerated, seconds):")
    print(format_table3(rows))

    for row in rows:
        # Pre-processing reads every instruction from the trace file and is
        # the most expensive stage (paper Sec. VI-C).
        assert row.preprocessing_serial >= row.dependency_analysis * 0.5
        assert row.identify_variables <= row.preprocessing_serial
        assert row.total_serial > 0

    # Larger traces cost more total analysis time (AMG's trace is the largest
    # of the selection, HPCCG's the smallest) — the paper's linear-in-trace
    # observation.
    by_name = {row.name: row for row in rows}
    assert by_name["AMG (ECP)"].total_serial > by_name["HPCCG"].total_serial
