"""Benchmark: regenerate paper Table IV (checkpoint storage cost).

For every benchmark, compare the bytes a BLCR-style whole-process checkpoint
would need against the bytes of the AutoCheck-selected critical variables on
the larger input, and assert the paper's qualitative result: AutoCheck's
checkpoints are orders of magnitude smaller for every benchmark.
"""

from repro.experiments.table4 import format_table4, run_table4


def test_table4_storage_cost(benchmark, once):
    rows = once(benchmark, run_table4)

    print()
    print("Table IV (regenerated):")
    print(format_table4(rows))

    assert len(rows) == 14
    for row in rows:
        assert row.autocheck_bytes > 0
        assert row.blcr_bytes > row.autocheck_bytes, row.name
        # "significantly lower storage cost" — at least two orders of
        # magnitude on every benchmark (the paper reports up to seven).
        assert row.ratio >= 100, f"{row.name}: ratio only {row.ratio:.1f}"
