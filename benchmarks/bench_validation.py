"""Benchmark: the Sec. VI-B validation study (fail-stop + restart).

For every one of the 14 benchmarks: checkpoint the AutoCheck-detected
variables with the FTI-like library, kill the run mid-loop, restart from the
latest checkpoint, and verify the combined output equals the failure-free
run.  This is the "all the 14 benchmarks restart successfully" claim.
(The per-variable false-positive ablation is exercised in the unit tests and
the `autocheck validate` harness; it is omitted here to keep the benchmark
run time moderate.)
"""

import pytest

from repro.apps import APP_ORDER, get_app
from repro.checkpoint import RestartValidator
from repro.experiments.common import analyze_app


@pytest.mark.parametrize("name", APP_ORDER)
def test_restart_validation(benchmark, once, name):
    app = get_app(name)

    def study():
        analysis = analyze_app(app)
        report = analysis.report
        with RestartValidator(analysis.module, report.main_loop,
                              benchmark=name) as validator:
            return report, validator.validate(report.names(), fail_at_iteration=3)

    report, outcome = once(benchmark, study)
    print(f"\n{name}: protected {', '.join(report.names())} -> "
          f"restart {'successful' if outcome.restart_successful else 'FAILED'}")
    assert outcome.restart_successful
