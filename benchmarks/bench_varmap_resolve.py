"""Benchmark: address resolution on the bisect-indexed interval store.

The variable map is the oracle every analysis stage queries ("which variable
owns address X?"), so its complexity bounds the whole pipeline.  The old
implementation indexed **every element address** of every allocation in a
dict and fell back to a reversed linear interval scan for everything else —
O(total array elements) memory and O(intervals) per off-index lookup.  The
interval store keeps one live segment per allocation (split/evicted on
overlap) and resolves any byte address with one bisect.

This benchmark builds both maps from the ``bigarray`` synthetic app (two
million-element stack arrays, per-iteration callee scratch churn) and
checks the two acceptance numbers:

* **index memory is O(intervals)** — the segment count is identical for the
  4k-element and the 1M-element configuration, and the measured index
  footprint is orders of magnitude below the legacy per-element dict;
* **resolve throughput** — build + a mixed boundary/interior/miss resolve
  workload is >= 1.5x faster than the legacy design on the million-element
  configuration (in practice the gap is far larger: the legacy map pays two
  million dict inserts before it can answer anything).
"""

from __future__ import annotations

import time
import tracemalloc
from typing import Dict, List, Optional

import pytest

from repro.apps import get_app
from repro.codegen import compile_source
from repro.core.varmap import VariableInfo, VariableMap, build_variable_map
from repro.tracer.driver import run_and_trace


class LegacyVariableMap:
    """The pre-interval-store design, kept here as the benchmark baseline:
    a dict entry per element address, last-registered-wins via dict
    overwrite, reversed linear scan for addresses off the element grid."""

    def __init__(self) -> None:
        self._intervals: List[VariableInfo] = []
        self._address_index: Dict[int, VariableInfo] = {}

    def add(self, info: VariableInfo) -> None:
        self._intervals.append(info)
        step = info.element_bytes
        for offset in range(0, max(info.size_bytes, step), step):
            self._address_index[info.base_address + offset] = info

    def resolve(self, address: Optional[int]) -> Optional[VariableInfo]:
        if address is None:
            return None
        info = self._address_index.get(address)
        if info is not None:
            return info
        for candidate in reversed(self._intervals):
            if candidate.contains(address):
                return candidate
        return None


def _trace_for(size: int):
    app = get_app("bigarray")
    source = app.source(size=size)
    module = compile_source(source, module_name="bigarray")
    trace, result = run_and_trace(module, module_name="bigarray")
    assert not result.failed
    return trace


def _infos(trace) -> List[VariableInfo]:
    """The allocation list both builders are fed — enumerated once, outside
    any timed region, so neither design is charged for the other's work."""
    return list(build_variable_map(trace.globals, trace.records,
                                   function="main"))


def _build_interval(infos: List[VariableInfo]) -> VariableMap:
    varmap = VariableMap()
    for info in infos:
        varmap.add(info)
    return varmap


def _build_legacy(infos: List[VariableInfo]) -> LegacyVariableMap:
    legacy = LegacyVariableMap()
    for info in infos:
        legacy.add(info)
    return legacy


def _workload(trace, probes: int = 50_000) -> List[int]:
    """A deterministic mix of element-boundary, interior and miss addresses
    spanning the app's allocations."""
    intervals = [(info.base_address, info.end_address, info.element_bytes)
                 for info in _infos(trace)]
    lo = min(start for start, _, _ in intervals)
    hi = max(end for _, end, _ in intervals)
    span = hi - lo
    addresses = []
    for i in range(probes):
        base = lo + (i * 2654435761) % span          # deterministic spread
        if i % 3 == 0:
            base -= base % 8                          # element boundary
        elif i % 3 == 1:
            base |= 1                                 # interior byte
        else:
            base = hi + (i % 4096)                    # miss past the arrays
        addresses.append(base)
    return addresses


@pytest.fixture(scope="module")
def million_trace():
    return _trace_for(1_000_000)


@pytest.fixture(scope="module")
def small_trace():
    return _trace_for(4096)


def test_index_memory_is_o_intervals(small_trace, million_trace):
    small_map = build_variable_map(small_trace.globals, small_trace.records,
                                   function="main")
    big_map = build_variable_map(million_trace.globals, million_trace.records,
                                 function="main")
    # One live segment per allocation, regardless of element count.
    assert big_map.index_entry_count == small_map.index_entry_count
    assert big_map.index_entry_count <= len(big_map)
    big_info = big_map.latest_by_name("big")
    assert big_info.element_count == 1_000_000

    infos = _infos(million_trace)
    tracemalloc.start()
    snapshot_before = tracemalloc.take_snapshot()
    interval_map = _build_interval(infos)
    interval_bytes = sum(
        stat.size_diff for stat in
        tracemalloc.take_snapshot().compare_to(snapshot_before, "filename"))
    snapshot_before = tracemalloc.take_snapshot()
    legacy = _build_legacy(infos)
    legacy_bytes = sum(
        stat.size_diff for stat in
        tracemalloc.take_snapshot().compare_to(snapshot_before, "filename"))
    tracemalloc.stop()
    assert len(legacy._address_index) >= 2_000_000
    print(f"\nindex memory: interval store ~{interval_bytes / 1024:.0f} KiB "
          f"({interval_map.index_entry_count} segments) vs legacy "
          f"~{legacy_bytes / 1024 / 1024:.0f} MiB "
          f"({len(legacy._address_index)} dict entries)")
    assert interval_bytes < legacy_bytes / 100


def test_resolve_throughput_vs_legacy(million_trace):
    """Acceptance: >= 1.5x build+resolve throughput on million-element arrays.

    Both designs are fed the identical pre-enumerated allocation list, so
    the timed region covers exactly index construction + the mixed resolve
    workload for each."""
    addresses = _workload(million_trace)
    infos = _infos(million_trace)

    def run_interval():
        varmap = _build_interval(infos)
        return sum(1 for address in addresses
                   if varmap.resolve(address) is not None)

    def run_legacy():
        legacy = _build_legacy(infos)
        return sum(1 for address in addresses
                   if legacy.resolve(address) is not None)

    def best_of(function, rounds=3):
        best, result = float("inf"), None
        for _ in range(rounds):
            started = time.perf_counter()
            result = function()
            best = min(best, time.perf_counter() - started)
        return result, best

    interval_hits, interval_seconds = best_of(run_interval)
    legacy_hits, legacy_seconds = best_of(run_legacy)
    assert interval_hits == legacy_hits > 0
    speedup = legacy_seconds / interval_seconds
    print(f"\nresolve workload ({len(addresses)} probes, million-element app): "
          f"interval {interval_seconds:.3f}s vs legacy {legacy_seconds:.3f}s "
          f"-> {speedup:.1f}x")
    assert speedup >= 1.5, (
        f"interval store must be >= 1.5x faster than the legacy per-element "
        f"index ({interval_seconds:.3f}s vs {legacy_seconds:.3f}s)")


def test_resolve_agrees_with_legacy_on_live_allocations(small_trace):
    """Cross-check: for a map whose allocations never overlap (globals + the
    main function's frame) the two designs resolve identically."""
    infos = _infos(small_trace)
    varmap = _build_interval(infos)
    legacy = _build_legacy(infos)
    for address in _workload(small_trace, probes=5_000):
        left = varmap.resolve(address)
        right = legacy.resolve(address)
        assert (left is None) == (right is None)
        if left is not None:
            assert left.key == right.key


def test_bench_pipeline_reports_match_on_bigarray(benchmark, million_trace):
    """The full pipeline on the million-element app, timed once; the interval
    store keeps it flat relative to the 4k-element configuration."""
    from repro.core import AutoCheck, AutoCheckConfig

    app = get_app("bigarray")
    spec = app.main_loop(app.source(size=1_000_000))
    report = benchmark(
        lambda: AutoCheck(AutoCheckConfig(main_loop=spec),
                          trace=million_trace).run())
    got = {v.name: v.dependency.value for v in report.critical_variables}
    assert got == app.expected_critical
