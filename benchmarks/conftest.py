"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's evaluation artefacts (a table
or the worked example) exactly once per run — the interesting output is the
regenerated table plus the wall-clock time, not statistical timing noise — so
the benchmarks use ``benchmark.pedantic(..., rounds=1)``.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once():
    return run_once
