#!/usr/bin/env python
"""The paper's Sec. IV-D case study: NPB CG.

The CG pseudocode of the paper's Algorithm 2 has six main-loop input vectors
(``x``, ``z``, ``p``, ``q``, ``r``, ``A``); only ``x`` exhibits a
Write-After-Read dependency across iterations (read by ``conj_grad`` at the
start of every iteration, overwritten by the renormalisation at its end), so
AutoCheck reports exactly ``x`` (WAR) plus the induction variable ``it``
(Index).

This example also shows the intermediate artefacts for a larger, multi-file
style program: the per-variable R/W event summary and the analysis timings.

Run with:  python examples/cg_case_study.py
"""

from collections import Counter

from repro.apps import get_app
from repro.experiments.common import analyze_app

app = get_app("cg")
print(f"Benchmark: {app.title} — {app.description}")
print("Expected per paper Table II: "
      + ", ".join(f"{k} ({v})" for k, v in app.expected_critical.items()))
print()

analysis = analyze_app(app)
report = analysis.report

print(f"Trace records analysed : {report.trace_stats.record_count}")
print(f"Main computation loop  : {report.main_loop.function} "
      f"lines {report.main_loop.mclr}")
print(f"MLI variables          : {', '.join(report.mli_variable_names)}")
print(f"Induction variable     : {report.induction_variable}")
print(f"Critical variables     : {report.dependency_string()}")
print()

# Per-variable read/write behaviour inside the main loop (why x is WAR while
# z, p, q, r are not critical: they are re-initialised by conj_grad before
# being read).
rw = report.rw_sequence
print("Per-MLI-variable access profile inside the main loop:")
for name in report.mli_variable_names:
    events = [event for event in rw.loop_events if event.name == name]
    if not events:
        print(f"  {name:8s}: no accesses attributed")
        continue
    counts = Counter(event.kind.value for event in events)
    first = events[0].kind.value
    print(f"  {name:8s}: first access = {first:5s}, "
          f"reads = {counts.get('Read', 0):5d}, "
          f"writes = {counts.get('Write', 0):5d}")

print()
print("Analysis time breakdown (paper Table III columns):")
for stage, seconds in report.timings.stages.items():
    print(f"  {stage:20s}: {seconds:.4f} s")
print(f"  {'total':20s}: {report.timings.total:.4f} s")

got = {v.name: v.dependency.value for v in report.critical_variables}
assert got == dict(app.expected_critical), got
print("\nOK: AutoCheck reproduces the paper's CG case study result.")
