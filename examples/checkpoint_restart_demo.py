#!/usr/bin/env python
"""End-to-end checkpoint/restart demo (the paper's Sec. VI-B validation).

For the MG benchmark this script:

1. runs AutoCheck to identify the critical variables (``u``, ``r``, ``it``);
2. protects exactly those variables with the FTI-like checkpoint library;
3. injects a fail-stop failure in the middle of the main computation loop
   (the equivalent of the paper's ``raise(SIGTERM)``);
4. restarts from the latest local checkpoint and verifies the combined
   output matches a failure-free execution;
5. repeats the restart while dropping one protected variable at a time to
   show that the detected variables are not false positives;
6. contrasts the checkpoint's size with a BLCR-style whole-process image.

Run with:  python examples/checkpoint_restart_demo.py
"""

import tempfile

from repro.apps import get_app
from repro.checkpoint import BLCRModel, RestartValidator
from repro.experiments.common import analyze_app
from repro.util.formatting import format_bytes

app = get_app("mg")
print(f"Benchmark: {app.title} — {app.description}\n")

# 1. Identify the critical variables.
analysis = analyze_app(app)
report = analysis.report
names = report.names()
print(f"AutoCheck-detected variables to checkpoint: {report.dependency_string()}\n")

with tempfile.TemporaryDirectory(prefix="autocheck-demo-") as ckpt_dir:
    validator = RestartValidator(analysis.module, report.main_loop,
                                 benchmark=app.name, checkpoint_dir=ckpt_dir)

    # 2-4. Protect, fail, restart, compare.
    outcome = validator.validate(names, fail_at_iteration=4)
    print("Failure-free output:")
    for line in outcome.failure_free_output:
        print(f"    {line}")
    print("\nOutput with a fail-stop failure at iteration 4 followed by a "
          "restart from the latest checkpoint:")
    for line in outcome.restarted_output:
        print(f"    {line}")
    print(f"\nRestart successful: {outcome.restart_successful} "
          f"(restored from iteration {outcome.restored_iteration})")
    assert outcome.restart_successful

    # 5. Necessity (false-positive) study.
    check = [name for name in app.necessity_variables() if name in names]
    necessity = validator.necessity_study(names, check_variables=check,
                                          fail_at_iteration=4)
    print("\nPer-variable ablation (drop one variable from recovery):")
    for variable, needed in necessity.necessary.items():
        verdict = "output corrupted -> variable is necessary" if needed \
            else "output unchanged -> candidate false positive"
        print(f"    without {variable:4s}: {verdict}")
    assert necessity.all_necessary, necessity.false_positives

    # 6. Storage comparison (Table IV flavour).
    blcr = BLCRModel()
    blcr_bytes = blcr.checkpoint_bytes_from_result(analysis.execution)
    print(f"\nCheckpoint storage: AutoCheck "
          f"{format_bytes(outcome.checkpoint_bytes)} vs BLCR-style process "
          f"image {format_bytes(blcr_bytes)} "
          f"({blcr_bytes / max(1, outcome.checkpoint_bytes):.0f}x larger)")

print("\nOK: checkpoint/restart with only the AutoCheck-selected variables "
      "reproduces the failure-free output.")
