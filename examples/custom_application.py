#!/usr/bin/env python
"""Using AutoCheck on your own program (including trace files on disk).

This example shows the workflow a user with their *own* application follows,
which is exactly the paper's Sec. VII "Use of AutoCheck" recipe:

1. instrument + run the program to get a dynamic instruction execution trace
   (here: write a mini-C heat-diffusion/statistics program and trace it to a
   file on disk);
2. tell AutoCheck where the main computation loop is (function + line range);
3. run the analysis — optionally with the parallel trace pre-processing
   optimization — and read off the variables to checkpoint.

Run with:  python examples/custom_application.py
"""

import os
import tempfile

from repro.codegen import compile_source
from repro.core import AutoCheck, AutoCheckConfig, MainLoopSpec
from repro.tracer import trace_to_file
from repro.util.formatting import format_bytes

# --------------------------------------------------------------------------- #
# 1. A user application: explicit heat diffusion with running statistics.
#    The temperature field `temp` and the running extremes/energy are
#    loop-carried; the flux array is recomputed every step.
# --------------------------------------------------------------------------- #
SOURCE = """\
double temp[48];
double flux[48];
double total_energy;
double peak_temp;

int main() {
    int ncells = 48;
    int nsteps = 8;
    double alpha = 0.2;
    for (int i = 0; i < ncells; ++i) {
        temp[i] = 20.0 + 5.0 * sin(0.3 * i);
        flux[i] = 0.0;
    }
    total_energy = 0.0;
    peak_temp = 0.0;
    for (int step = 0; step < nsteps; ++step) {          // main loop begin
        for (int i = 0; i < ncells; ++i) {
            double left = temp[i];
            double right = temp[i];
            if (i > 0) {
                left = temp[i - 1];
            }
            if (i < ncells - 1) {
                right = temp[i + 1];
            }
            flux[i] = alpha * (left - 2.0 * temp[i] + right);
        }
        for (int i = 0; i < ncells; ++i) {
            temp[i] = temp[i] + flux[i];
        }
        total_energy = total_energy + temp[ncells / 2];
        if (temp[0] > peak_temp) {
            peak_temp = temp[0];
        }
        print("step", step, "center", temp[ncells / 2]);
    }                                                    // main loop end
    print("total_energy", total_energy, "peak", peak_temp);
    return 0;
}
"""

# The `for (int step = ...)` statement is on source line 16 and its closing
# brace on line 36 — exactly the two numbers a user hands to AutoCheck.
MAIN_LOOP = MainLoopSpec(function="main", start_line=16, end_line=36)

with tempfile.TemporaryDirectory(prefix="autocheck-custom-") as workdir:
    # ----------------------------------------------------------------- #
    # 2. Compile and trace to a file (LLVM-Tracer stand-in).
    # ----------------------------------------------------------------- #
    module = compile_source(SOURCE, module_name="heat")
    trace_path = os.path.join(workdir, "heat.trace")
    trace_bytes, run = trace_to_file(module, trace_path)
    print(f"Traced execution: {len(run.output)} output lines, "
          f"trace file {format_bytes(trace_bytes)} at {trace_path}")

    # ----------------------------------------------------------------- #
    # 3. Analyse the trace file (parallel pre-processing enabled).
    # ----------------------------------------------------------------- #
    config = AutoCheckConfig(main_loop=MAIN_LOOP, parallel_preprocessing=True,
                             preprocessing_workers=4)
    report = AutoCheck(config, trace_path=trace_path, module=module).run()

    print("\n" + report.summary())

    expected = {"temp", "total_energy", "peak_temp", "step"}
    found = set(report.names())
    assert expected <= found, f"missing {expected - found}"
    print("\nOK: the loop-carried state (temp, total_energy, peak_temp, step) "
          "was identified; the recomputed flux array was correctly excluded.")
