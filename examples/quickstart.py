#!/usr/bin/env python
"""Quickstart: run AutoCheck on the paper's Fig. 4 example program.

This walks the full pipeline on a tiny program:

1. write (or load) a mini-C program;
2. compile it to the LLVM-like IR and execute it under the tracing
   interpreter, producing the dynamic instruction execution trace;
3. hand AutoCheck the trace plus the main computation loop's location;
4. read off the critical variables to checkpoint.

Expected result (identical to the paper's hand analysis of its example):
``r`` (WAR), ``a`` (RAPO), ``sum`` (Outcome), ``it`` (Index).

Run with:  python examples/quickstart.py
"""

from repro import MainLoopSpec, autocheck_source
from repro.apps import EXAMPLE_APP, find_mclr

# --------------------------------------------------------------------------- #
# 1. The program under study — the paper's Fig. 4 example (mini-C).
# --------------------------------------------------------------------------- #
SOURCE = EXAMPLE_APP.source()
print("Program under study (paper Fig. 4):")
print("-" * 60)
for number, line in enumerate(SOURCE.splitlines(), start=1):
    print(f"{number:3d}  {line}")
print("-" * 60)

# --------------------------------------------------------------------------- #
# 2+3. Locate the main computation loop and run AutoCheck end to end.
#      (AutoCheck's inputs per the paper: the dynamic trace, the loop's start
#       and end lines, and the function containing it.)
# --------------------------------------------------------------------------- #
start_line, end_line = find_mclr(SOURCE)
main_loop = MainLoopSpec(function="main", start_line=start_line, end_line=end_line)
print(f"\nMain computation loop: function 'main', lines {main_loop.mclr}\n")

report = autocheck_source(SOURCE, main_loop, module_name="quickstart")

# --------------------------------------------------------------------------- #
# 4. Inspect the results.
# --------------------------------------------------------------------------- #
print("MLI (main-loop input) variables:", ", ".join(report.mli_variable_names))
print("Critical variables to checkpoint:", report.dependency_string())
print()
print(report.summary())

print("\nContracted data dependency graph (paper Fig. 5d):")
contracted = report.contracted_ddg
for parent, child in sorted(contracted.edges()):
    print(f"  {contracted.node(parent).label} -> {contracted.node(child).label}")

print("\nRead/Write dependency sequence head (paper Fig. 5e):")
print(" ", report.rw_sequence.sequence_string(limit=12))

expected = {"r": "WAR", "a": "RAPO", "sum": "Outcome", "it": "Index"}
got = {v.name: v.dependency.value for v in report.critical_variables}
assert got == expected, f"unexpected result: {got}"
print("\nOK: matches the paper's hand-derived answer:", expected)
