"""Legacy setup shim.

The canonical build configuration lives in ``pyproject.toml``; this file
exists so that ``pip install -e .`` (and ``python setup.py develop``) also
work on minimal offline environments that lack the ``wheel`` package needed
for PEP 660 editable builds.
"""

from setuptools import setup

setup()
