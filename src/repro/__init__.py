"""AutoCheck reproduction — automatically identifying variables for
checkpointing by data dependency analysis (SC'24).

The package is organised as a compiler-and-analysis stack:

* :mod:`repro.minicc`, :mod:`repro.codegen`, :mod:`repro.ir` — a mini-C front
  end and an LLVM-like IR (the benchmarks' substrate);
* :mod:`repro.tracer`, :mod:`repro.trace` — the tracing interpreter and the
  dynamic instruction execution trace format (the LLVM-Tracer substitute);
* :mod:`repro.analysis` — static loop/induction analysis (llvm-pass-loop
  equivalent);
* :mod:`repro.core` — AutoCheck itself: MLI identification, DDG construction
  and contraction, and the WAR/Outcome/RAPO/Index heuristics;
* :mod:`repro.checkpoint` — an FTI-like checkpoint/restart library, restart
  validation harness and BLCR-style storage baseline;
* :mod:`repro.apps` — the paper's Fig. 4 example plus 14 mini HPC benchmarks;
* :mod:`repro.experiments` — harnesses regenerating Tables II, III and IV.

Quickstart::

    from repro import autocheck_source
    from repro.apps import get_app

    app = get_app("cg")
    report = autocheck_source(app.source, app.main_loop)
    print(report.dependency_string())   # -> "x (WAR), it (Index)"
"""

from repro.core.config import AutoCheckConfig, MainLoopSpec
from repro.core.pipeline import AutoCheck, analyze_trace
from repro.core.report import AutoCheckReport, CriticalVariable, DependencyType
from repro.api import autocheck_source, autocheck_module

__version__ = "1.0.0"

__all__ = [
    "AutoCheck",
    "AutoCheckConfig",
    "AutoCheckReport",
    "CriticalVariable",
    "DependencyType",
    "MainLoopSpec",
    "analyze_trace",
    "autocheck_source",
    "autocheck_module",
    "__version__",
]
