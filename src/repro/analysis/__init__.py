"""``repro.analysis`` — static analyses over the LLVM-like IR.

The paper uses the LLVM loop pass infrastructure ("llvm-pass-loop API",
Sec. IV-C) to identify the main computation loop's outermost induction
variable, which is always checkpointed (the *Index* dependency class).  This
package provides the equivalent machinery for our IR:

* :mod:`repro.analysis.cfg` — control-flow graph with predecessor/successor
  maps;
* :mod:`repro.analysis.dominators` — iterative dominator-tree computation;
* :mod:`repro.analysis.loops` — natural-loop detection (back edges whose
  target dominates their source) and loop nesting;
* :mod:`repro.analysis.induction` — induction-variable recognition and
  selection of the *main computation loop* from a source line range.
"""

from repro.analysis.cfg import ControlFlowGraph, build_cfg
from repro.analysis.dominators import DominatorTree, compute_dominators
from repro.analysis.loops import Loop, LoopInfo, find_loops
from repro.analysis.induction import (
    InductionVariable,
    find_induction_variable,
    find_main_loop,
    main_loop_induction,
)

__all__ = [
    "ControlFlowGraph",
    "build_cfg",
    "DominatorTree",
    "compute_dominators",
    "Loop",
    "LoopInfo",
    "find_loops",
    "InductionVariable",
    "find_induction_variable",
    "find_main_loop",
    "main_loop_induction",
]
