"""Control-flow graph construction for IR functions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.ir.module import BasicBlock, Function


@dataclass
class ControlFlowGraph:
    """Successor/predecessor maps over a function's basic blocks."""

    function: Function
    successors: Dict[BasicBlock, List[BasicBlock]] = field(default_factory=dict)
    predecessors: Dict[BasicBlock, List[BasicBlock]] = field(default_factory=dict)

    @property
    def entry(self) -> BasicBlock:
        return self.function.entry

    def blocks(self) -> List[BasicBlock]:
        return list(self.function.blocks)

    def reachable_blocks(self) -> Set[BasicBlock]:
        """Blocks reachable from the entry (unreachable blocks are ignored by
        the dominator and loop analyses)."""
        seen: Set[BasicBlock] = set()
        work = [self.entry]
        while work:
            block = work.pop()
            if block in seen:
                continue
            seen.add(block)
            work.extend(self.successors.get(block, []))
        return seen

    def reverse_postorder(self) -> List[BasicBlock]:
        """Reverse post-order over reachable blocks (entry first)."""
        visited: Set[BasicBlock] = set()
        order: List[BasicBlock] = []

        def visit(block: BasicBlock) -> None:
            stack = [(block, iter(self.successors.get(block, [])))]
            visited.add(block)
            while stack:
                current, successors = stack[-1]
                advanced = False
                for succ in successors:
                    if succ not in visited:
                        visited.add(succ)
                        stack.append((succ, iter(self.successors.get(succ, []))))
                        advanced = True
                        break
                if not advanced:
                    order.append(current)
                    stack.pop()

        visit(self.entry)
        order.reverse()
        return order


def build_cfg(function: Function) -> ControlFlowGraph:
    """Build the CFG of ``function`` from its branch instructions."""
    cfg = ControlFlowGraph(function=function)
    for block in function.blocks:
        cfg.successors[block] = list(block.successors())
        cfg.predecessors.setdefault(block, [])
    for block in function.blocks:
        for succ in cfg.successors[block]:
            cfg.predecessors.setdefault(succ, []).append(block)
    return cfg
