"""Dominator-tree computation (iterative data-flow formulation)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.analysis.cfg import ControlFlowGraph
from repro.ir.module import BasicBlock


@dataclass
class DominatorTree:
    """Immediate-dominator map plus a dominance query helper."""

    cfg: ControlFlowGraph
    idom: Dict[BasicBlock, Optional[BasicBlock]] = field(default_factory=dict)
    dominators: Dict[BasicBlock, Set[BasicBlock]] = field(default_factory=dict)

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """Return True if ``a`` dominates ``b`` (every block dominates itself)."""
        return a in self.dominators.get(b, set())

    def strictly_dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        return a is not b and self.dominates(a, b)


def compute_dominators(cfg: ControlFlowGraph) -> DominatorTree:
    """Compute dominator sets with the classic iterative algorithm.

    The CFGs produced from mini-C are small (tens of blocks), so the simple
    O(n^2) fixed-point formulation is plenty fast and easy to audit.
    """
    reachable = cfg.reachable_blocks()
    order = [block for block in cfg.reverse_postorder() if block in reachable]
    entry = cfg.entry

    dominators: Dict[BasicBlock, Set[BasicBlock]] = {}
    all_blocks = set(order)
    for block in order:
        dominators[block] = {entry} if block is entry else set(all_blocks)

    changed = True
    while changed:
        changed = False
        for block in order:
            if block is entry:
                continue
            preds = [p for p in cfg.predecessors.get(block, []) if p in reachable]
            if preds:
                new_set: Set[BasicBlock] = set(all_blocks)
                for pred in preds:
                    new_set &= dominators[pred]
            else:
                new_set = set()
            new_set.add(block)
            if new_set != dominators[block]:
                dominators[block] = new_set
                changed = True

    idom: Dict[BasicBlock, Optional[BasicBlock]] = {entry: None}
    for block in order:
        if block is entry:
            continue
        strict = dominators[block] - {block}
        # The immediate dominator is the strict dominator that is itself
        # dominated by every other strict dominator (the "closest" one).
        immediate: Optional[BasicBlock] = None
        for candidate in strict:
            if all(other in dominators[candidate]
                   for other in strict if other is not candidate):
                immediate = candidate
                break
        idom[block] = immediate

    return DominatorTree(cfg=cfg, idom=idom, dominators=dominators)
