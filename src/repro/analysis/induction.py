"""Induction-variable recognition and main-computation-loop selection.

The paper always checkpoints the induction variable of the outermost main
computation loop ("Index" in Fig. 7), found with LLVM's loop pass API.  Here
the equivalent is computed directly on the IR:

* the *main computation loop* is the outermost natural loop in the given
  function whose controlling branch lies within the user-provided source line
  range (the MCLR column of paper Table II);
* its *induction variable* is a variable ``x`` such that the loop header's
  comparison reads ``x`` and some block in the loop stores ``x = x +/- step``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.loops import Loop, LoopInfo, find_loops
from repro.ir.instructions import (
    AllocaInst,
    BinaryInst,
    BitCastInst,
    BranchInst,
    CastInst,
    CmpInst,
    GEPInst,
    Instruction,
    LoadInst,
    StoreInst,
)
from repro.ir.module import Function
from repro.ir.opcodes import Opcode
from repro.ir.values import GlobalVariable, Register, Value


@dataclass(frozen=True)
class InductionVariable:
    """An induction variable of a loop: its source name and declaration line."""

    name: str
    line: int
    is_global: bool


def _definitions(function: Function) -> Dict[int, Instruction]:
    defs: Dict[int, Instruction] = {}
    for inst in function.instructions():
        if inst.result is not None:
            defs[inst.result.rid] = inst
    return defs


def _resolve_variable(value: Value, defs: Dict[int, Instruction]) -> Optional[Value]:
    """Trace a pointer operand back to the Alloca or GlobalVariable it names."""
    seen = 0
    current = value
    while seen < 64:
        seen += 1
        if isinstance(current, GlobalVariable):
            return current
        if isinstance(current, Register):
            inst = defs.get(current.rid)
            if inst is None:
                return None
            if isinstance(inst, AllocaInst):
                return inst.result
            if isinstance(inst, (GEPInst, BitCastInst, CastInst, LoadInst)):
                current = inst.operands[0]
                continue
            return None
        return None
    return None


def _variable_name(value: Value, defs: Dict[int, Instruction]) -> Optional[str]:
    resolved = _resolve_variable(value, defs)
    if isinstance(resolved, GlobalVariable):
        return resolved.name
    if isinstance(resolved, Register):
        inst = defs.get(resolved.rid)
        if isinstance(inst, AllocaInst):
            return inst.var_name
    return None


def find_main_loop(function: Function, start_line: int, end_line: int,
                   loop_info: Optional[LoopInfo] = None) -> Optional[Loop]:
    """Select the main computation loop from a source line range.

    Among loops whose header branch line falls inside ``[start_line,
    end_line]`` the outermost (minimal depth, then largest body) is returned.
    """
    info = loop_info or find_loops(function)
    candidates = info.loops_with_header_line(start_line, end_line)
    if not candidates:
        return None
    candidates.sort(key=lambda loop: (loop.depth, -len(loop.blocks), loop.header_line))
    return candidates[0]


def find_induction_variable(function: Function, loop: Loop) -> Optional[InductionVariable]:
    """Recognise the induction variable controlling ``loop`` (if any)."""
    defs = _definitions(function)

    terminator = loop.header.terminator
    if not isinstance(terminator, BranchInst) or not terminator.is_conditional:
        return None
    cond = terminator.operands[0]
    if not isinstance(cond, Register):
        return None

    # Collect the variables whose loads feed the branch condition — walking
    # through comparison, logical (`!done && ts <= max_ts`) and cast
    # instructions down to the underlying `Load`s.
    candidates: List[str] = []
    work: List[Instruction] = []
    root = defs.get(cond.rid)
    if root is not None:
        work.append(root)
    visited = 0
    while work and visited < 64:
        visited += 1
        inst = work.pop()
        if isinstance(inst, LoadInst):
            name = _variable_name(inst.pointer, defs)
            if name is not None and name not in candidates:
                candidates.append(name)
            continue
        if isinstance(inst, (CmpInst, BinaryInst, CastInst, BitCastInst)):
            for operand in inst.operands:
                if isinstance(operand, Register):
                    producer = defs.get(operand.rid)
                    if producer is not None:
                        work.append(producer)

    if not candidates:
        return None

    updates: Dict[str, Instruction] = {}
    for block in loop.blocks:
        for inst in block.instructions:
            if not isinstance(inst, StoreInst):
                continue
            target = _variable_name(inst.pointer, defs)
            if target is None or target not in candidates:
                continue
            stored = inst.value
            if not isinstance(stored, Register):
                continue
            producer = defs.get(stored.rid)
            if isinstance(producer, CastInst) and producer.operands:
                inner = producer.operands[0]
                producer = defs.get(inner.rid) if isinstance(inner, Register) else producer
            if isinstance(producer, BinaryInst) and producer.opcode in (
                    Opcode.ADD, Opcode.SUB, Opcode.FADD, Opcode.FSUB):
                for operand in producer.operands:
                    if isinstance(operand, Register):
                        load_inst = defs.get(operand.rid)
                        if isinstance(load_inst, LoadInst) and \
                                _variable_name(load_inst.pointer, defs) == target:
                            updates.setdefault(target, inst)

    for name in candidates:
        if name in updates:
            store = updates[name]
            resolved = _resolve_variable(store.pointer, defs)
            is_global = isinstance(resolved, GlobalVariable)
            decl_line = store.line
            if isinstance(resolved, Register):
                alloca = defs.get(resolved.rid)
                if isinstance(alloca, AllocaInst) and alloca.line:
                    decl_line = alloca.line
            return InductionVariable(name=name, line=decl_line, is_global=is_global)
    return None


def main_loop_induction(function: Function, start_line: int,
                        end_line: int) -> Optional[InductionVariable]:
    """Convenience wrapper: main loop selection + induction recognition."""
    info = find_loops(function)
    loop = find_main_loop(function, start_line, end_line, loop_info=info)
    if loop is None:
        return None
    return find_induction_variable(function, loop)
