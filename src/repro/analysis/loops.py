"""Natural-loop detection over the IR control-flow graph.

A natural loop is identified by a back edge ``latch -> header`` where the
header dominates the latch; its body is the set of blocks that can reach the
latch without passing through the header.  Loops sharing a header are merged
(as LLVM's ``LoopInfo`` does), and a parent/child nesting forest is built so
the *outermost* loop containing the main computation range can be selected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.analysis.cfg import ControlFlowGraph, build_cfg
from repro.analysis.dominators import DominatorTree, compute_dominators
from repro.ir.module import BasicBlock, Function


@dataclass(eq=False)
class Loop:
    """A single natural loop."""

    header: BasicBlock
    blocks: Set[BasicBlock] = field(default_factory=set)
    latches: List[BasicBlock] = field(default_factory=list)
    parent: Optional["Loop"] = None
    children: List["Loop"] = field(default_factory=list)

    @property
    def depth(self) -> int:
        depth = 1
        current = self.parent
        while current is not None:
            depth += 1
            current = current.parent
        return depth

    @property
    def is_outermost(self) -> bool:
        return self.parent is None

    @property
    def header_line(self) -> int:
        """Source line of the loop's controlling branch (the header terminator)."""
        terminator = self.header.terminator
        if terminator is not None and terminator.line:
            return terminator.line
        return self.header.first_line

    def line_range(self) -> range:
        """Conservative source line span covered by the loop body."""
        lines = [inst.line for block in self.blocks for inst in block.instructions
                 if inst.line]
        if not lines:
            return range(0, 0)
        return range(min(lines), max(lines) + 1)

    def contains_block(self, block: BasicBlock) -> bool:
        return block in self.blocks

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Loop header={self.header.name} depth={self.depth} "
                f"blocks={len(self.blocks)}>")


@dataclass
class LoopInfo:
    """All loops of a function plus the CFG/dominator artefacts used."""

    function: Function
    cfg: ControlFlowGraph
    dom: DominatorTree
    loops: List[Loop] = field(default_factory=list)

    def outermost(self) -> List[Loop]:
        return [loop for loop in self.loops if loop.is_outermost]

    def loops_with_header_line(self, start_line: int, end_line: int) -> List[Loop]:
        return [loop for loop in self.loops
                if start_line <= loop.header_line <= end_line]


def _collect_loop_body(header: BasicBlock, latch: BasicBlock,
                       cfg: ControlFlowGraph) -> Set[BasicBlock]:
    body: Set[BasicBlock] = {header, latch}
    work: List[BasicBlock] = [latch]
    while work:
        block = work.pop()
        if block is header:
            continue
        for pred in cfg.predecessors.get(block, []):
            if pred not in body:
                body.add(pred)
                work.append(pred)
    return body


def find_loops(function: Function) -> LoopInfo:
    """Detect all natural loops of ``function`` and build the nesting forest."""
    cfg = build_cfg(function)
    dom = compute_dominators(cfg)
    reachable = cfg.reachable_blocks()

    by_header: Dict[BasicBlock, Loop] = {}
    for block in function.blocks:
        if block not in reachable:
            continue
        for succ in cfg.successors.get(block, []):
            if dom.dominates(succ, block):
                # back edge block -> succ
                loop = by_header.setdefault(succ, Loop(header=succ))
                loop.latches.append(block)
                loop.blocks |= _collect_loop_body(succ, block, cfg)

    loops = list(by_header.values())

    # Establish nesting: the parent of a loop is the smallest loop strictly
    # containing it.
    for loop in loops:
        best: Optional[Loop] = None
        for other in loops:
            if other is loop:
                continue
            if (loop.header in other.blocks and loop.blocks <= other.blocks
                    and (best is None
                         or len(other.blocks) < len(best.blocks))):
                best = other
        loop.parent = best
        if best is not None:
            best.children.append(loop)

    info = LoopInfo(function=function, cfg=cfg, dom=dom, loops=loops)
    return info
