"""Top-level convenience API.

These helpers cover the common end-to-end flow: compile a mini-C program,
execute it under the tracing interpreter, and run the AutoCheck analysis on
the resulting dynamic trace.
"""

from __future__ import annotations

from repro.codegen.lowering import compile_source
from repro.core.config import AutoCheckConfig, MainLoopSpec
from repro.core.pipeline import AutoCheck
from repro.core.report import AutoCheckReport
from repro.ir.module import Module
from repro.tracer.driver import run_and_trace


def autocheck_module(module: Module, main_loop: MainLoopSpec,
                     seed: int = 314159,
                     **config_kwargs) -> AutoCheckReport:
    """Trace a compiled module and run AutoCheck on the dynamic trace."""
    trace, result = run_and_trace(module, module_name=module.name, seed=seed)
    if result.failed:
        raise RuntimeError("traced execution hit a simulated failure; "
                           "AutoCheck expects a failure-free trace")
    config = AutoCheckConfig(main_loop=main_loop, **config_kwargs)
    report = AutoCheck(config, trace=trace, module=module).run()
    report.trace_stats.record_count = len(trace.records)
    return report


def autocheck_source(source: str, main_loop: MainLoopSpec,
                     module_name: str = "module", seed: int = 314159,
                     **config_kwargs) -> AutoCheckReport:
    """Compile mini-C ``source``, trace it, and run AutoCheck."""
    module = compile_source(source, module_name=module_name)
    return autocheck_module(module, main_loop, seed=seed, **config_kwargs)
