"""Top-level convenience API.

These helpers cover the common end-to-end flow: compile a mini-C program,
execute it under the tracing interpreter, and run the AutoCheck analysis on
the resulting dynamic trace.
"""

from __future__ import annotations

from repro.codegen.lowering import compile_source
from repro.core.config import AutoCheckConfig, MainLoopSpec
from repro.core.pipeline import AutoCheck
from repro.core.report import AutoCheckReport
from repro.ir.module import Module
from repro.tracer.driver import run_and_trace


def autocheck_module(module: Module, main_loop: MainLoopSpec,
                     seed: int = 314159,
                     **config_kwargs) -> AutoCheckReport:
    """Trace a compiled module and run AutoCheck on the dynamic trace.

    Args:
        module: a compiled :class:`~repro.ir.module.Module` (see
            :func:`repro.codegen.lowering.compile_source`).
        main_loop: location of the main computation loop — the function
            containing it plus its source line range.
        seed: RNG seed for the traced execution (kept fixed so repeated
            analyses see the same dynamic trace).
        **config_kwargs: forwarded to
            :class:`~repro.core.config.AutoCheckConfig` (e.g.
            ``induction_variable``, ``include_global_accesses_in_calls``).
            Note that the trace is in-memory here, so file-based options
            (``streaming_preprocessing``, ``analysis_engine="parallel"``)
            do not apply.  The artifact store (``use_cache=True``) *does*
            apply: the in-memory trace is digested through the binary
            encoder (same digest its on-disk binary form would carry), so
            repeated analyses of an identical trace return the stored
            report without a record walk — and share entries with
            file-based runs of the same trace.

    Returns:
        The full :class:`~repro.core.report.AutoCheckReport` — critical
        variables, MLI set, DDGs, R/W sequences, timings and trace stats.

    Raises:
        RuntimeError: when the traced execution hits a simulated failure
            (AutoCheck expects a failure-free trace).
    """
    trace, result = run_and_trace(module, module_name=module.name, seed=seed)
    if result.failed:
        raise RuntimeError("traced execution hit a simulated failure; "
                           "AutoCheck expects a failure-free trace")
    config = AutoCheckConfig(main_loop=main_loop, **config_kwargs)
    report = AutoCheck(config, trace=trace, module=module).run()
    report.trace_stats.record_count = len(trace.records)
    return report


def autocheck_source(source: str, main_loop: MainLoopSpec,
                     module_name: str = "module", seed: int = 314159,
                     **config_kwargs) -> AutoCheckReport:
    """Compile mini-C ``source``, trace it, and run AutoCheck.

    Args:
        source: mini-C program text.
        main_loop: location of the main computation loop in ``source``.
        module_name: name for the compiled module (appears in reports).
        seed: RNG seed for the traced execution.
        **config_kwargs: forwarded to
            :class:`~repro.core.config.AutoCheckConfig`.

    Returns:
        The full :class:`~repro.core.report.AutoCheckReport`.
    """
    module = compile_source(source, module_name=module_name)
    return autocheck_module(module, main_loop, seed=seed, **config_kwargs)
