"""``repro.apps`` — the paper's example program and the 14 mini benchmarks.

Each application is a mini-C program whose data-dependency structure mirrors
the corresponding benchmark of paper Table II: the same variable names, the
same read/write patterns (accumulators, solution arrays updated in place,
partially-overwritten arrays, loop outcomes) and therefore — when fed through
LLVM-Tracer's substitute and the AutoCheck analysis — the same set of
critical variables and dependency types.  Input sizes are scaled down so the
whole suite traces and analyses in seconds on a laptop (the paper's point is
*which variables* are identified, not the FLOP count of the substrate).

Use :func:`get_app` / :func:`all_apps` to access the registry.
"""

from repro.apps.base import AppDefinition, find_mclr
from repro.apps.registry import all_apps, app_names, get_app, APP_ORDER
from repro.apps.bigarray import BIGARRAY_APP
from repro.apps.example import EXAMPLE_APP

__all__ = [
    "AppDefinition",
    "find_mclr",
    "all_apps",
    "app_names",
    "get_app",
    "APP_ORDER",
    "BIGARRAY_APP",
    "EXAMPLE_APP",
]
