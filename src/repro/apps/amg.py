"""AMG (ECP proxy) mini-app.

AMG repeatedly builds/solves linear systems; across outer solves it carries
the preconditioner ``diagonal``, the cumulative iteration and work counters
(``cum_num_its``, ``cum_nnz_AP``), the global error flag
(``hypre_global_error``) and reports the final residual norm after the loop.
Expected critical variables (paper Table II): ``diagonal``, ``cum_num_its``,
``cum_nnz_AP``, ``hypre_global_error`` (WAR), ``final_res_norm`` (Outcome)
and ``j`` (Index).
"""

from __future__ import annotations

from repro.apps.base import AppDefinition

_TEMPLATE = """\
double A[__N__][__N__];
double xx[__N__];
double bb[__N__];
double diagonal[__N__];
double final_res_norm;
double cum_nnz_AP;
int cum_num_its;
int hypre_global_error;

int main() {
    int n = __N__;
    int nsolves = __SOLVES__;
    int max_its = __MAXITS__;
    for (int i = 0; i < n; ++i) {
        xx[i] = 0.0;
        bb[i] = 1.0 + 0.1 * sin(0.2 * i);
        for (int k = 0; k < n; ++k) {
            A[i][k] = 0.0;
        }
        A[i][i] = 4.0 + 0.02 * i;
        if (i > 0) {
            A[i][i - 1] = -1.0;
        }
        if (i < n - 1) {
            A[i][i + 1] = -1.0;
        }
        diagonal[i] = A[i][i];
    }
    final_res_norm = 0.0;
    cum_nnz_AP = 0.0;
    cum_num_its = 0;
    hypre_global_error = 0;
    for (int j = 0; j < nsolves; ++j) {                  // @mclr-begin
        for (int i = 0; i < n; ++i) {
            diagonal[i] = 0.5 * diagonal[i] + 0.5 * (A[i][i] + 0.1 * j);
        }
        for (int i = 0; i < n; ++i) {
            xx[i] = 0.0;
        }
        int its = 0;
        double res = 1.0;
        while (res > 0.0001 && its < max_its) {
            for (int i = 0; i < n; ++i) {
                double row = 0.0;
                for (int k = 0; k < n; ++k) {
                    row = row + A[i][k] * xx[k];
                }
                xx[i] = xx[i] + (bb[i] - row) / diagonal[i];
            }
            res = 0.0;
            for (int i = 0; i < n; ++i) {
                double row = 0.0;
                for (int k = 0; k < n; ++k) {
                    row = row + A[i][k] * xx[k];
                }
                double diff = bb[i] - row;
                res = res + diff * diff;
            }
            res = sqrt(res);
            its = its + 1;
        }
        cum_num_its = cum_num_its + its;
        cum_nnz_AP = cum_nnz_AP + 3.0 * n;
        int ierr = 0;
        if (res > 1000.0) {
            ierr = 1;
        }
        hypre_global_error = hypre_global_error + ierr;
        final_res_norm = res;
        print("solve", j, "its", its, "res", res);
    }                                                    // @mclr-end
    print("final_res_norm", final_res_norm);
    print("cum_num_its", cum_num_its, "cum_nnz_AP", cum_nnz_AP,
          "error", hypre_global_error);
    return 0;
}
"""


def build_source(n: int = 10, solves: int = 5, max_its: int = 5) -> str:
    return (_TEMPLATE
            .replace("__N__", str(n))
            .replace("__SOLVES__", str(solves))
            .replace("__MAXITS__", str(max_its)))


AMG_APP = AppDefinition(
    name="amg",
    title="AMG (ECP)",
    description="Algebraic multi-grid proxy: repeated diagonally-"
                "preconditioned Jacobi solves with cumulative work counters.",
    category="ECP",
    parallel_model="OMP+MPI",
    source_builder=build_source,
    default_params={"n": 10, "solves": 5, "max_its": 5},
    large_params={"n": 32, "solves": 5, "max_its": 5},
    expected_critical={
        "diagonal": "WAR",
        "cum_num_its": "WAR",
        "cum_nnz_AP": "WAR",
        "hypre_global_error": "WAR",
        "final_res_norm": "Outcome",
        "j": "Index",
    },
    necessity_check=["diagonal", "cum_num_its", "cum_nnz_AP", "j"],
    notes="The multi-grid hierarchy is reduced to a diagonally-preconditioned "
          "Jacobi solve; the cumulative counters and error flag follow "
          "hypre's accumulation pattern.",
)
