"""Benchmark application definitions.

An :class:`AppDefinition` bundles a mini-C source builder with the metadata
the experiments need: the main computation loop's source range (MCLR), the
critical variables the paper reports for the benchmark (our expected
result), and small/large input parameter sets (small for analysis — the
paper also analyses small inputs for efficiency — large for the Table IV
storage study).

The main loop range is not hard-coded: the sources carry ``@mclr-begin`` /
``@mclr-end`` marker comments on the loop's first and last lines and
:func:`find_mclr` recovers the line numbers, exactly as a user of AutoCheck
would supply them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.codegen.lowering import compile_source
from repro.core.config import MainLoopSpec
from repro.ir.module import Module

MCLR_BEGIN_MARKER = "@mclr-begin"
MCLR_END_MARKER = "@mclr-end"


def find_mclr(source: str) -> Tuple[int, int]:
    """Find the main computation loop's source line range from markers.

    Returns 1-based (start_line, end_line).  Raises ``ValueError`` when the
    markers are missing — every bundled app carries them.
    """
    begin_line = 0
    end_line = 0
    for number, line in enumerate(source.splitlines(), start=1):
        if MCLR_BEGIN_MARKER in line and begin_line == 0:
            begin_line = number
        if MCLR_END_MARKER in line:
            end_line = number
    if begin_line == 0 or end_line == 0 or end_line < begin_line:
        raise ValueError("source does not carry valid @mclr-begin/@mclr-end markers")
    return begin_line, end_line


@dataclass
class AppDefinition:
    """One benchmark application of the study."""

    name: str
    title: str
    description: str
    category: str                     # "micro", "NPB", "ECP", "application"
    parallel_model: str               # "OMP", "MPI", "OMP+MPI" (of the original)
    source_builder: Callable[..., str]
    default_params: Dict[str, int] = field(default_factory=dict)
    large_params: Dict[str, int] = field(default_factory=dict)
    #: Expected critical variables: name -> dependency type string
    #: ("WAR" | "RAPO" | "Outcome" | "Index"), mirroring paper Table II.
    expected_critical: Dict[str, str] = field(default_factory=dict)
    #: Variables whose omission from the checkpoint set must corrupt the
    #: restarted output (used by the false-positive/necessity study).  By
    #: default every expected critical variable is considered
    #: output-sensitive.
    necessity_check: Optional[List[str]] = None
    main_loop_function: str = "main"
    #: Extra keyword arguments for :class:`repro.core.config.AutoCheckConfig`
    #: (e.g. FT enables ``include_global_accesses_in_calls`` — the paper's
    #: Sec. V-B global-variable special case).
    autocheck_options: Dict[str, object] = field(default_factory=dict)
    #: Notes about deliberate scaling/substitution differences vs. the paper.
    notes: str = ""

    # ------------------------------------------------------------------ #
    # Derived helpers
    # ------------------------------------------------------------------ #
    def source(self, **params) -> str:
        merged = dict(self.default_params)
        merged.update(params)
        return self.source_builder(**merged)

    def large_source(self) -> str:
        return self.source(**self.large_params) if self.large_params else self.source()

    def main_loop(self, source: Optional[str] = None) -> MainLoopSpec:
        text = source if source is not None else self.source()
        start, end = find_mclr(text)
        return MainLoopSpec(function=self.main_loop_function,
                            start_line=start, end_line=end)

    def module(self, **params) -> Module:
        return compile_source(self.source(**params), module_name=self.name)

    def expected_names(self) -> List[str]:
        return list(self.expected_critical.keys())

    def necessity_variables(self) -> List[str]:
        if self.necessity_check is not None:
            return list(self.necessity_check)
        return self.expected_names()

    @property
    def mclr_string(self) -> str:
        start, end = find_mclr(self.source())
        return f"{start}-{end}"
