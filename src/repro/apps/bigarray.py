"""Synthetic large-array stress app for the address-resolution layer.

Not part of the paper's Table II study — this app exists to exercise the
:class:`repro.core.varmap.VariableMap` interval store at production scale:

* ``big``/``out`` are stack arrays whose element count is a parameter
  (``size=1_000_000`` in the large configuration), but the program only ever
  touches a fixed strided subset of ``block`` elements, so the trace stays a
  few thousand records while the address map must cover millions of element
  addresses — the per-element index of the old map would cost O(size)
  memory here, the interval store costs one segment per allocation;
* every main-loop iteration calls ``sweep``, whose ``scratch`` array is
  re-allocated at the same stack address each activation — the shadowing /
  scope-retirement churn the paper's Challenge 2 is about.

``benchmarks/bench_varmap_resolve.py`` builds its resolve-throughput and
index-memory measurements on this app.
"""

from __future__ import annotations

from repro.apps.base import AppDefinition


def build_source(size: int = 4096, iterations: int = 8, block: int = 64,
                 init_sweeps: int = 0) -> str:
    stride = max(1, size // block)
    init_block = ""
    if init_sweeps > 0:
        # Pre-loop initialization churn over a `seed` array the main loop
        # never touches: every record it produces is provably irrelevant
        # to the analysis, which is exactly what the static engine
        # prefilter benchmark needs a lot of.  Gated so the default
        # source stays byte-identical.
        init_block = f"""\
    double seed[{size}];
    for (int s = 0; s < {init_sweeps}; ++s) {{
        for (int j = 0; j < {block}; ++j) {{
            seed[j * {stride}] = j * 0.125 + s;
        }}
    }}
    big[0] = big[0] + seed[0];
"""
    return f"""\
void sweep(double *src, double *dst, int offset) {{
    double scratch[{block}];
    for (int k = 0; k < {block}; ++k) {{
        scratch[k] = src[k * {stride} + offset];
    }}
    for (int k = 0; k < {block}; ++k) {{
        dst[k * {stride} + offset] = scratch[k] * 2.0;
    }}
}}

int main() {{
    double big[{size}];
    double out[{size}];
    double checksum = 0.0;
    double scale = 1.0;
    for (int i = 0; i < {block}; ++i) {{
        big[i * {stride}] = i * 0.5;
        big[i] = big[i] + 0.25;
        out[i * {stride}] = 0.0;
    }}
{init_block}\
    for (int it = 0; it < {iterations}; ++it) {{   // @mclr-begin
        sweep(big, out, it);
        checksum = checksum + out[it] * scale;
        scale = scale + 1.0;
    }}                                             // @mclr-end
    print("checksum", checksum);
    return 0;
}}
"""


BIGARRAY_APP = AppDefinition(
    name="bigarray",
    title="Large-array address-resolution stress app",
    description="Million-element stack arrays accessed through a strided "
                "subset plus a per-iteration callee scratch array: stresses "
                "interval-store memory (O(intervals), not O(elements)), "
                "bisect resolve and scope retirement.",
    category="micro",
    parallel_model="serial",
    source_builder=build_source,
    default_params={"size": 4096, "iterations": 8, "block": 64},
    large_params={"size": 1_000_000, "iterations": 8, "block": 64},
    expected_critical={
        "checksum": "WAR",
        "scale": "WAR",
        "out": "RAPO",
        "it": "Index",
    },
    # `out` is rewritten by every sweep, so only the cross-iteration
    # accumulators are output-sensitive under single-variable ablation.
    necessity_check=["checksum", "scale"],
    notes="Synthetic (no paper counterpart); registered outside the "
          "14-benchmark study like the worked example.",
)
