"""NPB BT mini-app.

BT is a block tri-diagonal ADI solver; like SP the time-stepping loop reads
the solution array ``u`` to build the right-hand side, performs directional
sweeps and adds the update back into ``u``.  Here ``u`` is kept
two-dimensional and swept in both directions (the "block" flavour), which is
the convoluted-dependency example the paper highlights in Sec. III.  Expected
critical variables (paper Table II): ``u`` (WAR), ``step`` (Index).
"""

from __future__ import annotations

from repro.apps.base import AppDefinition

_TEMPLATE = """\
double u[__N__][__N__];
double rhs[__N__][__N__];
double forcing[__N__][__N__];

void x_sweep() {
    for (int i = 0; i < __N__; ++i) {
        for (int j = 1; j < __N__; ++j) {
            rhs[i][j] = rhs[i][j] + 0.2 * rhs[i][j - 1];
        }
    }
}

void y_sweep() {
    for (int j = 0; j < __N__; ++j) {
        for (int i = 1; i < __N__; ++i) {
            rhs[i][j] = rhs[i][j] + 0.2 * rhs[i - 1][j];
        }
    }
}

int main() {
    int n = __N__;
    int niter = __ITERS__;
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
            u[i][j] = 1.0 + 0.01 * (i + j);
            forcing[i][j] = 0.3 * sin(0.1 * (i * n + j));
            rhs[i][j] = 0.0;
        }
    }
    double dt = 0.05;
    for (int step = 0; step < niter; ++step) {           // @mclr-begin
        for (int i = 0; i < n; ++i) {
            for (int j = 0; j < n; ++j) {
                double lap = 0.0;
                if (i > 0) {
                    lap = lap + u[i - 1][j] - u[i][j];
                }
                if (i < n - 1) {
                    lap = lap + u[i + 1][j] - u[i][j];
                }
                if (j > 0) {
                    lap = lap + u[i][j - 1] - u[i][j];
                }
                if (j < n - 1) {
                    lap = lap + u[i][j + 1] - u[i][j];
                }
                rhs[i][j] = forcing[i][j] + lap - 0.01 * u[i][j];
            }
        }
        x_sweep();
        y_sweep();
        for (int i = 0; i < n; ++i) {
            for (int j = 0; j < n; ++j) {
                u[i][j] = u[i][j] + dt * rhs[i][j];
            }
        }
        double unorm = 0.0;
        for (int i = 0; i < n; ++i) {
            for (int j = 0; j < n; ++j) {
                unorm = unorm + u[i][j] * u[i][j];
            }
        }
        print("step", step, "unorm", sqrt(unorm));
    }                                                    // @mclr-end
    print("u corner", u[0][0], u[__N__ - 1][__N__ - 1]);
    return 0;
}
"""


def build_source(n: int = 8, iters: int = 6) -> str:
    return _TEMPLATE.replace("__N__", str(n)).replace("__ITERS__", str(iters))


BT_APP = AppDefinition(
    name="bt",
    title="BT (NPB)",
    description="Block tri-diagonal solver: 2D solution field with "
                "directional sweeps performed in called functions.",
    category="NPB",
    parallel_model="OMP",
    source_builder=build_source,
    default_params={"n": 8, "iters": 6},
    large_params={"n": 32, "iters": 6},
    expected_critical={"u": "WAR", "step": "Index"},
    notes="5-point Laplacian + directional relaxation sweeps stand in for the "
          "5x5 block tri-diagonal factorisation.",
)
