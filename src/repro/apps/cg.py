"""NPB CG mini-app (the paper's Sec. IV-D case study).

Structure follows the paper's Algorithm 2: global vectors ``x``, ``z``,
``p``, ``q``, ``r`` and matrix ``A`` are initialised in ``main`` before the
main loop; every iteration calls ``conj_grad`` (which resets ``z``, ``r``,
``p``, ``q`` before using them) and then renormalises ``x`` from ``z``.  The
only loop-carried state is ``x`` — read inside ``conj_grad`` (``r = x``)
before being overwritten in ``main`` — plus the induction variable ``it``,
matching paper Table II (``x`` WAR, ``it`` Index).
"""

from __future__ import annotations

from repro.apps.base import AppDefinition

_TEMPLATE = """\
double A[__N__][__N__];
double x[__N__];
double z[__N__];
double p[__N__];
double q[__N__];
double r[__N__];

double conj_grad() {
    int n = __N__;
    int cgitmax = __CGIT__;
    for (int i = 0; i < n; ++i) {
        z[i] = 0.0;
        r[i] = x[i];
        p[i] = r[i];
        q[i] = 0.0;
    }
    double rho = 0.0;
    for (int i = 0; i < n; ++i) {
        rho = rho + r[i] * r[i];
    }
    for (int cgit = 0; cgit < cgitmax; ++cgit) {
        for (int i = 0; i < n; ++i) {
            double s = 0.0;
            for (int j = 0; j < n; ++j) {
                s = s + A[i][j] * p[j];
            }
            q[i] = s;
        }
        double d = 0.0;
        for (int i = 0; i < n; ++i) {
            d = d + p[i] * q[i];
        }
        double alpha = rho / d;
        for (int i = 0; i < n; ++i) {
            z[i] = z[i] + alpha * p[i];
            r[i] = r[i] - alpha * q[i];
        }
        double rho0 = rho;
        rho = 0.0;
        for (int i = 0; i < n; ++i) {
            rho = rho + r[i] * r[i];
        }
        double beta = rho / rho0;
        for (int i = 0; i < n; ++i) {
            p[i] = r[i] + beta * p[i];
        }
    }
    double rnorm = 0.0;
    for (int i = 0; i < n; ++i) {
        double az = 0.0;
        for (int j = 0; j < n; ++j) {
            az = az + A[i][j] * z[j];
        }
        double diff = x[i] - az;
        rnorm = rnorm + diff * diff;
    }
    return sqrt(rnorm);
}

int main() {
    int n = __N__;
    int niter = __ITERS__;
    double shift = 10.0;
    for (int i = 0; i < n; ++i) {
        x[i] = 1.0;
        z[i] = 0.0;
        p[i] = 0.0;
        q[i] = 0.0;
        r[i] = 0.0;
        for (int j = 0; j < n; ++j) {
            A[i][j] = 0.0;
        }
        A[i][i] = 4.0 + 0.01 * i;
        if (i > 0) {
            A[i][i - 1] = -1.0;
        }
        if (i < n - 1) {
            A[i][i + 1] = -1.0;
        }
    }
    double zeta = 0.0;
    double rnorm = 0.0;
    for (int it = 0; it < niter; ++it) {                 // @mclr-begin
        rnorm = conj_grad();
        double tnorm1 = 0.0;
        double tnorm2 = 0.0;
        for (int i = 0; i < n; ++i) {
            tnorm1 = tnorm1 + x[i] * z[i];
            tnorm2 = tnorm2 + z[i] * z[i];
        }
        tnorm2 = 1.0 / sqrt(tnorm2);
        for (int i = 0; i < n; ++i) {
            x[i] = tnorm2 * z[i];
        }
        zeta = shift + 1.0 / tnorm1;
        print("iter", it, "zeta", zeta, "rnorm", rnorm);
    }                                                    // @mclr-end
    return 0;
}
"""


def build_source(n: int = 12, cgit: int = 3, iters: int = 5) -> str:
    return (_TEMPLATE
            .replace("__N__", str(n))
            .replace("__CGIT__", str(cgit))
            .replace("__ITERS__", str(iters)))


CG_APP = AppDefinition(
    name="cg",
    title="CG (NPB)",
    description="Conjugate gradient with irregular memory access; computes "
                "the smallest eigenvalue estimate (zeta) of a sparse matrix.",
    category="NPB",
    parallel_model="OMP",
    source_builder=build_source,
    default_params={"n": 12, "cgit": 3, "iters": 5},
    large_params={"n": 40, "cgit": 3, "iters": 5},
    expected_critical={"x": "WAR", "it": "Index"},
    notes="Dense tridiagonal-plus-shift matrix instead of the NPB random "
          "sparse matrix; conj_grad structure follows the paper's Algorithm 2.",
)
