"""CoMD (ECP proxy) mini-app.

CoMD advances a molecular-dynamics system with velocity-Verlet steps and
accumulates per-phase performance timers.  The paper highlights ``sim``
(the ``SimFlatSt*`` aggregate holding positions/velocities/forces) as the
complicated-data-structure example (Sec. III); here ``sim`` is the same
aggregate flattened into a single array (positions, velocities, forces in
three contiguous sections), and ``perfTimer`` is the timer table.  Expected
critical variables (paper Table II): ``sim`` (WAR), ``perfTimer`` (WAR),
``iStep`` (Index).
"""

from __future__ import annotations

from repro.apps.base import AppDefinition

_TEMPLATE = """\
double sim[__SIMSIZE__];
double perfTimer[4];

int main() {
    int natoms = __NATOMS__;
    int nsteps = __STEPS__;
    double dt = 0.02;
    for (int i = 0; i < natoms; ++i) {
        sim[i] = i * 0.8 + 0.1 * sin(0.5 * i);
        sim[natoms + i] = 0.05 * cos(0.3 * i);
        sim[2 * natoms + i] = 0.0;
    }
    for (int t = 0; t < 4; ++t) {
        perfTimer[t] = 0.0;
    }
    for (int iStep = 0; iStep < nsteps; ++iStep) {       // @mclr-begin
        double tforce = clock();
        for (int i = 0; i < natoms; ++i) {
            double xi = sim[i];
            double left = xi;
            double right = xi;
            if (i > 0) {
                left = sim[i - 1];
            }
            if (i < natoms - 1) {
                right = sim[i + 1];
            }
            sim[2 * natoms + i] = -0.5 * (2.0 * xi - left - right) - 0.01 * xi;
        }
        perfTimer[0] = perfTimer[0] + (clock() - tforce);

        double tadvance = clock();
        for (int i = 0; i < natoms; ++i) {
            sim[natoms + i] = sim[natoms + i] + dt * sim[2 * natoms + i];
        }
        for (int i = 0; i < natoms; ++i) {
            sim[i] = sim[i] + dt * sim[natoms + i];
        }
        perfTimer[1] = perfTimer[1] + (clock() - tadvance);
        perfTimer[2] = perfTimer[2] + 1.0;

        double ekin = 0.0;
        for (int i = 0; i < natoms; ++i) {
            ekin = ekin + 0.5 * sim[natoms + i] * sim[natoms + i];
        }
        print("step", iStep, "ekin", ekin);
    }                                                    // @mclr-end
    double possum = 0.0;
    for (int i = 0; i < natoms; ++i) {
        possum = possum + sim[i];
    }
    print("position checksum", possum);
    print("force timer", perfTimer[0], "advance timer", perfTimer[1]);
    return 0;
}
"""


def build_source(natoms: int = 48, steps: int = 6) -> str:
    return (_TEMPLATE
            .replace("__SIMSIZE__", str(3 * natoms))
            .replace("__NATOMS__", str(natoms))
            .replace("__STEPS__", str(steps)))


COMD_APP = AppDefinition(
    name="comd",
    title="CoMD (ECP)",
    description="Molecular dynamics proxy: velocity-Verlet time stepping of "
                "a 1D chain with per-phase performance timers.",
    category="ECP",
    parallel_model="OMP+MPI",
    source_builder=build_source,
    default_params={"natoms": 48, "steps": 6},
    large_params={"natoms": 512, "steps": 6},
    expected_critical={"sim": "WAR", "perfTimer": "WAR", "iStep": "Index"},
    notes="The SimFlatSt aggregate (positions/velocities/forces across nested "
          "structs) is flattened into one `sim` array with three sections — "
          "the same single checkpointed object the paper identifies.",
)
