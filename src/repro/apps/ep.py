"""NPB EP mini-app.

EP generates pairs of Gaussian deviates and accumulates their sums (``sx``,
``sy``) and an annulus-count table ``q``.  All three are classic
read-modify-write accumulators carried across the outer batches — paper
Table II reports ``sy``, ``q``, ``sx`` as WAR and ``k`` as Index.

The deviates are a pure function of the batch and sample indices (mirroring
NPB's per-batch seeding), so a restarted run regenerates exactly the same
stream for the remaining batches.
"""

from __future__ import annotations

from repro.apps.base import AppDefinition

_TEMPLATE = """\
double q[10];
double sx;
double sy;

int main() {
    int batches = __BATCHES__;
    int nk = __NK__;
    for (int i = 0; i < 10; ++i) {
        q[i] = 0.0;
    }
    sx = 0.0;
    sy = 0.0;
    for (int k = 0; k < batches; ++k) {                  // @mclr-begin
        for (int i = 0; i < nk; ++i) {
            double seed = k * 1000.0 + i * 1.0;
            double u1 = sin(seed * 12.9898) * 43758.5453;
            u1 = u1 - floor(u1);
            double u2 = sin(seed * 78.2330) * 24634.6345;
            u2 = u2 - floor(u2);
            double x1 = 2.0 * u1 - 1.0;
            double x2 = 2.0 * u2 - 1.0;
            double t = x1 * x1 + x2 * x2;
            if (t <= 1.0 && t > 0.000001) {
                double f = sqrt(-2.0 * log(t) / t);
                double g1 = x1 * f;
                double g2 = x2 * f;
                double m = fmax(fabs(g1), fabs(g2));
                int l = m;
                if (l > 9) {
                    l = 9;
                }
                q[l] = q[l] + 1.0;
                sx = sx + g1;
                sy = sy + g2;
            }
        }
        print("batch", k, "sx", sx, "sy", sy);
    }                                                    // @mclr-end
    double qsum = 0.0;
    for (int i = 0; i < 10; ++i) {
        qsum = qsum + q[i];
    }
    print("counts", qsum, q[0], q[1], q[2]);
    return 0;
}
"""


def build_source(batches: int = 6, nk: int = 96) -> str:
    return (_TEMPLATE
            .replace("__BATCHES__", str(batches))
            .replace("__NK__", str(nk)))


EP_APP = AppDefinition(
    name="ep",
    title="EP (NPB)",
    description="Embarrassingly parallel: Gaussian deviate generation with "
                "sum and annulus-count accumulators.",
    category="NPB",
    parallel_model="OMP",
    source_builder=build_source,
    default_params={"batches": 6, "nk": 96},
    large_params={"batches": 6, "nk": 1024},
    expected_critical={"sy": "WAR", "q": "WAR", "sx": "WAR", "k": "Index"},
    notes="Marsaglia polar method over a hash-based deviate stream replaces "
          "NPB's vranlc generator (per-batch reproducibility preserved).",
)
