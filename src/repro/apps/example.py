"""The paper's worked example (Fig. 4).

This is the exact program of the paper's Fig. 4 rewritten in mini-C (the only
syntactic change is ``print`` instead of ``printf``).  The paper derives by
hand that the critical variables are ``r`` (WAR), ``a`` (RAPO), ``sum``
(Outcome) and ``it`` (Index), with MLI variables ``a``, ``b``, ``sum``, ``s``
and ``r`` — the integration tests and the Fig. 5 benchmark check AutoCheck
reproduces all of that automatically.
"""

from __future__ import annotations

from repro.apps.base import AppDefinition


def build_source(iterations: int = 10, size: int = 10) -> str:
    return f"""\
void foo(int *p, int *q) {{
    for (int i = 0; i < {size}; ++i) {{
        q[i] = p[i] * 2;
    }}
}}

int main() {{
    int a[{size}];
    int b[{size}];
    int sum = 0;
    int s = 0;
    int r = 1;
    for (int i = 0; i < {size}; ++i) {{
        a[i] = 0;
        b[i] = 0;
    }}
    for (int it = 0; it < {iterations}; ++it) {{   // @mclr-begin
        int m;
        s = it + 1;
        a[it] = s * r;
        foo(a, b);
        r++;
        m = a[it] + b[it];
        sum = m;
    }}                                             // @mclr-end
    print("sum", sum);
    return 0;
}}
"""


EXAMPLE_APP = AppDefinition(
    name="example",
    title="Paper Fig. 4 example code",
    description="The worked example used throughout the paper's Sec. IV "
                "(nested call foo(), WAR on r, RAPO on a, Outcome sum, Index it).",
    category="micro",
    parallel_model="serial",
    source_builder=build_source,
    default_params={"iterations": 10, "size": 10},
    large_params={"iterations": 10, "size": 10},
    expected_critical={
        "r": "WAR",
        "a": "RAPO",
        "sum": "Outcome",
        "it": "Index",
    },
    # The example's only output is the final `sum`, whose value happens to be
    # recomputed from scratch in the last iteration, so only `r` and `it` are
    # *output*-sensitive under ablation; `a` and `sum` still carry state that
    # a checkpoint must hold for full-state restoration.
    necessity_check=["r", "it"],
    notes="Identical to paper Fig. 4; iterations and array size are the "
          "paper's own (10).",
)
