"""NPB FT mini-app.

FT evolves a spectrum with per-iteration twiddle factors and reports a
checksum.  Like the real ``appft.c`` (paper Sec. V-B), the work on the global
arrays ``y`` and ``twiddle`` happens inside functions called from the main
loop, which is the scenario that motivates the paper's FT workaround: the
globals would be bypassed by the call-interval rule, so the analysis must be
told to include global accesses made inside calls (our
``include_global_accesses_in_calls`` option plays the role of the paper's
manual re-initialisation workaround).

Expected critical variables (paper Table II): ``y`` (WAR), ``sum`` (Outcome)
and the induction variable ``kt`` (Index).
"""

from __future__ import annotations

from repro.apps.base import AppDefinition

_TEMPLATE = """\
double y[__N__];
double x[__N__];
double twiddle[__N__];

void evolve() {
    for (int i = 0; i < __N__; ++i) {
        y[i] = y[i] * twiddle[i] + 0.001 * x[i];
    }
}

double checksum_stub() {
    double chk = 0.0;
    for (int i = 0; i < __N__; ++i) {
        chk = chk + y[i] * cos(0.1 * i) - y[i] * 0.05 * sin(0.2 * i);
    }
    return chk;
}

int main() {
    int n = __N__;
    int niter = __ITERS__;
    for (int i = 0; i < n; ++i) {
        x[i] = sin(0.7 * i) + 0.5;
        y[i] = x[i];
        twiddle[i] = exp(-0.05 * i) * 0.9 + 0.05;
    }
    double sum = 0.0;
    for (int kt = 1; kt <= niter; ++kt) {                // @mclr-begin
        evolve();
        double chk = checksum_stub();
        sum = chk;
        print("iter", kt, "checksum", chk);
    }                                                    // @mclr-end
    print("final checksum", sum);
    return 0;
}
"""


def build_source(n: int = 64, iters: int = 6) -> str:
    return _TEMPLATE.replace("__N__", str(n)).replace("__ITERS__", str(iters))


FT_APP = AppDefinition(
    name="ft",
    title="FT (NPB)",
    description="Discrete 3D FFT benchmark: spectrum evolution with twiddle "
                "factors plus a per-iteration checksum.",
    category="NPB",
    parallel_model="OMP",
    source_builder=build_source,
    default_params={"n": 64, "iters": 6},
    large_params={"n": 512, "iters": 6},
    expected_critical={"y": "WAR", "sum": "Outcome", "kt": "Index"},
    necessity_check=["y", "kt"],
    autocheck_options={"include_global_accesses_in_calls": True},
    notes="The FFT butterfly is replaced by a point-wise evolution + checksum "
          "(the dependency-relevant structure); the global-in-call collection "
          "option reproduces the paper's FT special case.",
)
