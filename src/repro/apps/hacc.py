"""HACC mini-app.

HACC (Hardware Accelerated Cosmology Code) advances particles with
kick-drift-kick leapfrog steps; the only loop-carried state of its driver
loop is the particle data (the ``Particles`` aggregate the paper highlights
in Sec. III) and the step counter.  Expected critical variables (paper
Table II): ``particles`` (WAR), ``step`` (Index).

The particle aggregate is flattened into one array with a position section
and a velocity section; the mesh force is recomputed every step.
"""

from __future__ import annotations

from repro.apps.base import AppDefinition

_TEMPLATE = """\
double particles[__PSIZE__];
double pm_force[__NPART__];

int main() {
    int npart = __NPART__;
    int nsteps = __STEPS__;
    double dt = 0.1;
    double center = npart * 0.5;
    for (int i = 0; i < npart; ++i) {
        particles[i] = i * 1.0 + 0.2 * sin(0.6 * i);
        particles[npart + i] = 0.02 * cos(0.4 * i);
        pm_force[i] = 0.0;
    }
    for (int step = 0; step < nsteps; ++step) {          // @mclr-begin
        for (int i = 0; i < npart; ++i) {
            double xi = particles[i];
            double neighbor = xi;
            if (i > 0) {
                neighbor = particles[i - 1];
            }
            pm_force[i] = -0.002 * (xi - center) + 0.001 * (neighbor - xi);
        }
        for (int i = 0; i < npart; ++i) {
            particles[npart + i] = particles[npart + i] + 0.5 * dt * pm_force[i];
        }
        for (int i = 0; i < npart; ++i) {
            particles[i] = particles[i] + dt * particles[npart + i];
        }
        for (int i = 0; i < npart; ++i) {
            particles[npart + i] = particles[npart + i] + 0.5 * dt * pm_force[i];
        }
        double ekin = 0.0;
        for (int i = 0; i < npart; ++i) {
            ekin = ekin + 0.5 * particles[npart + i] * particles[npart + i];
        }
        print("step", step, "ekin", ekin);
    }                                                    // @mclr-end
    double xsum = 0.0;
    for (int i = 0; i < npart; ++i) {
        xsum = xsum + particles[i];
    }
    print("position checksum", xsum);
    return 0;
}
"""


def build_source(npart: int = 48, steps: int = 6) -> str:
    return (_TEMPLATE
            .replace("__PSIZE__", str(2 * npart))
            .replace("__NPART__", str(npart))
            .replace("__STEPS__", str(steps)))


HACC_APP = AppDefinition(
    name="hacc",
    title="HACC",
    description="Cosmology N-body framework: kick-drift-kick leapfrog "
                "particle update with a recomputed mesh force.",
    category="application",
    parallel_model="OMP+MPI",
    source_builder=build_source,
    default_params={"npart": 48, "steps": 6},
    large_params={"npart": 1024, "steps": 6},
    expected_critical={"particles": "WAR", "step": "Index"},
    notes="The Particles aggregate is flattened into a position+velocity "
          "array; the particle-mesh force solver is a harmonic stand-in.",
)
