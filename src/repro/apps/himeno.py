"""Himeno benchmark mini-app.

The Himeno benchmark measures floating-point performance of a Jacobi
pressure-Poisson solver.  The loop-carried state is the pressure array ``p``
(updated in place from the previous iteration's values) and the outer
iteration counter ``n`` — exactly the two variables paper Table II reports
(``p`` WAR, ``n`` Index).  Coefficient arrays (``a``, ``bnd``) are read-only
and the work array ``wrk`` is fully overwritten every iteration, so neither
needs checkpointing.
"""

from __future__ import annotations

from repro.apps.base import AppDefinition

_TEMPLATE = """\
double p[__NX__][__NY__];
double a[__NX__][__NY__];
double bnd[__NX__][__NY__];
double wrk[__NX__][__NY__];

int main() {
    int nx = __NX__;
    int ny = __NY__;
    int nn = __ITERS__;
    double omega = 0.8;
    for (int i = 0; i < nx; ++i) {
        for (int j = 0; j < ny; ++j) {
            p[i][j] = (i * i) * 1.0 / ((nx - 1) * (nx - 1));
            a[i][j] = 0.25;
            bnd[i][j] = 1.0;
            wrk[i][j] = 0.0;
        }
    }
    double gosa = 0.0;
    for (int n = 0; n < nn; ++n) {                       // @mclr-begin
        gosa = 0.0;
        for (int i = 0; i < nx; ++i) {
            for (int j = 0; j < ny; ++j) {
                if (i > 0 && i < nx - 1 && j > 0 && j < ny - 1) {
                    double s0 = a[i][j] * (p[i + 1][j] + p[i - 1][j]
                                           + p[i][j + 1] + p[i][j - 1]);
                    double ss = (s0 - p[i][j]) * bnd[i][j];
                    gosa = gosa + ss * ss;
                    wrk[i][j] = p[i][j] + omega * ss;
                } else {
                    wrk[i][j] = p[i][j];
                }
            }
        }
        for (int i = 0; i < nx; ++i) {
            for (int j = 0; j < ny; ++j) {
                p[i][j] = wrk[i][j];
            }
        }
        print("iter", n, "gosa", gosa);
    }                                                    // @mclr-end
    double checksum = 0.0;
    for (int i = 0; i < nx; ++i) {
        for (int j = 0; j < ny; ++j) {
            checksum = checksum + p[i][j];
        }
    }
    print("pressure checksum", checksum);
    return 0;
}
"""


def build_source(nx: int = 8, ny: int = 8, iters: int = 6) -> str:
    return (_TEMPLATE
            .replace("__NX__", str(nx))
            .replace("__NY__", str(ny))
            .replace("__ITERS__", str(iters)))


HIMENO_APP = AppDefinition(
    name="himeno",
    title="Himeno",
    description="Poisson equation solver measuring floating point throughput "
                "(Jacobi pressure relaxation).",
    category="micro",
    parallel_model="MPI",
    source_builder=build_source,
    default_params={"nx": 8, "ny": 8, "iters": 6},
    large_params={"nx": 24, "ny": 24, "iters": 6},
    expected_critical={"p": "WAR", "n": "Index"},
    notes="Scaled to an 8x8 2D grid (paper input 8x8x8); the loop-carried "
          "pressure update structure is preserved.",
)
