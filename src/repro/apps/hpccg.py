"""HPCCG mini-app.

HPCCG is a conjugate-gradient benchmark whose main iteration loop lives
directly in ``HPCCG.cpp`` and additionally accumulates three phase timers.
Paper Table II reports ``t1``, ``t2``, ``t3``, ``r``, ``x``, ``p``,
``rtrans`` as WAR and ``k`` as the Index variable; all of these appear here
with the same roles: the timers accumulate per-iteration phase times, the CG
vectors are updated in place from their previous values, and ``rtrans`` is
read (as the previous residual norm) before being recomputed.
"""

from __future__ import annotations

from repro.apps.base import AppDefinition

_TEMPLATE = """\
double x[__N__];
double r[__N__];
double p[__N__];
double Ap[__N__];
double b[__N__];

int main() {
    int nrow = __N__;
    int niter = __ITERS__;
    for (int i = 0; i < nrow; ++i) {
        b[i] = 1.0;
        x[i] = 0.0;
        r[i] = b[i];
        p[i] = r[i];
        Ap[i] = 0.0;
    }
    double rtrans = 0.0;
    double oldrtrans = 0.0;
    double t1 = 0.0;
    double t2 = 0.0;
    double t3 = 0.0;
    for (int k = 0; k < niter; ++k) {                    // @mclr-begin
        double tbegin = clock();
        oldrtrans = rtrans;
        double local = 0.0;
        for (int i = 0; i < nrow; ++i) {
            local = local + r[i] * r[i];
        }
        rtrans = local;
        t1 = t1 + (clock() - tbegin);

        double beta = 0.0;
        if (k > 0) {
            beta = rtrans / oldrtrans;
        }
        double tw = clock();
        for (int i = 0; i < nrow; ++i) {
            p[i] = r[i] + beta * p[i];
        }
        t2 = t2 + (clock() - tw);

        double tm = clock();
        for (int i = 0; i < nrow; ++i) {
            double left = 0.0;
            double right = 0.0;
            if (i > 0) {
                left = p[i - 1];
            }
            if (i < nrow - 1) {
                right = p[i + 1];
            }
            Ap[i] = 2.0 * p[i] - left - right + 0.05 * p[i];
        }
        double pap = 0.0;
        for (int i = 0; i < nrow; ++i) {
            pap = pap + p[i] * Ap[i];
        }
        double alpha = rtrans / pap;
        for (int i = 0; i < nrow; ++i) {
            x[i] = x[i] + alpha * p[i];
        }
        for (int i = 0; i < nrow; ++i) {
            r[i] = r[i] - alpha * Ap[i];
        }
        t3 = t3 + (clock() - tm);
        print("iter", k, "rtrans", rtrans);
    }                                                    // @mclr-end
    double xsum = 0.0;
    for (int i = 0; i < nrow; ++i) {
        xsum = xsum + x[i];
    }
    print("xsum", xsum, "rtrans", rtrans);
    print("timers", t1, t2, t3);
    return 0;
}
"""


def build_source(n: int = 48, iters: int = 6) -> str:
    return _TEMPLATE.replace("__N__", str(n)).replace("__ITERS__", str(iters))


HPCCG_APP = AppDefinition(
    name="hpccg",
    title="HPCCG",
    description="Conjugate gradient benchmark for a 3D chimney domain "
                "(1D five-point operator stand-in), with phase timers.",
    category="micro",
    parallel_model="OMP+MPI",
    source_builder=build_source,
    default_params={"n": 48, "iters": 6},
    large_params={"n": 384, "iters": 6},
    expected_critical={
        "t1": "WAR",
        "t2": "WAR",
        "t3": "WAR",
        "r": "WAR",
        "x": "WAR",
        "p": "WAR",
        "rtrans": "WAR",
        "k": "Index",
    },
    notes="The sparse matrix is the implicit 1D Laplacian plus a diagonal "
          "shift instead of the 27-point 3D stencil; timers use the "
          "deterministic virtual clock.",
)
