"""NPB IS mini-app.

Integer Sort perturbs two entries of ``key_array`` every iteration, buckets
all keys, rebuilds the bucket pointer table, and runs a partial verification
that increments ``passed_verification``.  The partially-modified
``key_array`` and the prefix-sum-built ``bucket_ptrs`` are the paper's two
RAPO examples; ``passed_verification`` is a WAR accumulator and ``iteration``
the Index variable (paper Table II).
"""

from __future__ import annotations

from repro.apps.base import AppDefinition

_TEMPLATE = """\
int key_array[__NKEYS__];
int bucket_size[__NBUCKETS__];
int bucket_ptrs[__NBUCKETS__];
int passed_verification;

int main() {
    int nkeys = __NKEYS__;
    int nbuckets = __NBUCKETS__;
    int max_key = __NKEYS__;
    int niter = __ITERS__;
    int shift = nkeys / nbuckets;
    for (int i = 0; i < nkeys; ++i) {
        key_array[i] = (i * 37 + 11) % max_key;
    }
    for (int b = 0; b < nbuckets; ++b) {
        bucket_size[b] = 0;
        bucket_ptrs[b] = 0;
    }
    passed_verification = 0;
    for (int iteration = 1; iteration <= niter; ++iteration) {   // @mclr-begin
        key_array[iteration] = iteration;
        key_array[iteration + niter] = max_key - iteration;

        for (int b = 0; b < nbuckets; ++b) {
            bucket_size[b] = 0;
        }
        for (int i = 0; i < nkeys; ++i) {
            int b = key_array[i] / shift;
            if (b > nbuckets - 1) {
                b = nbuckets - 1;
            }
            bucket_size[b] = bucket_size[b] + 1;
        }
        bucket_ptrs[0] = 0;
        for (int b = 1; b < nbuckets; ++b) {
            bucket_ptrs[b] = bucket_ptrs[b - 1] + bucket_size[b - 1];
        }

        if (key_array[iteration] == iteration) {
            passed_verification = passed_verification + 1;
        }
        if (key_array[iteration + niter] == max_key - iteration) {
            passed_verification = passed_verification + 1;
        }
        print("iter", iteration, "passed", passed_verification,
              "last bucket", bucket_ptrs[nbuckets - 1]);
    }                                                            // @mclr-end
    print("passed_verification", passed_verification);
    int keysum = 0;
    for (int i = 0; i < nkeys; ++i) {
        keysum = keysum + key_array[i];
    }
    print("keysum", keysum);
    return 0;
}
"""


def build_source(nkeys: int = 64, nbuckets: int = 8, iters: int = 6) -> str:
    return (_TEMPLATE
            .replace("__NKEYS__", str(nkeys))
            .replace("__NBUCKETS__", str(nbuckets))
            .replace("__ITERS__", str(iters)))


IS_APP = AppDefinition(
    name="is",
    title="IS (NPB)",
    description="Integer sort with bucketed ranking, per-iteration key "
                "perturbation and partial verification.",
    category="NPB",
    parallel_model="OMP",
    source_builder=build_source,
    default_params={"nkeys": 64, "nbuckets": 8, "iters": 6},
    large_params={"nkeys": 1024, "nbuckets": 16, "iters": 6},
    expected_critical={
        "passed_verification": "WAR",
        "key_array": "RAPO",
        "bucket_ptrs": "RAPO",
        "iteration": "Index",
    },
    necessity_check=["passed_verification", "key_array", "iteration"],
    notes="Key ranking is reduced to bucket counting/prefix sums; the "
          "partial key modification and verification structure of is.c is "
          "preserved.",
)
