"""NPB LU mini-app.

LU's SSOR driver carries four arrays across iterations: the solution ``u``,
the residual/right-hand side ``rsd``, and the auxiliary fields ``rho_i`` and
``qs`` which are *consumed* by the lower/upper sweeps at the start of an
iteration and recomputed from the updated ``u`` at its end — the classic
read-before-overwrite (WAR) pattern.  Paper Table II: ``u``, ``rho_i``,
``qs``, ``rsd`` (WAR) and ``istep`` (Index).
"""

from __future__ import annotations

from repro.apps.base import AppDefinition

_TEMPLATE = """\
double u[__N__];
double rsd[__N__];
double rho_i[__N__];
double qs[__N__];
double frct[__N__];

int main() {
    int n = __N__;
    int niter = __ITERS__;
    for (int i = 0; i < n; ++i) {
        u[i] = 1.0 + 0.01 * i;
        frct[i] = 0.4 + 0.1 * sin(0.3 * i);
        rho_i[i] = 1.0 / u[i];
        qs[i] = 0.5 * u[i] * u[i];
        rsd[i] = frct[i] - 0.05 * u[i];
    }
    double tmp = 0.1;
    for (int istep = 0; istep < niter; ++istep) {        // @mclr-begin
        for (int i = 1; i < n; ++i) {
            rsd[i] = rsd[i] + 0.2 * rho_i[i] * rsd[i - 1];
        }
        for (int i = n - 2; i > 0; --i) {
            rsd[i] = rsd[i] + 0.2 * qs[i] * rsd[i + 1] * 0.1;
        }
        for (int i = 0; i < n; ++i) {
            u[i] = u[i] + tmp * rsd[i];
        }
        for (int i = 0; i < n; ++i) {
            rho_i[i] = 1.0 / u[i];
            qs[i] = 0.5 * u[i] * u[i];
        }
        for (int i = 0; i < n; ++i) {
            if (i > 0 && i < n - 1) {
                rsd[i] = frct[i] - 0.05 * u[i] - 0.02 * (2.0 * u[i] - u[i - 1] - u[i + 1]);
            } else {
                rsd[i] = frct[i] - 0.05 * u[i];
            }
        }
        double rsdnm = 0.0;
        for (int i = 0; i < n; ++i) {
            rsdnm = rsdnm + rsd[i] * rsd[i];
        }
        print("istep", istep, "rsdnm", sqrt(rsdnm));
    }                                                    // @mclr-end
    double usum = 0.0;
    for (int i = 0; i < n; ++i) {
        usum = usum + u[i];
    }
    print("usum", usum);
    return 0;
}
"""


def build_source(n: int = 64, iters: int = 6) -> str:
    return _TEMPLATE.replace("__N__", str(n)).replace("__ITERS__", str(iters))


LU_APP = AppDefinition(
    name="lu",
    title="LU (NPB)",
    description="Lower-Upper Gauss-Seidel (SSOR) solver: lower/upper sweeps "
                "over the residual, solution update, auxiliary field "
                "recomputation.",
    category="NPB",
    parallel_model="OMP",
    source_builder=build_source,
    default_params={"n": 64, "iters": 6},
    large_params={"n": 512, "iters": 6},
    expected_critical={
        "u": "WAR",
        "rho_i": "WAR",
        "qs": "WAR",
        "rsd": "WAR",
        "istep": "Index",
    },
    notes="1D SSOR sweep structure; rho_i/qs are consumed by the sweeps and "
          "recomputed from the updated u at the end of each iteration, as in "
          "the NPB code.",
)
