"""NPB MG mini-app.

MG applies V-cycles to a Poisson problem; each main-loop iteration first
corrects the solution ``u`` using the current residual ``r`` (reading both)
and then recomputes ``r`` from ``u`` and the right-hand side ``v``.  Both
``u`` and ``r`` therefore carry state across iterations (WAR) while ``v`` is
read-only — exactly paper Table II's ``u`` (WAR), ``r`` (WAR), ``it`` (Index).
"""

from __future__ import annotations

from repro.apps.base import AppDefinition

_TEMPLATE = """\
double u[__N__];
double r[__N__];
double v[__N__];

int main() {
    int n = __N__;
    int niter = __ITERS__;
    for (int i = 0; i < n; ++i) {
        u[i] = 0.0;
        v[i] = sin(0.3 * i);
        r[i] = v[i];
    }
    for (int it = 0; it < niter; ++it) {                 // @mclr-begin
        for (int i = 1; i < n - 1; ++i) {
            u[i] = u[i] + 0.45 * r[i] + 0.1 * (r[i - 1] + r[i + 1]);
        }
        for (int i = 0; i < n; ++i) {
            if (i > 0 && i < n - 1) {
                r[i] = v[i] - (2.0 * u[i] - u[i - 1] - u[i + 1]) - 0.05 * u[i];
            } else {
                r[i] = v[i] - 2.0 * u[i];
            }
        }
        double rnorm = 0.0;
        for (int i = 0; i < n; ++i) {
            rnorm = rnorm + r[i] * r[i];
        }
        print("iter", it, "rnorm", sqrt(rnorm));
    }                                                    // @mclr-end
    double usum = 0.0;
    for (int i = 0; i < n; ++i) {
        usum = usum + u[i];
    }
    print("usum", usum);
    return 0;
}
"""


def build_source(n: int = 64, iters: int = 6) -> str:
    return _TEMPLATE.replace("__N__", str(n)).replace("__ITERS__", str(iters))


MG_APP = AppDefinition(
    name="mg",
    title="MG (NPB)",
    description="Multi-grid solver on a sequence of meshes (single-level "
                "smoother/residual cycle stand-in).",
    category="NPB",
    parallel_model="OMP",
    source_builder=build_source,
    default_params={"n": 64, "iters": 6},
    large_params={"n": 512, "iters": 6},
    expected_critical={"u": "WAR", "r": "WAR", "it": "Index"},
    notes="Single-grid smoother + residual recomputation preserves the "
          "u/r loop-carried dependency structure of the NPB V-cycle.",
)
