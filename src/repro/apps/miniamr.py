"""miniAMR (ECP proxy) mini-app.

miniAMR's driver loop carries a large population of timers and counters
(paper Table II lists "29 timers" plus ~18 counters, all WAR) along with the
block data, the ``done`` flag and the time-step counter ``ts``.  The mini-app
keeps the same *kinds* of loop-carried state with a reduced roster (three
timers, six counters, the block array, ``done`` and ``ts``); EXPERIMENTS.md
documents the reduction.

One deliberate labelling difference: the paper reports ``done`` as an Index
variable (it terminates the while-loop); our static induction analysis
recognises ``ts`` as the induction variable and the ``done`` flag is flagged
through its read-before-write (WAR) dependency instead — either way it is
checkpointed.
"""

from __future__ import annotations

from repro.apps.base import AppDefinition

_TEMPLATE = """\
double blocks[__NBLOCKS__];
double timer_calc;
double timer_refine;
double timer_total;
double tmax;
double tmin;
int counter_bc;
int total_fp_adds;
int total_fp_divs;
int total_blocks;
int global_active;

int main() {
    int nblocks = __NBLOCKS__;
    int max_ts = __MAXTS__;
    for (int i = 0; i < nblocks; ++i) {
        blocks[i] = 1.0 + 0.05 * sin(0.4 * i);
    }
    timer_calc = 0.0;
    timer_refine = 0.0;
    timer_total = 0.0;
    tmax = 0.0;
    tmin = 1000000.0;
    counter_bc = 0;
    total_fp_adds = 0;
    total_fp_divs = 0;
    total_blocks = 0;
    global_active = nblocks;
    int done = 0;
    int ts = 1;
    while (!done && ts <= max_ts) {                      // @mclr-begin
        double tstart = clock();
        for (int i = 1; i < nblocks - 1; ++i) {
            blocks[i] = (blocks[i - 1] + blocks[i] + blocks[i + 1]) / 3.0;
        }
        total_fp_adds = total_fp_adds + 2 * global_active;
        total_fp_divs = total_fp_divs + global_active;
        counter_bc = counter_bc + 2;
        timer_calc = timer_calc + (clock() - tstart);

        double trefine = clock();
        if (ts % 2 == 0) {
            global_active = global_active + 4;
        } else {
            global_active = global_active - 2;
        }
        total_blocks = total_blocks + global_active;
        timer_refine = timer_refine + (clock() - trefine);

        if (blocks[nblocks / 2] > tmax) {
            tmax = blocks[nblocks / 2];
        }
        if (blocks[1] < tmin) {
            tmin = blocks[1];
        }

        timer_total = timer_total + (clock() - tstart);
        print("ts", ts, "active", global_active, "mid", blocks[nblocks / 2]);
        ts = ts + 1;
        if (ts > max_ts) {
            done = 1;
        }
    }                                                    // @mclr-end
    print("total blocks", total_blocks, "bc", counter_bc);
    print("fp adds", total_fp_adds, "fp divs", total_fp_divs);
    print("timers", timer_calc, timer_refine, timer_total);
    print("tmax", tmax, "tmin", tmin);
    return 0;
}
"""


def build_source(nblocks: int = 64, max_ts: int = 6) -> str:
    return (_TEMPLATE
            .replace("__NBLOCKS__", str(nblocks))
            .replace("__MAXTS__", str(max_ts)))


MINIAMR_APP = AppDefinition(
    name="miniamr",
    title="miniAMR (ECP)",
    description="3D stencil with adaptive mesh refinement: stencil sweep over "
                "block data plus refinement bookkeeping counters and timers.",
    category="ECP",
    parallel_model="OMP+MPI",
    source_builder=build_source,
    default_params={"nblocks": 64, "max_ts": 6},
    large_params={"nblocks": 1024, "max_ts": 6},
    expected_critical={
        "blocks": "WAR",
        "timer_calc": "WAR",
        "timer_refine": "WAR",
        "timer_total": "WAR",
        "tmax": "WAR",
        "tmin": "WAR",
        "counter_bc": "WAR",
        "total_fp_adds": "WAR",
        "total_fp_divs": "WAR",
        "total_blocks": "WAR",
        "global_active": "WAR",
        "done": "WAR",
        "ts": "Index",
    },
    necessity_check=["blocks", "counter_bc", "total_fp_adds", "total_blocks",
                     "global_active", "ts"],
    notes="The paper's 29 timers / 18 counters are represented by 3 timers "
          "and 6 counters with the same accumulation pattern; `done` is "
          "reported as WAR here (Index in the paper) — see EXPERIMENTS.md.",
)
