"""Registry of all bundled applications.

``APP_ORDER`` follows the row order of paper Table II (Himeno, HPCCG, the
NPB kernels, the ECP proxies, HACC); the paper's Fig. 4 example is registered
under ``example`` and the large-array address-resolution stress app under
``bigarray`` — neither is part of the 14-benchmark study tables.
"""

from __future__ import annotations

from typing import Dict, List

from repro.apps.base import AppDefinition
from repro.apps.bigarray import BIGARRAY_APP
from repro.apps.example import EXAMPLE_APP
from repro.apps.himeno import HIMENO_APP
from repro.apps.hpccg import HPCCG_APP
from repro.apps.cg import CG_APP
from repro.apps.mg import MG_APP
from repro.apps.ft import FT_APP
from repro.apps.sp import SP_APP
from repro.apps.ep import EP_APP
from repro.apps.is_sort import IS_APP
from repro.apps.bt import BT_APP
from repro.apps.lu import LU_APP
from repro.apps.comd import COMD_APP
from repro.apps.miniamr import MINIAMR_APP
from repro.apps.amg import AMG_APP
from repro.apps.hacc import HACC_APP

#: Table II row order (the 14 benchmarks of the study).
APP_ORDER: List[str] = [
    "himeno",
    "hpccg",
    "cg",
    "mg",
    "ft",
    "sp",
    "ep",
    "is",
    "bt",
    "lu",
    "comd",
    "miniamr",
    "amg",
    "hacc",
]

_REGISTRY: Dict[str, AppDefinition] = {
    "example": EXAMPLE_APP,
    "bigarray": BIGARRAY_APP,
    "himeno": HIMENO_APP,
    "hpccg": HPCCG_APP,
    "cg": CG_APP,
    "mg": MG_APP,
    "ft": FT_APP,
    "sp": SP_APP,
    "ep": EP_APP,
    "is": IS_APP,
    "bt": BT_APP,
    "lu": LU_APP,
    "comd": COMD_APP,
    "miniamr": MINIAMR_APP,
    "amg": AMG_APP,
    "hacc": HACC_APP,
}


#: Bundled apps outside the 14-benchmark study tables.
EXTRA_APPS: List[str] = ["bigarray"]


def get_app(name: str) -> AppDefinition:
    """Look up an application by its short name (raises ``KeyError``)."""
    return _REGISTRY[name]


def app_names(include_example: bool = False,
              include_extras: bool = False) -> List[str]:
    """Names of the 14 study benchmarks.

    ``include_example`` prepends the Fig. 4 example; ``include_extras``
    appends the non-study apps (``bigarray``).  With both set this is the
    full 16-app bundled fleet, which is what campaign-scale sweeps run.
    """
    names = list(APP_ORDER)
    if include_example:
        names.insert(0, "example")
    if include_extras:
        names.extend(EXTRA_APPS)
    return names


def all_apps(include_example: bool = False,
             include_extras: bool = False) -> List[AppDefinition]:
    """The 14 study benchmarks in Table II order (plus optional extras)."""
    return [_REGISTRY[name]
            for name in app_names(include_example, include_extras)]
