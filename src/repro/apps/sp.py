"""NPB SP mini-app.

SP advances the solution array ``u`` with an ADI-style step: compute the
right-hand side from ``u``, sweep it, and add the update back into ``u``.
The solution array is read before being overwritten each time step (WAR);
``rhs`` is fully recomputed and ``forcing`` is read-only.  Paper Table II:
``u`` (WAR), ``step`` (Index).
"""

from __future__ import annotations

from repro.apps.base import AppDefinition

_TEMPLATE = """\
double u[__N__];
double rhs[__N__];
double forcing[__N__];

int main() {
    int n = __N__;
    int niter = __ITERS__;
    for (int i = 0; i < n; ++i) {
        u[i] = 1.0 + 0.02 * i;
        forcing[i] = 0.5 * sin(0.2 * i);
        rhs[i] = 0.0;
    }
    double dt = 0.1;
    for (int step = 0; step < niter; ++step) {           // @mclr-begin
        for (int i = 0; i < n; ++i) {
            if (i > 0 && i < n - 1) {
                rhs[i] = forcing[i] - (2.0 * u[i] - u[i - 1] - u[i + 1]) - 0.02 * u[i];
            } else {
                rhs[i] = forcing[i] - 0.02 * u[i];
            }
        }
        for (int i = 1; i < n; ++i) {
            rhs[i] = rhs[i] + 0.25 * rhs[i - 1];
        }
        for (int i = n - 2; i > 0; --i) {
            rhs[i] = rhs[i] + 0.25 * rhs[i + 1];
        }
        for (int i = 0; i < n; ++i) {
            u[i] = u[i] + dt * rhs[i];
        }
        double unorm = 0.0;
        for (int i = 0; i < n; ++i) {
            unorm = unorm + u[i] * u[i];
        }
        print("step", step, "unorm", sqrt(unorm));
    }                                                    // @mclr-end
    print("u mid", u[__N__ / 2]);
    return 0;
}
"""


def build_source(n: int = 64, iters: int = 6) -> str:
    return _TEMPLATE.replace("__N__", str(n)).replace("__ITERS__", str(iters))


SP_APP = AppDefinition(
    name="sp",
    title="SP (NPB)",
    description="Scalar penta-diagonal solver: ADI-style time stepping of a "
                "solution field with forward/backward sweeps.",
    category="NPB",
    parallel_model="OMP",
    source_builder=build_source,
    default_params={"n": 64, "iters": 6},
    large_params={"n": 512, "iters": 6},
    expected_critical={"u": "WAR", "step": "Index"},
    notes="1D penta-diagonal-style sweeps stand in for the 3D factored "
          "solves; the u/rhs dependency structure is preserved.",
)
