"""``repro.campaign`` — fleet-scale fault-injection checkpoint campaigns.

The paper's headline claim is that the AutoCheck-selected critical-variable
set is *sufficient and necessary* to restart a crashed run (Sec. VI-B), and
that checkpointing it costs orders of magnitude less storage than a
whole-process BLCR dump (Table IV).  This package turns that claim into an
executable scenario matrix:

* :mod:`repro.campaign.plan` — deterministic trial planning: per-cell RNG
  forks draw the kill points (including the kill-before-first-checkpoint and
  kill-during-checkpoint-write edges) so a campaign is a pure function of
  its seed;
* :mod:`repro.campaign.runner` — the :class:`CampaignRunner`: store-warm
  analysis + instrumented baseline per app, process-pool fan-out of trial
  batches, Young/Daly cadence resolution under a synthetic time model;
* :mod:`repro.campaign.report` — per-trial restart-equivalence records,
  per-app verdicts (equivalence, necessity false positives, storage saved vs
  BLCR, measured vs predicted waste) and the canonical-JSON fleet report.

CLI: the ``campaign`` verb (see ``docs/cli.md``).
"""

from repro.campaign.plan import (
    CONTENT_POLICIES,
    INTERVAL_POLICIES,
    KILL_BEFORE_FIRST,
    KILL_DURING_WRITE,
    KILL_RANDOM,
    PolicyError,
    TrialSpec,
    cell_rng,
    parse_policies,
    plan_cell,
    writes_per_run,
)
from repro.campaign.report import (
    AppVerdict,
    CampaignReport,
    NecessityVerdict,
    TrialResult,
    outputs_equivalent,
)
from repro.campaign.runner import (
    CampaignConfig,
    CampaignRunner,
    resolve_app_names,
    run_campaign,
)

__all__ = [
    "AppVerdict",
    "CONTENT_POLICIES",
    "CampaignConfig",
    "CampaignReport",
    "CampaignRunner",
    "INTERVAL_POLICIES",
    "KILL_BEFORE_FIRST",
    "KILL_DURING_WRITE",
    "KILL_RANDOM",
    "NecessityVerdict",
    "PolicyError",
    "TrialResult",
    "TrialSpec",
    "cell_rng",
    "outputs_equivalent",
    "parse_policies",
    "plan_cell",
    "resolve_app_names",
    "run_campaign",
    "writes_per_run",
]
