"""Deterministic trial planning for fault-injection campaigns.

A campaign sweeps the matrix

    apps x checkpoint content x interval policy x N kill points

and every cell's kill points are drawn from a per-cell fork of a single
seeded RNG, so the complete trial plan is a pure function of
``(apps, policies, trials, seed)`` — independent of iteration order, worker
count, or which cells ran before.  Two campaigns with the same seed produce
byte-identical plans (and, because the interpreter itself is deterministic,
byte-identical verdicts).

Each cell's first trial pins the *kill-before-first-checkpoint* edge
(failure in iteration 1, before any within-loop state has been saved) and
its second pins *kill-during-checkpoint-write* (the process dies inside the
storage ``write()``/``os.replace()`` window, leaving a torn tmp file);
remaining trials kill at RNG-chosen iterations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence
from zlib import crc32

from repro.util.rng import DeterministicRNG

#: What goes into a checkpoint: the AutoCheck critical set, every variable
#: live at the main loop, or a BLCR-style whole-process image.
CONTENT_POLICIES = ("critical", "full", "blcr")

#: When checkpoints are written: a fixed every-k-iterations cadence, or the
#: Young / Daly optimal-interval models quantized to whole iterations.
INTERVAL_POLICIES = ("every-k", "young", "daly")

#: Kill-point kinds a trial can carry.
KILL_BEFORE_FIRST = "before-first-checkpoint"
KILL_DURING_WRITE = "during-checkpoint-write"
KILL_RANDOM = "random-iteration"


class PolicyError(ValueError):
    """Raised for an unknown app, content policy, or interval policy."""


@dataclass(frozen=True)
class TrialSpec:
    """One planned fault-injection trial."""

    app: str
    content: str
    interval_policy: str
    #: Checkpoint cadence in loop iterations for this cell (>= 1).
    interval_iterations: int
    trial_index: int
    kill_kind: str
    #: Body-entry count at which the fail-stop failure fires (``None`` for
    #: during-write kills, which fire inside a storage write instead).
    kill_iteration: Optional[int]
    #: 1-based index of the checkpoint write that crashes mid-window
    #: (``None`` for plain iteration kills).
    fail_at_checkpoint_write: Optional[int]


def parse_policies(csv: str, known: Sequence[str], kind: str) -> List[str]:
    """Parse a comma-separated policy list, preserving ``known`` order.

    Raises :class:`PolicyError` (CLI exit code 2) on unknown names.
    """
    requested = [item.strip() for item in csv.split(",") if item.strip()]
    if not requested:
        raise PolicyError(f"no {kind} policies requested in {csv!r}")
    unknown = sorted(set(requested) - set(known))
    if unknown:
        raise PolicyError(
            f"unknown {kind} polic{'ies' if len(unknown) > 1 else 'y'} "
            f"{', '.join(unknown)} (known: {', '.join(known)})")
    return [name for name in known if name in requested]


def cell_rng(seed: int, app: str, content: str, interval_policy: str
             ) -> DeterministicRNG:
    """The RNG fork owning one (app, content, interval) cell's draws."""
    salt = crc32(f"{app}|{content}|{interval_policy}".encode("utf-8"))
    return DeterministicRNG(seed).fork(salt)


def plan_cell(app: str, content: str, interval_policy: str,
              interval_iterations: int, trials: int, seed: int,
              iterations: int, writes_per_run: int) -> List[TrialSpec]:
    """Plan one cell's trials.

    Args:
        interval_iterations: the cell's checkpoint cadence (already resolved
            from the interval policy).
        trials: how many kill points to draw (>= 1).
        iterations: loop iterations the app runs failure-free.
        writes_per_run: checkpoint writes a failure-free run performs at
            this cadence (0 disables the during-write edge for the cell).
    """
    if trials < 1:
        raise PolicyError(f"trials must be >= 1, got {trials}")
    if iterations < 1:
        raise PolicyError(f"{app}: main loop runs {iterations} iterations; "
                          f"campaigns need at least 1")
    rng = cell_rng(seed, app, content, interval_policy)
    specs: List[TrialSpec] = []
    for index in range(trials):
        if index == 0:
            kind, kill, write = KILL_BEFORE_FIRST, 1, None
        elif index == 1 and writes_per_run > 0:
            kind, kill = KILL_DURING_WRITE, None
            write = 1 + rng.next_int(writes_per_run)
        else:
            kind, write = KILL_RANDOM, None
            kill = 1 + rng.next_int(iterations)
        specs.append(TrialSpec(
            app=app, content=content, interval_policy=interval_policy,
            interval_iterations=interval_iterations, trial_index=index,
            kill_kind=kind, kill_iteration=kill,
            fail_at_checkpoint_write=write,
        ))
    return specs


def writes_per_run(iterations: int, interval_iterations: int) -> int:
    """Checkpoint writes a failure-free run performs.

    The instrumentation checkpoints on header entries ``1..iterations + 1``
    (entry N saves the state *before* iteration N; the final entry is the one
    that exits the loop), at every entry divisible by the cadence.
    """
    if interval_iterations < 1:
        raise PolicyError(
            f"interval must be >= 1 iteration, got {interval_iterations}")
    return (iterations + 1) // interval_iterations
