"""Campaign results: per-trial records, per-app verdicts, fleet report.

The report is the executable form of the paper's Sec. VI-B validation and
Table IV storage study: every trial asserts *restart equivalence* against an
uninterrupted run, every app aggregates equivalence / necessity / storage /
waste numbers, and the whole campaign renders as a table or as canonical
JSON.  The JSON deliberately carries no wall-clock timing and is serialized
with sorted keys, so identical seeds reproduce identical bytes.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.util.formatting import format_bytes, render_table


def outputs_equivalent(reference: Sequence[str], failed_output: Sequence[str],
                       restart_output: Sequence[str]) -> bool:
    """Restart-equivalence criterion for one failure + restart cycle.

    What an operator keeps after a crash is the failed run's output followed
    by the restarted run's output.  With a checkpoint cadence > 1 the restart
    resumes from a checkpoint *before* the kill point and legitimately
    re-prints the replayed iterations' output (and a cold restart re-prints
    everything), so plain concatenation equality is too strict.  The correct
    invariant is:

    * the failed output is a prefix of the failure-free reference,
    * the restart output is a suffix of it,
    * together they cover it (no gap — nothing was silently skipped).
    """
    reference = list(reference)
    failed_output = list(failed_output)
    restart_output = list(restart_output)
    if failed_output != reference[:len(failed_output)]:
        return False
    if len(restart_output) > len(reference):
        return False
    if restart_output != reference[len(reference) - len(restart_output):]:
        return False
    return len(failed_output) + len(restart_output) >= len(reference)


@dataclass
class TrialResult:
    """Outcome of one fault-injection trial."""

    app: str
    content: str
    interval_policy: str
    interval_iterations: int
    trial_index: int
    kill_kind: str
    kill_iteration: Optional[int]
    fail_at_checkpoint_write: Optional[int]
    equivalent: bool
    #: Iteration of the checkpoint the restart restored (``None`` = cold
    #: restart, no checkpoint existed yet).
    restored_iteration: Optional[int]
    #: Checkpoints the failed run committed before dying.
    checkpoints_written: int
    #: Application bytes per committed checkpoint snapshot.
    snapshot_bytes: int
    #: Total checkpoint bytes the failed run wrote (snapshots x size).
    bytes_written: int
    #: Completed iterations the restart had to re-execute.
    lost_iterations: int
    #: Simulated fraction of this trial's machine time lost to checkpoint
    #: writes plus re-executed work (compare against the model prediction).
    measured_waste_fraction: float
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None and self.equivalent


@dataclass
class NecessityVerdict:
    """Drop-one ablation outcome for one app's critical set."""

    checked_variables: List[str]
    false_positives: List[str]

    @property
    def all_necessary(self) -> bool:
        return not self.false_positives


@dataclass
class AppVerdict:
    """Aggregated campaign verdict for one app."""

    app: str
    iterations: int
    trials: int
    equivalent_trials: int
    errors: List[str] = field(default_factory=list)
    critical_variables: List[str] = field(default_factory=list)
    #: Per-snapshot checkpoint bytes by content policy.
    snapshot_bytes: Dict[str, int] = field(default_factory=dict)
    #: Bytes a BLCR-style whole-process checkpoint would write.
    blcr_bytes: int = 0
    #: Storage saved per snapshot by the critical set vs BLCR.
    saved_bytes_vs_blcr: int = 0
    #: BLCR bytes / critical bytes (the Table IV ratio).
    storage_ratio: float = 0.0
    #: Interval-model predicted waste fraction for the critical set.
    predicted_waste_fraction: float = 0.0
    #: Mean measured waste fraction across this app's trials.
    measured_waste_fraction: float = 0.0
    necessity: Optional[NecessityVerdict] = None

    @property
    def restart_equivalence_pass(self) -> bool:
        return (not self.errors and self.trials > 0
                and self.equivalent_trials == self.trials)

    @property
    def necessity_pass(self) -> bool:
        return self.necessity is None or self.necessity.all_necessary

    @property
    def ok(self) -> bool:
        return self.restart_equivalence_pass and self.necessity_pass


@dataclass
class CampaignReport:
    """Everything one campaign produced."""

    seed: int
    trials_per_cell: int
    content_policies: List[str]
    interval_policies: List[str]
    apps: List[AppVerdict]
    trials: List[TrialResult]

    @property
    def all_pass(self) -> bool:
        return bool(self.apps) and all(verdict.ok for verdict in self.apps)

    @property
    def total_trials(self) -> int:
        return len(self.trials)

    # ------------------------------------------------------------------ #
    # Serialization (canonical: no timing, sorted keys, stable floats)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": 1,
            "seed": self.seed,
            "trials_per_cell": self.trials_per_cell,
            "content_policies": list(self.content_policies),
            "interval_policies": list(self.interval_policies),
            "all_pass": self.all_pass,
            "apps": [self._verdict_dict(verdict) for verdict in self.apps],
            "trials": [asdict(trial) for trial in self.trials],
        }

    @staticmethod
    def _verdict_dict(verdict: AppVerdict) -> Dict[str, object]:
        payload = asdict(verdict)
        payload["restart_equivalence_pass"] = verdict.restart_equivalence_pass
        payload["necessity_pass"] = verdict.necessity_pass
        return payload

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #
    def summary(self) -> str:
        rows = []
        for verdict in self.apps:
            necessity = "-"
            if verdict.necessity is not None:
                necessity = ("OK" if verdict.necessity.all_necessary else
                             "FP: " + ", ".join(verdict.necessity.false_positives))
            rows.append((
                verdict.app,
                f"{verdict.equivalent_trials}/{verdict.trials}",
                "PASS" if verdict.restart_equivalence_pass else "FAIL",
                necessity,
                format_bytes(verdict.snapshot_bytes.get("critical", 0)),
                format_bytes(verdict.blcr_bytes),
                format_bytes(verdict.saved_bytes_vs_blcr),
                f"{verdict.storage_ratio:.0f}x",
                f"{verdict.predicted_waste_fraction * 100:.1f}%",
                f"{verdict.measured_waste_fraction * 100:.1f}%",
            ))
        table = render_table(
            ("app", "equiv", "restart", "necessity", "critical",
             "blcr", "saved", "ratio", "waste*", "waste"),
            rows)
        status = "PASS" if self.all_pass else "FAIL"
        totals = (f"{len(self.apps)} apps x "
                  f"{'/'.join(self.content_policies)} x "
                  f"{'/'.join(self.interval_policies)}: "
                  f"{self.total_trials} trials, seed {self.seed} -> {status}  "
                  f"(waste* = interval-model prediction)")
        return f"{table}\n{totals}"
