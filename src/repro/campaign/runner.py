"""The fault-injection campaign runner.

Wires ``AutoCheckReport.critical_variables`` straight into instrumented
interpreter runs and sweeps the full validation matrix::

    apps x checkpoint content x interval policy x N seeded kill points

For every app the runner first *preps*: it analyses the app through the
artifact store (warm entries make this a digest lookup), then executes one
failure-free instrumented baseline to learn the loop's iteration count, the
full set of variables live at the main loop, the reference output, and the
BLCR-style process-image size.  From those numbers it resolves each cell's
checkpoint cadence (fixed every-k, or Young/Daly intervals fed by a
synthetic time model), plans the kill points with a per-cell seeded RNG
fork, and fans per-app trial batches across the same process pool
``analyze-batch`` uses.  Every trial runs a failure + restart cycle and
asserts restart equivalence against the reference output.

The synthetic time model (one second per iteration, a modest storage link,
a short MTBF) exists to make the Young/Daly policies produce *different,
small* cadences on the mini benchmarks; it is deliberately constant so
campaigns stay deterministic.
"""

from __future__ import annotations

import functools
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps.registry import app_names, get_app
from repro.campaign.plan import (
    CONTENT_POLICIES,
    INTERVAL_POLICIES,
    KILL_DURING_WRITE,
    PolicyError,
    TrialSpec,
    parse_policies,
    plan_cell,
    writes_per_run,
)
from repro.campaign.report import (
    AppVerdict,
    CampaignReport,
    NecessityVerdict,
    TrialResult,
    outputs_equivalent,
)
from repro.checkpoint.blcr import BLCRModel
from repro.checkpoint.fti import FTIConfig
from repro.checkpoint.instrument import CheckpointInstrumenter
from repro.checkpoint.interval import (
    checkpoint_cost_seconds,
    daly_interval,
    expected_waste_fraction,
    interval_in_iterations,
    young_interval,
)
from repro.checkpoint.validate import RestartValidator
from repro.codegen.lowering import compile_source
from repro.core.config import MainLoopSpec
from repro.store.batch import analyze_app_cached, map_over_pool

# --------------------------------------------------------------------------- #
# Synthetic time model (constant => campaigns stay deterministic)
# --------------------------------------------------------------------------- #
#: Simulated compute time per loop iteration.
SIM_SECONDS_PER_ITERATION = 1.0
#: Simulated checkpoint-storage bandwidth (a modest local SSD share).
SIM_BANDWIDTH_BYTES_PER_SECOND = 2e7
#: Simulated per-checkpoint latency floor.
SIM_LATENCY_SECONDS = 0.05
#: Simulated mean time between failures.
SIM_MTBF_SECONDS = 25.0


@dataclass
class CampaignConfig:
    """Everything that determines a campaign (and hence its verdicts)."""

    apps: List[str]
    content_policies: List[str] = field(
        default_factory=lambda: list(CONTENT_POLICIES))
    interval_policies: List[str] = field(default_factory=lambda: ["every-k"])
    trials: int = 3
    seed: int = 7
    #: Cadence used by the ``every-k`` interval policy.
    every_k: int = 2
    workers: int = 1
    run_necessity: bool = False
    use_cache: bool = True
    cache_dir: Optional[str] = None
    trace_dir: Optional[str] = None
    #: Interpreter seed (the apps' RNG), independent of the campaign seed.
    app_seed: int = 314159
    mtbf_seconds: float = SIM_MTBF_SECONDS
    bandwidth_bytes_per_second: float = SIM_BANDWIDTH_BYTES_PER_SECOND
    latency_seconds: float = SIM_LATENCY_SECONDS
    seconds_per_iteration: float = SIM_SECONDS_PER_ITERATION


def resolve_app_names(spec: str) -> List[str]:
    """Expand a ``--apps`` value (``all`` or a comma list) to app names.

    Raises :class:`PolicyError` on unknown names (CLI exit code 2).
    """
    fleet = app_names(include_example=True, include_extras=True)
    requested = [item.strip() for item in spec.split(",") if item.strip()]
    if not requested:
        raise PolicyError(f"no apps requested in {spec!r}")
    if requested == ["all"]:
        return fleet
    unknown = sorted(set(requested) - set(fleet))
    if unknown:
        raise PolicyError(
            f"unknown app{'s' if len(unknown) > 1 else ''} "
            f"{', '.join(unknown)} (known: all, {', '.join(fleet)})")
    return requested


# --------------------------------------------------------------------------- #
# Per-app prep (module-level: runs on the process pool)
# --------------------------------------------------------------------------- #
@dataclass
class AppPrep:
    """What one app's analysis + failure-free baseline established."""

    app: str
    critical_variables: List[str] = field(default_factory=list)
    #: name -> size_bytes of every variable live at the main loop.
    loop_variables: Dict[str, int] = field(default_factory=dict)
    iterations: int = 0
    blcr_bytes: int = 0
    reference_output: List[str] = field(default_factory=list)
    error: Optional[str] = None


def _prepare_app(app_name: str, use_cache: bool, cache_dir: Optional[str],
                 trace_dir: Optional[str], app_seed: int) -> AppPrep:
    """Analyse one app (store-warm) and run its instrumented baseline."""
    try:
        report = analyze_app_cached(app_name, use_cache=use_cache,
                                    cache_dir=cache_dir, trace_dir=trace_dir,
                                    seed=app_seed)
        app = get_app(app_name)
        source = app.source()
        module = compile_source(source, module_name=app.name)
        spec = app.main_loop(source)
        with tempfile.TemporaryDirectory(prefix="campaign-base-") as ckpt_dir:
            instrumenter = CheckpointInstrumenter(
                module, spec, [], FTIConfig(directory=ckpt_dir),
                seed=app_seed)
            baseline = instrumenter.run()
        if baseline.failed:
            return AppPrep(app=app_name,
                           error="failure-free baseline unexpectedly failed")
        if baseline.result.memory is None:
            return AppPrep(app=app_name,
                           error="baseline carries no memory statistics")
        if baseline.checkpoints_written < 2:
            return AppPrep(app=app_name,
                           error="main loop never iterated; nothing to kill")
        return AppPrep(
            app=app_name,
            critical_variables=report.names(),
            loop_variables=dict(baseline.loop_variables),
            # Header entries 1..N+1 each committed a checkpoint at cadence 1.
            iterations=baseline.checkpoints_written - 1,
            blcr_bytes=BLCRModel().checkpoint_bytes(baseline.result.memory),
            reference_output=list(baseline.output),
        )
    except Exception as exc:  # noqa: BLE001 — one bad app must not kill the fleet
        return AppPrep(app=app_name, error=f"{type(exc).__name__}: {exc}")


# --------------------------------------------------------------------------- #
# Per-app trial batch (module-level: runs on the process pool)
# --------------------------------------------------------------------------- #
@dataclass
class AppWork:
    """One app's full trial batch, self-contained for a pool worker."""

    app: str
    app_seed: int
    trials: List[TrialSpec]
    #: content policy -> protected variable names for that policy.
    protected_sets: Dict[str, List[str]]
    #: content policy -> accounted bytes per checkpoint snapshot.
    snapshot_bytes: Dict[str, int]
    reference_output: List[str]
    iterations: int
    critical_variables: List[str]
    necessity_variables: List[str]
    run_necessity: bool
    mtbf_seconds: float
    bandwidth_bytes_per_second: float
    latency_seconds: float
    seconds_per_iteration: float


def _run_app_work(work: AppWork) -> Tuple[List[TrialResult],
                                          Optional[NecessityVerdict]]:
    """Execute every planned trial (and the optional ablation) for one app."""
    app = get_app(work.app)
    source = app.source()
    module = compile_source(source, module_name=app.name)
    spec = app.main_loop(source)

    results = [_run_trial(module, spec, work, trial) for trial in work.trials]

    necessity: Optional[NecessityVerdict] = None
    if work.run_necessity:
        checked = [name for name in work.necessity_variables
                   if name in work.critical_variables]
        with RestartValidator(module, spec, benchmark=work.app,
                              seed=work.app_seed) as validator:
            study = validator.necessity_study(
                work.critical_variables, check_variables=checked,
                fail_at_iteration=min(3, work.iterations))
        necessity = NecessityVerdict(checked_variables=checked,
                                     false_positives=study.false_positives)
    return results, necessity


def _run_trial(module, spec: MainLoopSpec, work: AppWork,
               trial: TrialSpec) -> TrialResult:
    """One failure + restart cycle, verdicted against the reference output."""
    protected = work.protected_sets[trial.content]
    snapshot_bytes = work.snapshot_bytes[trial.content]
    try:
        with tempfile.TemporaryDirectory(prefix="campaign-trial-") as ckpt_dir:
            config = FTIConfig(directory=ckpt_dir,
                               checkpoint_interval=trial.interval_iterations)
            instrumenter = CheckpointInstrumenter(
                module, spec, protected, config, seed=work.app_seed,
                on_missing="skip")
            failed = instrumenter.run(
                restart=False,
                fail_at_iteration=trial.kill_iteration,
                fail_at_checkpoint_write=trial.fail_at_checkpoint_write)
            if not failed.failed:
                raise RuntimeError("injected failure did not fire")
            restart = instrumenter.run(restart=True)
            if restart.failed:
                raise RuntimeError("restart run failed")
        equivalent = outputs_equivalent(work.reference_output, failed.output,
                                        restart.output)
        completed = _completed_iterations(trial)
        restored_completed = (restart.restored_iteration - 1
                              if restart.restored_iteration is not None else 0)
        lost = max(0, completed - restored_completed)
        waste = _measured_waste_fraction(
            work, snapshot_bytes, lost,
            failed.checkpoints_written + restart.checkpoints_written)
        return TrialResult(
            app=trial.app, content=trial.content,
            interval_policy=trial.interval_policy,
            interval_iterations=trial.interval_iterations,
            trial_index=trial.trial_index, kill_kind=trial.kill_kind,
            kill_iteration=trial.kill_iteration,
            fail_at_checkpoint_write=trial.fail_at_checkpoint_write,
            equivalent=equivalent,
            restored_iteration=restart.restored_iteration,
            checkpoints_written=failed.checkpoints_written,
            snapshot_bytes=snapshot_bytes,
            bytes_written=failed.checkpoints_written * snapshot_bytes,
            lost_iterations=lost,
            measured_waste_fraction=waste,
        )
    except Exception as exc:  # noqa: BLE001 — record, don't kill the batch
        return TrialResult(
            app=trial.app, content=trial.content,
            interval_policy=trial.interval_policy,
            interval_iterations=trial.interval_iterations,
            trial_index=trial.trial_index, kill_kind=trial.kill_kind,
            kill_iteration=trial.kill_iteration,
            fail_at_checkpoint_write=trial.fail_at_checkpoint_write,
            equivalent=False, restored_iteration=None, checkpoints_written=0,
            snapshot_bytes=snapshot_bytes, bytes_written=0, lost_iterations=0,
            measured_waste_fraction=0.0,
            error=f"{type(exc).__name__}: {exc}",
        )


def _completed_iterations(trial: TrialSpec) -> int:
    """Iterations the failed run finished before dying."""
    if trial.kill_kind == KILL_DURING_WRITE:
        # The w-th write happens on the w*k-th header entry, i.e. after
        # iteration w*k - 1 completed.
        assert trial.fail_at_checkpoint_write is not None
        return trial.fail_at_checkpoint_write * trial.interval_iterations - 1
    assert trial.kill_iteration is not None
    return trial.kill_iteration - 1


def _measured_waste_fraction(work: AppWork, snapshot_bytes: int,
                             lost_iterations: int, total_writes: int) -> float:
    """Simulated fraction of machine time this cycle lost to C/R overhead."""
    cost = checkpoint_cost_seconds(snapshot_bytes,
                                   work.bandwidth_bytes_per_second,
                                   work.latency_seconds)
    useful = work.iterations * work.seconds_per_iteration
    waste = total_writes * cost + lost_iterations * work.seconds_per_iteration
    return waste / (useful + waste) if useful + waste > 0 else 0.0


# --------------------------------------------------------------------------- #
# The runner
# --------------------------------------------------------------------------- #
class CampaignRunner:
    """Plan, execute and aggregate one fault-injection campaign."""

    def __init__(self, config: CampaignConfig) -> None:
        if config.trials < 1:
            raise PolicyError(f"trials must be >= 1, got {config.trials}")
        if config.every_k < 1:
            raise PolicyError(f"every-k must be >= 1, got {config.every_k}")
        for name in config.content_policies:
            if name not in CONTENT_POLICIES:
                raise PolicyError(f"unknown content policy {name!r}")
        for name in config.interval_policies:
            if name not in INTERVAL_POLICIES:
                raise PolicyError(f"unknown interval policy {name!r}")
        self.config = config

    # -- planning ------------------------------------------------------- #
    def _snapshot_bytes(self, prep: AppPrep) -> Dict[str, int]:
        """Accounted bytes per checkpoint snapshot, by content policy."""
        critical = sum(prep.loop_variables.get(name, 0)
                       for name in prep.critical_variables)
        return {
            "critical": critical,
            "full": sum(prep.loop_variables.values()),
            "blcr": prep.blcr_bytes,
        }

    def _interval_iterations(self, content_bytes: int,
                             interval_policy: str) -> int:
        config = self.config
        if interval_policy == "every-k":
            return config.every_k
        cost = checkpoint_cost_seconds(content_bytes,
                                       config.bandwidth_bytes_per_second,
                                       config.latency_seconds)
        model = young_interval if interval_policy == "young" else daly_interval
        return interval_in_iterations(model(cost, config.mtbf_seconds),
                                      config.seconds_per_iteration)

    def _build_work(self, prep: AppPrep) -> AppWork:
        config = self.config
        snapshot_bytes = self._snapshot_bytes(prep)
        full_names = list(prep.loop_variables)
        protected_sets = {
            "critical": list(prep.critical_variables),
            # A BLCR-style process image restores everything too; on the
            # interpreter both restore every live loop variable — they differ
            # only in accounted bytes.
            "full": full_names,
            "blcr": full_names,
        }
        trials: List[TrialSpec] = []
        for content in config.content_policies:
            for interval_policy in config.interval_policies:
                cadence = self._interval_iterations(snapshot_bytes[content],
                                                    interval_policy)
                trials.extend(plan_cell(
                    prep.app, content, interval_policy, cadence,
                    config.trials, config.seed, prep.iterations,
                    writes_per_run(prep.iterations, cadence)))
        app = get_app(prep.app)
        return AppWork(
            app=prep.app, app_seed=config.app_seed, trials=trials,
            protected_sets={name: protected_sets[name]
                            for name in config.content_policies},
            snapshot_bytes={name: snapshot_bytes[name]
                            for name in config.content_policies},
            reference_output=prep.reference_output,
            iterations=prep.iterations,
            critical_variables=list(prep.critical_variables),
            necessity_variables=app.necessity_variables(),
            run_necessity=config.run_necessity,
            mtbf_seconds=config.mtbf_seconds,
            bandwidth_bytes_per_second=config.bandwidth_bytes_per_second,
            latency_seconds=config.latency_seconds,
            seconds_per_iteration=config.seconds_per_iteration,
        )

    # -- aggregation ----------------------------------------------------- #
    def _verdict(self, prep: AppPrep, trials: List[TrialResult],
                 necessity: Optional[NecessityVerdict]) -> AppVerdict:
        config = self.config
        snapshot_bytes = self._snapshot_bytes(prep)
        errors = [f"trial {t.trial_index} ({t.content}/{t.interval_policy}): "
                  f"{t.error}" for t in trials if t.error]
        if prep.error:
            errors.insert(0, f"prep: {prep.error}")
        critical_bytes = snapshot_bytes["critical"]
        ratio = (prep.blcr_bytes / critical_bytes) if critical_bytes else 0.0
        critical_trials = [t for t in trials
                           if t.content == "critical" and not t.error]
        measured = (sum(t.measured_waste_fraction for t in critical_trials)
                    / len(critical_trials)) if critical_trials else 0.0
        predicted = 0.0
        if critical_bytes and config.interval_policies:
            cost = checkpoint_cost_seconds(critical_bytes,
                                           config.bandwidth_bytes_per_second,
                                           config.latency_seconds)
            cadence = self._interval_iterations(critical_bytes,
                                                config.interval_policies[0])
            predicted = expected_waste_fraction(
                cadence * config.seconds_per_iteration, cost,
                config.mtbf_seconds)
        return AppVerdict(
            app=prep.app,
            iterations=prep.iterations,
            trials=len(trials),
            equivalent_trials=sum(1 for t in trials if t.ok),
            errors=errors,
            critical_variables=list(prep.critical_variables),
            snapshot_bytes={name: snapshot_bytes[name]
                            for name in config.content_policies},
            blcr_bytes=prep.blcr_bytes,
            saved_bytes_vs_blcr=max(0, prep.blcr_bytes - critical_bytes),
            storage_ratio=ratio,
            predicted_waste_fraction=predicted,
            measured_waste_fraction=measured,
            necessity=necessity,
        )

    # -- execution ------------------------------------------------------- #
    def run(self) -> CampaignReport:
        config = self.config
        preps = map_over_pool(
            functools.partial(_prepare_app, use_cache=config.use_cache,
                              cache_dir=config.cache_dir,
                              trace_dir=config.trace_dir,
                              app_seed=config.app_seed),
            config.apps, config.workers)

        works = [self._build_work(prep) for prep in preps if prep.error is None]
        outcomes = map_over_pool(_run_app_work, works, config.workers)
        by_app = {work.app: outcome for work, outcome in zip(works, outcomes)}

        verdicts: List[AppVerdict] = []
        all_trials: List[TrialResult] = []
        for prep in preps:
            trials, necessity = by_app.get(prep.app, ([], None))
            verdicts.append(self._verdict(prep, trials, necessity))
            all_trials.extend(trials)
        return CampaignReport(
            seed=config.seed,
            trials_per_cell=config.trials,
            content_policies=list(config.content_policies),
            interval_policies=list(config.interval_policies),
            apps=verdicts,
            trials=all_trials,
        )


def run_campaign(config: CampaignConfig) -> CampaignReport:
    """Convenience wrapper: plan + execute + aggregate one campaign."""
    return CampaignRunner(config).run()


# Re-exported so campaign callers need one import.
__all__ = [
    "AppPrep",
    "AppWork",
    "CampaignConfig",
    "CampaignRunner",
    "SIM_BANDWIDTH_BYTES_PER_SECOND",
    "SIM_LATENCY_SECONDS",
    "SIM_MTBF_SECONDS",
    "SIM_SECONDS_PER_ITERATION",
    "resolve_app_names",
    "run_campaign",
]
