"""``repro.checkpoint`` — Checkpoint/Restart substrate.

The paper validates AutoCheck's output by protecting the detected variables
with FTI (L1 local checkpoints), injecting a fail-stop failure inside the
main computation loop, restarting, and comparing the output against a
failure-free run; it also compares checkpoint storage cost against BLCR's
whole-process checkpoints (Table IV).  This package reproduces all of that
against the tracing interpreter:

* :mod:`repro.checkpoint.fti` — an FTI-like protect/checkpoint/recover API
  with pluggable storage;
* :mod:`repro.checkpoint.storage` — local (L1-style) checkpoint files;
* :mod:`repro.checkpoint.instrument` — inserts "read checkpoint before the
  main loop / write checkpoint each iteration" into interpreted runs, plus
  fail-stop fault injection;
* :mod:`repro.checkpoint.validate` — the restart-validation and per-variable
  necessity (false-positive) studies of Sec. VI-B;
* :mod:`repro.checkpoint.blcr` — the BLCR-style whole-process storage-cost
  baseline of Table IV.
"""

from repro.checkpoint.storage import CheckpointData, CheckpointStorage
from repro.checkpoint.fti import FTI, FTIConfig, FTILevel, FTIError
from repro.checkpoint.instrument import CheckpointInstrumenter, InstrumentedRun
from repro.checkpoint.validate import (
    NecessityResult,
    RestartValidator,
    ValidationResult,
)
from repro.checkpoint.blcr import BLCRModel, StorageComparison, compare_storage_cost

__all__ = [
    "CheckpointData",
    "CheckpointStorage",
    "FTI",
    "FTIConfig",
    "FTILevel",
    "FTIError",
    "CheckpointInstrumenter",
    "InstrumentedRun",
    "NecessityResult",
    "RestartValidator",
    "ValidationResult",
    "BLCRModel",
    "StorageComparison",
    "compare_storage_cost",
]
