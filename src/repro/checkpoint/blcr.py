"""BLCR-style whole-process checkpoint cost model (paper Table IV baseline).

Berkeley Lab Checkpoint/Restart saves the entire process image: code, heap,
stack and globals.  AutoCheck-selected checkpoints only hold the few critical
variables, which is where the multiple-orders-of-magnitude storage saving of
Table IV comes from.

On the interpreter the equivalent of the process image is: all module
globals + the peak stack footprint + a fixed process overhead standing in for
the text/heap/runtime segments a real BLCR dump contains (configurable;
defaults to 8 MiB, a deliberately conservative stand-in for a small
statically linked MPI binary — documented in DESIGN.md/EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.tracer.interpreter import ExecutionResult
from repro.tracer.memory import Memory
from repro.util.formatting import format_bytes

#: Fixed stand-in for the code/heap/runtime part of a real process image.
DEFAULT_PROCESS_OVERHEAD_BYTES = 8 * 1024 * 1024


@dataclass
class BLCRModel:
    """Estimate the size of a whole-process (system-level) checkpoint."""

    process_overhead_bytes: int = DEFAULT_PROCESS_OVERHEAD_BYTES

    def checkpoint_bytes(self, memory: Memory) -> int:
        return (memory.total_global_bytes + memory.peak_stack_bytes
                + self.process_overhead_bytes)

    def checkpoint_bytes_from_result(self, result: ExecutionResult) -> int:
        if result.memory is None:
            raise ValueError("execution result carries no memory statistics")
        return self.checkpoint_bytes(result.memory)


@dataclass
class StorageComparison:
    """One row of the Table IV comparison."""

    benchmark: str
    blcr_bytes: int
    autocheck_bytes: int

    @property
    def ratio(self) -> float:
        if self.autocheck_bytes == 0:
            return float("inf")
        return self.blcr_bytes / self.autocheck_bytes

    @property
    def saved_bytes(self) -> int:
        """Absolute storage saved per checkpoint vs the BLCR baseline."""
        return max(0, self.blcr_bytes - self.autocheck_bytes)

    def summary(self) -> str:
        return (f"{self.benchmark}: BLCR {format_bytes(self.blcr_bytes)} vs "
                f"AutoCheck {format_bytes(self.autocheck_bytes)} "
                f"({self.ratio:.1f}x smaller)")


def compare_storage_cost(benchmark: str, result: ExecutionResult,
                         autocheck_bytes: int,
                         model: Optional[BLCRModel] = None) -> StorageComparison:
    """Build a Table IV style row for one benchmark run."""
    model = model or BLCRModel()
    return StorageComparison(
        benchmark=benchmark,
        blcr_bytes=model.checkpoint_bytes_from_result(result),
        autocheck_bytes=autocheck_bytes,
    )
