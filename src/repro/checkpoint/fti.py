"""An FTI-like application-level checkpoint library.

The API mirrors the Fault Tolerance Interface the paper uses for validation
(Bautista-Gomez et al., SC'11): ``protect`` registers a variable, ``checkpoint``
persists every protected variable, ``recover`` restores them, and ``status``
tells the application whether a restart is in progress.  Only the L1
(node-local) level is modelled, which is the level the paper uses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.checkpoint.storage import CheckpointData, CheckpointStorage

Number = Union[int, float]
Reader = Callable[[], List[Number]]
Writer = Callable[[List[Number]], None]


class FTIError(Exception):
    """Raised on misuse of the checkpoint API."""


class FTILevel(enum.IntEnum):
    """Checkpoint levels; only L1 (local storage) is implemented, like the
    paper's evaluation ("We use the most basic FTI checkpointing mode L1")."""

    L1 = 1


@dataclass
class FTIConfig:
    """Configuration of an :class:`FTI` instance."""

    directory: str
    level: FTILevel = FTILevel.L1
    keep_history: bool = False
    checkpoint_interval: int = 1


@dataclass
class _ProtectedVariable:
    vid: int
    name: str
    size_bytes: int
    reader: Reader
    writer: Writer


class FTI:
    """Protect / checkpoint / recover registered variables."""

    def __init__(self, config: FTIConfig) -> None:
        self.config = config
        self.storage = CheckpointStorage(config.directory,
                                         keep_history=config.keep_history)
        self._protected: Dict[int, _ProtectedVariable] = {}
        self._by_name: Dict[str, _ProtectedVariable] = {}
        self._checkpoints_written = 0
        self._finalized = False

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def protect(self, vid: int, name: str, size_bytes: int,
                reader: Reader, writer: Writer) -> None:
        """Register a variable for checkpointing.

        ``reader`` returns the variable's current element values and
        ``writer`` overwrites them — the instrumentation layer wires these to
        the interpreter's memory.
        """
        if vid in self._protected:
            raise FTIError(f"variable id {vid} already protected")
        if name in self._by_name:
            raise FTIError(f"variable name {name!r} already protected")
        variable = _ProtectedVariable(vid=vid, name=name, size_bytes=size_bytes,
                                      reader=reader, writer=writer)
        self._protected[vid] = variable
        self._by_name[name] = variable

    def protected_names(self) -> List[str]:
        return list(self._by_name.keys())

    def protected_bytes(self) -> int:
        return sum(variable.size_bytes for variable in self._protected.values())

    # ------------------------------------------------------------------ #
    # Checkpoint / recover
    # ------------------------------------------------------------------ #
    def status(self) -> bool:
        """True when a checkpoint exists to recover from (like FTI_Status)."""
        return self.storage.latest() is not None

    def checkpoint(self, iteration: int) -> Optional[str]:
        """Persist all protected variables (honours the configured interval)."""
        if self._finalized:
            raise FTIError("checkpoint after finalize")
        interval = max(1, self.config.checkpoint_interval)
        if iteration % interval != 0:
            return None
        data = CheckpointData(iteration=iteration)
        for variable in self._protected.values():
            data.variables[variable.name] = list(variable.reader())
            data.sizes_bytes[variable.name] = variable.size_bytes
        path = self.storage.write(data)
        self._checkpoints_written += 1
        return path

    def recover(self, names: Optional[Sequence[str]] = None) -> CheckpointData:
        """Restore protected variables from the most recent checkpoint.

        ``names`` optionally restricts restoration to a subset (used by the
        necessity study, which deliberately drops one variable at a time).
        """
        latest = self.storage.latest()
        if latest is None:
            raise FTIError("no checkpoint available to recover from")
        restore_names = set(names) if names is not None else set(latest.variables)
        for name, values in latest.variables.items():
            if name not in restore_names:
                continue
            variable = self._by_name.get(name)
            if variable is None:
                continue
            variable.writer(list(values))
        return latest

    def finalize(self) -> None:
        self._finalized = True

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def checkpoints_written(self) -> int:
        return self._checkpoints_written

    def last_checkpoint(self) -> Optional[CheckpointData]:
        return self.storage.latest()

    def checkpoint_bytes(self) -> int:
        """Bytes of application state held in the latest checkpoint."""
        latest = self.storage.latest()
        if latest is None:
            return 0
        return latest.total_bytes
