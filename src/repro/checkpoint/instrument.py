"""Checkpoint instrumentation of interpreted runs.

The paper inserts C/R calls at two points (Sec. II-B, "C/R insertion"):
reading checkpoints right before the main computation loop, and writing
checkpoints at the end of every loop iteration.  On the interpreter the same
effect is achieved with block-entry hooks on the main loop's *header* block:

* entering the header for the first time happens right before the first
  iteration — that is where a restarting run restores the protected
  variables (including the induction variable, so execution continues from
  the iteration after the last checkpoint);
* every subsequent header entry marks the completion of one iteration — that
  is where checkpoints are written.

Fail-stop failures are injected on entry to the loop *body* block, i.e. the
process dies mid-iteration, which is the harshest point for consistency.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.induction import find_main_loop
from repro.analysis.loops import find_loops
from repro.checkpoint.fti import FTI, FTIConfig
from repro.checkpoint.storage import CheckpointData
from repro.core.config import MainLoopSpec
from repro.ir.module import Module
from repro.tracer.faults import FaultInjector, SimulatedFailure
from repro.tracer.interpreter import ExecutionResult, HookContext, Interpreter


class InstrumentationError(Exception):
    """Raised when the main loop cannot be located in the module."""


@dataclass
class InstrumentedRun:
    """Outcome of one instrumented execution."""

    result: ExecutionResult
    fti: FTI
    checkpoints_written: int = 0
    restored_iteration: Optional[int] = None
    #: Protected names that had no live allocation at the main loop and were
    #: skipped (only populated with ``on_missing="skip"``).
    skipped_variables: List[str] = field(default_factory=list)
    #: name -> size_bytes of every variable live at the first header entry
    #: (globals plus the main-loop frame's stack allocations).  This is the
    #: "full application state" a naive checkpointer would have to save.
    loop_variables: Dict[str, int] = field(default_factory=dict)

    @property
    def output(self) -> List[str]:
        return self.result.output

    @property
    def failed(self) -> bool:
        return self.result.failed


class CheckpointInstrumenter:
    """Wire an FTI instance into interpreted executions of a module."""

    def __init__(self, module: Module, main_loop: MainLoopSpec,
                 protected_variables: Sequence[str], fti_config: FTIConfig,
                 seed: int = 314159, on_missing: str = "error") -> None:
        if on_missing not in ("error", "skip"):
            raise ValueError(
                f"on_missing must be 'error' or 'skip', got {on_missing!r}")
        self.module = module
        self.main_loop = main_loop
        self.protected_variables = list(protected_variables)
        self.fti_config = fti_config
        self.seed = seed
        self.on_missing = on_missing

        function = module.function(main_loop.function)
        loops = find_loops(function)
        loop = find_main_loop(function, main_loop.start_line, main_loop.end_line,
                              loop_info=loops)
        if loop is None:
            raise InstrumentationError(
                f"no loop found in {main_loop.function!r} within lines "
                f"{main_loop.mclr}")
        self.loop = loop
        self.header_block = loop.header.name
        terminator = loop.header.terminator
        targets = getattr(terminator, "targets", [])
        if not targets:
            raise InstrumentationError("main loop header has no branch targets")
        self.body_block = targets[0].name

    # ------------------------------------------------------------------ #
    # Variable plumbing
    # ------------------------------------------------------------------ #
    def _register_protected(self, fti: FTI, interpreter: Interpreter,
                            context: HookContext) -> List[str]:
        """Bind each protected variable name to interpreter memory accessors.

        Returns the names that could not be resolved (only possible with
        ``on_missing="skip"``; with the default ``"error"`` an unresolvable
        name raises :class:`InstrumentationError`).
        """
        skipped: List[str] = []
        for vid, name in enumerate(self.protected_variables):
            if name in fti.protected_names():
                continue
            allocation = interpreter.resolve_variable(name, frame=context.frame)
            if allocation is None:
                if self.on_missing == "skip":
                    skipped.append(name)
                    continue
                raise InstrumentationError(
                    f"protected variable {name!r} has no allocation at the "
                    f"main loop (is it declared in {self.main_loop.function!r}?)")
            memory = interpreter.memory

            def reader(alloc=allocation):
                return memory.read_block(alloc)

            def writer(values, alloc=allocation):
                memory.write_block(alloc, values)

            fti.protect(vid, name, allocation.size_bytes, reader, writer)
        return skipped

    @staticmethod
    def _snapshot_loop_variables(interpreter: Interpreter,
                                 context: HookContext) -> Dict[str, int]:
        """Name -> size_bytes of every allocation live at the main loop."""
        live: Dict[str, int] = {
            name: alloc.size_bytes
            for name, alloc in interpreter.global_allocations.items()
        }
        if context.frame is not None:
            for name, alloc in context.frame.allocations.items():
                live[name] = alloc.size_bytes
        return live

    # ------------------------------------------------------------------ #
    # Runs
    # ------------------------------------------------------------------ #
    def run(self, restart: bool = False, fail_at_iteration: Optional[int] = None,
            recover_names: Optional[Sequence[str]] = None,
            fail_at_checkpoint_write: Optional[int] = None,
            max_steps: int = 50_000_000) -> InstrumentedRun:
        """Execute the module with checkpoint instrumentation.

        ``restart=True`` restores the protected variables from the latest
        checkpoint when the main loop is first entered.  ``fail_at_iteration``
        injects a fail-stop failure on entry to that iteration's body.
        ``recover_names`` optionally restricts which variables are restored
        (the necessity/false-positive study).  ``fail_at_checkpoint_write=w``
        kills the run during its ``w``-th (1-based) checkpoint write: a torn
        tmp file is left on disk and the write never commits, modelling a
        crash inside the write()/os.replace() window.
        """
        fti = FTI(self.fti_config)
        if fail_at_checkpoint_write is not None:
            self._arm_torn_write(fti, fail_at_checkpoint_write)
        interpreter = Interpreter(self.module, trace_sink=None, seed=self.seed,
                                  max_steps=max_steps)
        run_info = InstrumentedRun(result=None, fti=fti)  # type: ignore[arg-type]
        state = {"registered": False, "restored": False}

        def header_hook(context: HookContext) -> None:
            if not state["registered"]:
                run_info.skipped_variables = self._register_protected(
                    fti, interpreter, context)
                run_info.loop_variables = self._snapshot_loop_variables(
                    interpreter, context)
                state["registered"] = True
            if restart and not state["restored"]:
                state["restored"] = True
                if fti.status():
                    recovered = fti.recover(names=recover_names)
                    run_info.restored_iteration = recovered.iteration
                return
            # Header entry N (N >= 1) marks completion of iteration N-1.
            fti.checkpoint(iteration=context.entry_count)
            run_info.checkpoints_written = fti.checkpoints_written

        interpreter.register_block_hook(self.main_loop.function,
                                        self.header_block, header_hook)
        if fail_at_iteration is not None:
            injector = FaultInjector(function=self.main_loop.function,
                                     block=self.body_block,
                                     fail_at_entry=fail_at_iteration)
            interpreter.register_block_hook(self.main_loop.function,
                                            self.body_block, injector)

        result = interpreter.run()
        run_info.result = result
        run_info.checkpoints_written = fti.checkpoints_written
        return run_info

    @staticmethod
    def _arm_torn_write(fti: FTI, fail_at_write: int) -> None:
        """Make the ``fail_at_write``-th storage write crash mid-window.

        The doomed write leaves a truncated ``*.json.tmp*`` file behind (as a
        real crash between ``open`` and ``os.replace`` would) and raises
        :class:`SimulatedFailure` before the rename, so the previous complete
        checkpoint must remain the recovery point.
        """
        if fail_at_write < 1:
            raise ValueError("fail_at_checkpoint_write must be >= 1")
        storage = fti.storage
        original_write = storage.write
        attempts = {"count": 0}

        def failing_write(checkpoint: CheckpointData) -> str:
            attempts["count"] += 1
            if attempts["count"] == fail_at_write:
                torn_path = (storage._path_for(checkpoint.iteration)
                             + ".tmp.torn")
                payload = json.dumps({"iteration": checkpoint.iteration,
                                      "variables": checkpoint.variables})
                with open(torn_path, "w", encoding="utf-8") as handle:
                    handle.write(payload[:max(1, len(payload) // 2)])
                raise SimulatedFailure(
                    f"simulated crash during checkpoint write "
                    f"(iteration {checkpoint.iteration})",
                    iteration=checkpoint.iteration)
            return original_write(checkpoint)

        storage.write = failing_write  # type: ignore[method-assign]
