"""Checkpoint instrumentation of interpreted runs.

The paper inserts C/R calls at two points (Sec. II-B, "C/R insertion"):
reading checkpoints right before the main computation loop, and writing
checkpoints at the end of every loop iteration.  On the interpreter the same
effect is achieved with block-entry hooks on the main loop's *header* block:

* entering the header for the first time happens right before the first
  iteration — that is where a restarting run restores the protected
  variables (including the induction variable, so execution continues from
  the iteration after the last checkpoint);
* every subsequent header entry marks the completion of one iteration — that
  is where checkpoints are written.

Fail-stop failures are injected on entry to the loop *body* block, i.e. the
process dies mid-iteration, which is the harshest point for consistency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.analysis.induction import find_main_loop
from repro.analysis.loops import find_loops
from repro.checkpoint.fti import FTI, FTIConfig
from repro.core.config import MainLoopSpec
from repro.ir.module import Module
from repro.tracer.faults import FaultInjector
from repro.tracer.interpreter import ExecutionResult, HookContext, Interpreter


class InstrumentationError(Exception):
    """Raised when the main loop cannot be located in the module."""


@dataclass
class InstrumentedRun:
    """Outcome of one instrumented execution."""

    result: ExecutionResult
    fti: FTI
    checkpoints_written: int = 0
    restored_iteration: Optional[int] = None

    @property
    def output(self) -> List[str]:
        return self.result.output

    @property
    def failed(self) -> bool:
        return self.result.failed


class CheckpointInstrumenter:
    """Wire an FTI instance into interpreted executions of a module."""

    def __init__(self, module: Module, main_loop: MainLoopSpec,
                 protected_variables: Sequence[str], fti_config: FTIConfig,
                 seed: int = 314159) -> None:
        self.module = module
        self.main_loop = main_loop
        self.protected_variables = list(protected_variables)
        self.fti_config = fti_config
        self.seed = seed

        function = module.function(main_loop.function)
        loops = find_loops(function)
        loop = find_main_loop(function, main_loop.start_line, main_loop.end_line,
                              loop_info=loops)
        if loop is None:
            raise InstrumentationError(
                f"no loop found in {main_loop.function!r} within lines "
                f"{main_loop.mclr}")
        self.loop = loop
        self.header_block = loop.header.name
        terminator = loop.header.terminator
        targets = getattr(terminator, "targets", [])
        if not targets:
            raise InstrumentationError("main loop header has no branch targets")
        self.body_block = targets[0].name

    # ------------------------------------------------------------------ #
    # Variable plumbing
    # ------------------------------------------------------------------ #
    def _register_protected(self, fti: FTI, interpreter: Interpreter,
                            context: HookContext) -> None:
        """Bind each protected variable name to interpreter memory accessors."""
        for vid, name in enumerate(self.protected_variables):
            if name in fti.protected_names():
                continue
            allocation = interpreter.resolve_variable(name, frame=context.frame)
            if allocation is None:
                raise InstrumentationError(
                    f"protected variable {name!r} has no allocation at the "
                    f"main loop (is it declared in {self.main_loop.function!r}?)")
            memory = interpreter.memory

            def reader(alloc=allocation):
                return memory.read_block(alloc)

            def writer(values, alloc=allocation):
                memory.write_block(alloc, values)

            fti.protect(vid, name, allocation.size_bytes, reader, writer)

    # ------------------------------------------------------------------ #
    # Runs
    # ------------------------------------------------------------------ #
    def run(self, restart: bool = False, fail_at_iteration: Optional[int] = None,
            recover_names: Optional[Sequence[str]] = None,
            max_steps: int = 50_000_000) -> InstrumentedRun:
        """Execute the module with checkpoint instrumentation.

        ``restart=True`` restores the protected variables from the latest
        checkpoint when the main loop is first entered.  ``fail_at_iteration``
        injects a fail-stop failure on entry to that iteration's body.
        ``recover_names`` optionally restricts which variables are restored
        (the necessity/false-positive study).
        """
        fti = FTI(self.fti_config)
        interpreter = Interpreter(self.module, trace_sink=None, seed=self.seed,
                                  max_steps=max_steps)
        run_info = InstrumentedRun(result=None, fti=fti)  # type: ignore[arg-type]
        state = {"registered": False, "restored": False}

        def header_hook(context: HookContext) -> None:
            if not state["registered"]:
                self._register_protected(fti, interpreter, context)
                state["registered"] = True
            if restart and not state["restored"]:
                state["restored"] = True
                if fti.status():
                    recovered = fti.recover(names=recover_names)
                    run_info.restored_iteration = recovered.iteration
                return
            # Header entry N (N >= 1) marks completion of iteration N-1.
            fti.checkpoint(iteration=context.entry_count)
            run_info.checkpoints_written = fti.checkpoints_written

        interpreter.register_block_hook(self.main_loop.function,
                                        self.header_block, header_hook)
        if fail_at_iteration is not None:
            injector = FaultInjector(function=self.main_loop.function,
                                     block=self.body_block,
                                     fail_at_entry=fail_at_iteration)
            interpreter.register_block_hook(self.main_loop.function,
                                            self.body_block, injector)

        result = interpreter.run()
        run_info.result = result
        run_info.checkpoints_written = fti.checkpoints_written
        return run_info
