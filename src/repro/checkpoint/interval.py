"""Checkpoint-interval selection (Young / Daly models).

The paper's C/R model stores the critical variables "periodically ... with a
certain interval" (Sec. II-B).  Once AutoCheck has determined *what* to
checkpoint, the natural follow-up question is *how often*; this module
provides the two classical first-order answers:

* Young's approximation:  ``sqrt(2 * C * MTBF)``
* Daly's higher-order approximation, accurate also when the checkpoint cost
  ``C`` is not negligible compared to the MTBF.

Both take the checkpoint cost derived from the AutoCheck checkpoint size and
a storage bandwidth, so the storage study (Table IV) feeds directly into an
interval recommendation — the smaller AutoCheck checkpoints translate into
proportionally shorter optimal intervals and lower expected waste than
whole-process (BLCR-style) checkpoints.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def checkpoint_cost_seconds(checkpoint_bytes: int,
                            bandwidth_bytes_per_second: float,
                            latency_seconds: float = 0.0) -> float:
    """Time to write one checkpoint of ``checkpoint_bytes`` to storage."""
    if bandwidth_bytes_per_second <= 0:
        raise ValueError("bandwidth must be positive")
    if checkpoint_bytes < 0:
        raise ValueError("checkpoint size cannot be negative")
    return latency_seconds + checkpoint_bytes / bandwidth_bytes_per_second


def young_interval(checkpoint_cost: float, mtbf_seconds: float) -> float:
    """Young's first-order optimal checkpoint interval."""
    _validate(checkpoint_cost, mtbf_seconds)
    return math.sqrt(2.0 * checkpoint_cost * mtbf_seconds)


def daly_interval(checkpoint_cost: float, mtbf_seconds: float) -> float:
    """Daly's higher-order optimal checkpoint interval.

    Follows Daly (FGCS 2006): for ``C < 2 * MTBF`` the optimum is
    ``sqrt(2*C*M) * (1 + sqrt(C/(8M))/3 + C/(9M)) - C``; beyond that the best
    one can do is checkpoint back to back (interval = MTBF).
    """
    _validate(checkpoint_cost, mtbf_seconds)
    if checkpoint_cost >= 2.0 * mtbf_seconds:
        return mtbf_seconds
    base = math.sqrt(2.0 * checkpoint_cost * mtbf_seconds)
    correction = (1.0
                  + math.sqrt(checkpoint_cost / (8.0 * mtbf_seconds)) / 3.0
                  + checkpoint_cost / (9.0 * mtbf_seconds))
    return max(base * correction - checkpoint_cost, checkpoint_cost)


def expected_waste_fraction(interval: float, checkpoint_cost: float,
                            mtbf_seconds: float,
                            restart_cost: float = 0.0) -> float:
    """First-order fraction of machine time lost to C/R overhead + rework.

    waste = C/T (checkpoint overhead) + (T/2 + R)/MTBF (expected lost work and
    restart time per failure).  Used to compare checkpointing the AutoCheck
    variable set against whole-process checkpointing.
    """
    if interval <= 0:
        raise ValueError("interval must be positive")
    _validate(checkpoint_cost, mtbf_seconds)
    return (checkpoint_cost / interval
            + (interval / 2.0 + restart_cost) / mtbf_seconds)


def _validate(checkpoint_cost: float, mtbf_seconds: float) -> None:
    """Reject non-positive model inputs, naming the offending value.

    A zero checkpoint cost would recommend a zero interval (checkpoint
    continuously) and a zero/negative MTBF has no physical meaning, so both
    models require strictly positive inputs.
    """
    if not checkpoint_cost > 0:
        raise ValueError(
            f"checkpoint_cost must be positive, got {checkpoint_cost!r}")
    if not mtbf_seconds > 0:
        raise ValueError(
            f"mtbf_seconds must be positive, got {mtbf_seconds!r}")


def interval_in_iterations(interval_seconds: float,
                           seconds_per_iteration: float) -> int:
    """Convert a model-recommended interval to a whole number of iterations.

    The instrumented interpreter can only checkpoint on loop-header entries,
    so campaign trials quantize Young/Daly recommendations to iterations
    (always at least 1 — a recommendation shorter than one iteration means
    "checkpoint every iteration").
    """
    if not interval_seconds > 0:
        raise ValueError(
            f"interval_seconds must be positive, got {interval_seconds!r}")
    if not seconds_per_iteration > 0:
        raise ValueError(
            f"seconds_per_iteration must be positive, got {seconds_per_iteration!r}")
    return max(1, round(interval_seconds / seconds_per_iteration))


@dataclass(frozen=True)
class IntervalRecommendation:
    """A complete interval recommendation for one benchmark."""

    benchmark: str
    checkpoint_bytes: int
    checkpoint_cost_seconds: float
    mtbf_seconds: float
    young_seconds: float
    daly_seconds: float
    waste_fraction: float

    def summary(self) -> str:
        return (f"{self.benchmark}: checkpoint {self.checkpoint_bytes} B "
                f"({self.checkpoint_cost_seconds:.3g} s) -> "
                f"Young {self.young_seconds:.1f} s, Daly {self.daly_seconds:.1f} s, "
                f"expected waste {self.waste_fraction * 100:.2f}%")


def recommend_interval(benchmark: str, checkpoint_bytes: int,
                       mtbf_seconds: float,
                       bandwidth_bytes_per_second: float = 1e9,
                       latency_seconds: float = 0.5,
                       restart_cost_seconds: float = 30.0) -> IntervalRecommendation:
    """Build an interval recommendation from an AutoCheck checkpoint size."""
    cost = checkpoint_cost_seconds(checkpoint_bytes, bandwidth_bytes_per_second,
                                   latency_seconds)
    daly = daly_interval(cost, mtbf_seconds)
    return IntervalRecommendation(
        benchmark=benchmark,
        checkpoint_bytes=checkpoint_bytes,
        checkpoint_cost_seconds=cost,
        mtbf_seconds=mtbf_seconds,
        young_seconds=young_interval(cost, mtbf_seconds),
        daly_seconds=daly,
        waste_fraction=expected_waste_fraction(daly, cost, mtbf_seconds,
                                               restart_cost_seconds),
    )
