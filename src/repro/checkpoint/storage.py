"""Local checkpoint storage (the FTI "L1" level).

Checkpoints are JSON documents holding the protected variables' element
values plus metadata (iteration number, byte sizes).  JSON is plenty for the
mini benchmarks' data volumes and keeps checkpoints human-inspectable, which
the tests and the storage study exploit.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

Number = Union[int, float]


@dataclass
class CheckpointData:
    """One checkpoint: iteration number plus per-variable element values."""

    iteration: int
    variables: Dict[str, List[Number]] = field(default_factory=dict)
    sizes_bytes: Dict[str, int] = field(default_factory=dict)

    @property
    def total_bytes(self) -> int:
        return sum(self.sizes_bytes.values())

    def variable_names(self) -> List[str]:
        return list(self.variables.keys())


class CheckpointStorage:
    """Store/retrieve checkpoints under a directory (one file per checkpoint)."""

    FILENAME_PREFIX = "ckpt_"

    def __init__(self, directory: str, keep_history: bool = False) -> None:
        self.directory = directory
        self.keep_history = keep_history
        os.makedirs(directory, exist_ok=True)
        self.remove_stale_tmp_files()

    def remove_stale_tmp_files(self) -> int:
        """Delete tmp files a crashed writer left behind; return the count.

        A writer killed between opening ``*.tmp*`` and ``os.replace`` leaves a
        torn file that must never shadow (or survive next to) a complete
        checkpoint.  ``list_paths`` already ignores them, but a restarted
        process has to reclaim the space and make the directory listing clean.
        """
        removed = 0
        for name in os.listdir(self.directory):
            if name.startswith(self.FILENAME_PREFIX) and ".json.tmp" in name:
                try:
                    os.remove(os.path.join(self.directory, name))
                    removed += 1
                except FileNotFoundError:
                    pass
        return removed

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #
    def _path_for(self, iteration: int) -> str:
        return os.path.join(self.directory, f"{self.FILENAME_PREFIX}{iteration:08d}.json")

    def write(self, checkpoint: CheckpointData) -> str:
        path = self._path_for(checkpoint.iteration)
        payload = {
            "iteration": checkpoint.iteration,
            "variables": checkpoint.variables,
            "sizes_bytes": checkpoint.sizes_bytes,
        }
        tmp_path = f"{path}.tmp.{os.getpid()}"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(tmp_path, path)
        if not self.keep_history:
            for existing in self.list_paths():
                if existing != path:
                    os.remove(existing)
        return path

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def list_paths(self) -> List[str]:
        names = [name for name in os.listdir(self.directory)
                 if name.startswith(self.FILENAME_PREFIX) and name.endswith(".json")]
        return [os.path.join(self.directory, name) for name in sorted(names)]

    def load(self, path: str) -> CheckpointData:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        return CheckpointData(
            iteration=int(payload["iteration"]),
            variables={name: list(values)
                       for name, values in payload["variables"].items()},
            sizes_bytes={name: int(size)
                         for name, size in payload.get("sizes_bytes", {}).items()},
        )

    def latest(self) -> Optional[CheckpointData]:
        paths = self.list_paths()
        if not paths:
            return None
        return self.load(paths[-1])

    def clear(self) -> None:
        for path in self.list_paths():
            os.remove(path)

    @property
    def checkpoint_count(self) -> int:
        return len(self.list_paths())

    def storage_bytes_on_disk(self) -> int:
        return sum(os.path.getsize(path) for path in self.list_paths())
