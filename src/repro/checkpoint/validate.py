"""Restart validation and necessity (false-positive) studies.

Reproduces the two checks of paper Sec. VI-B:

* **Sufficiency** — protect the AutoCheck-detected variables, inject a
  fail-stop failure in the middle of the main computation loop, restart, and
  verify the program output matches a failure-free run ("all the 14
  benchmarks restart successfully").
* **Necessity / false positives** — disable the checkpoint of one detected
  variable at a time and verify the restarted output is *no longer* correct
  (the paper "didn't find unnecessary (false-positive) variables").
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.checkpoint.fti import FTIConfig
from repro.checkpoint.instrument import CheckpointInstrumenter, InstrumentedRun
from repro.core.config import MainLoopSpec
from repro.ir.module import Module
from repro.tracer.interpreter import Interpreter, InterpreterError


@dataclass
class ValidationResult:
    """Outcome of the sufficiency check for one benchmark.

    ``restarted_output`` is the *combined* observable output of the failed
    run (everything printed before the fail-stop failure) followed by the
    restarted run — which is what an operator actually sees on disk after a
    real failure+restart cycle, and what must equal the failure-free output.
    """

    benchmark: str
    protected_variables: List[str]
    fail_at_iteration: int
    failure_free_output: List[str]
    restarted_output: List[str]
    failed_run_output: List[str]
    restart_run_output: List[str]
    failed_run_completed: bool
    restored_iteration: Optional[int]
    checkpoint_bytes: int

    @property
    def restart_successful(self) -> bool:
        return self.restarted_output == self.failure_free_output

    def summary(self) -> str:
        status = "OK" if self.restart_successful else "MISMATCH"
        return (f"{self.benchmark}: restart {status} "
                f"(failure at iteration {self.fail_at_iteration}, "
                f"restored from iteration {self.restored_iteration}, "
                f"{len(self.protected_variables)} protected variables)")


@dataclass
class NecessityResult:
    """Outcome of the per-variable ablation (false-positive) study."""

    benchmark: str
    #: variable name -> True when dropping it corrupted the restarted output
    #: (i.e. the variable is genuinely necessary, not a false positive).
    necessary: Dict[str, bool] = field(default_factory=dict)

    @property
    def false_positives(self) -> List[str]:
        return [name for name, needed in self.necessary.items() if not needed]

    @property
    def all_necessary(self) -> bool:
        return not self.false_positives


class RestartValidator:
    """Drive the sufficiency and necessity studies for one application."""

    def __init__(self, module: Module, main_loop: MainLoopSpec,
                 benchmark: str = "benchmark", seed: int = 314159,
                 checkpoint_dir: Optional[str] = None) -> None:
        self.module = module
        self.main_loop = main_loop
        self.benchmark = benchmark
        self.seed = seed
        self._own_dir: Optional[tempfile.TemporaryDirectory] = None
        if checkpoint_dir is None:
            self._own_dir = tempfile.TemporaryDirectory(prefix="autocheck-ckpt-")
            checkpoint_dir = self._own_dir.name
        self.checkpoint_dir = checkpoint_dir

    # ------------------------------------------------------------------ #
    # Building blocks
    # ------------------------------------------------------------------ #
    def failure_free_output(self) -> List[str]:
        interpreter = Interpreter(self.module, trace_sink=None, seed=self.seed)
        result = interpreter.run()
        if result.failed:
            raise RuntimeError("failure-free run unexpectedly failed")
        return result.output

    def _instrumenter(self, variables: Sequence[str],
                      directory: str) -> CheckpointInstrumenter:
        config = FTIConfig(directory=directory)
        return CheckpointInstrumenter(self.module, self.main_loop, variables,
                                      config, seed=self.seed)

    def _run_failure_then_restart(self, variables: Sequence[str],
                                  fail_at_iteration: int,
                                  recover_names: Optional[Sequence[str]],
                                  directory: str,
                                  ) -> (InstrumentedRun, InstrumentedRun):
        instrumenter = self._instrumenter(variables, directory)
        failed_run = instrumenter.run(restart=False,
                                      fail_at_iteration=fail_at_iteration)
        restart_run = instrumenter.run(restart=True, fail_at_iteration=None,
                                       recover_names=recover_names)
        return failed_run, restart_run

    # ------------------------------------------------------------------ #
    # Studies
    # ------------------------------------------------------------------ #
    def validate(self, variables: Sequence[str],
                 fail_at_iteration: int = 3) -> ValidationResult:
        """Sufficiency study: does restarting with ``variables`` reproduce the
        failure-free output?"""
        reference = self.failure_free_output()
        directory = os.path.join(self.checkpoint_dir, "sufficiency")
        failed_run, restart_run = self._run_failure_then_restart(
            variables, fail_at_iteration, recover_names=None, directory=directory)
        combined = list(failed_run.output) + list(restart_run.output)
        return ValidationResult(
            benchmark=self.benchmark,
            protected_variables=list(variables),
            fail_at_iteration=fail_at_iteration,
            failure_free_output=reference,
            restarted_output=combined,
            failed_run_output=list(failed_run.output),
            restart_run_output=list(restart_run.output),
            failed_run_completed=not failed_run.failed,
            restored_iteration=restart_run.restored_iteration,
            checkpoint_bytes=restart_run.fti.checkpoint_bytes(),
        )

    def necessity_study(self, variables: Sequence[str],
                        check_variables: Optional[Sequence[str]] = None,
                        fail_at_iteration: int = 3) -> NecessityResult:
        """Ablation: drop one protected variable at a time from recovery.

        A variable is *necessary* when the restart without it produces output
        different from the failure-free run; a variable whose omission goes
        unnoticed would be a false positive.
        """
        reference = self.failure_free_output()
        result = NecessityResult(benchmark=self.benchmark)
        to_check = list(check_variables) if check_variables is not None else list(variables)
        for dropped in to_check:
            recover_names = [name for name in variables if name != dropped]
            directory = os.path.join(self.checkpoint_dir, f"ablate_{dropped}")
            try:
                failed_run, restart_run = self._run_failure_then_restart(
                    variables, fail_at_iteration, recover_names=recover_names,
                    directory=directory)
            except InterpreterError:
                # The restart without this variable crashed outright (e.g. a
                # division by a non-restored accumulator) — the strongest
                # possible evidence that the variable is necessary.
                result.necessary[dropped] = True
                continue
            combined = list(failed_run.output) + list(restart_run.output)
            result.necessary[dropped] = combined != reference
        return result

    def close(self) -> None:
        if self._own_dir is not None:
            self._own_dir.cleanup()
            self._own_dir = None

    def __enter__(self) -> "RestartValidator":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
