"""Command line interface (the ``autocheck`` console script).

Subcommands:

* ``autocheck analyze <trace file> --function main --start L1 --end L2`` —
  run the analysis on an existing dynamic trace file (the paper's primary
  usage: trace + main loop location in, critical variables out);
* ``autocheck analyze-batch <manifest.json>`` — fan a manifest of traces
  and bundled apps across a process pool, reusing the artifact store;
* ``autocheck app <name>`` — trace and analyse one of the bundled benchmarks;
* ``autocheck trace <mini-C file> -o out.trace`` — compile and trace a mini-C
  program;
* ``autocheck static-report <app-or-source>`` — print the static CFG /
  loop / liveness picture of a bundled app or a mini-C file;
* ``autocheck serve`` — run the analysis-as-a-service HTTP/JSON daemon in
  front of the artifact store (bounded worker pool, request coalescing,
  backpressure; see ``docs/serve.md``);
* ``autocheck gc`` — inspect and evict entries of the artifact store;
* ``autocheck campaign`` — run a fault-injection checkpoint campaign over
  the bundled fleet (apps x checkpoint content x interval policy x seeded
  kill points) and verdict restart equivalence per app;
* ``autocheck table2|table3|table4|validate|figure5|run-all`` — regenerate
  the paper's evaluation artefacts;
* ``autocheck list`` — list the bundled benchmarks.

The parser is built by :func:`build_parser` (separate from :func:`main`) so
the docs flag-drift check in ``tests/test_docs.py`` can compare the live
option surface against ``docs/cli.md``.

Exit codes follow one convention across the experiment verbs and
``campaign``: 0 = success, 1 = a verdict failed (restart mismatch, Table II
mismatch, batch entry error), 2 = bad invocation (unknown app or policy).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.apps.registry import all_apps, get_app
from repro.codegen.lowering import compile_source
from repro.core.config import AutoCheckConfig, MainLoopSpec
from repro.core.pipeline import AutoCheck
from repro.experiments import (
    format_table2,
    format_table3,
    format_table4,
    format_validation,
    run_all,
    run_figure5,
    run_table2,
    run_table3,
    run_table4,
    run_validation,
)
from repro.experiments.common import analyze_app
from repro.static.check import cross_check
from repro.static.textreport import render_static_report
from repro.tracer.driver import trace_to_file


def _load_module(path: str):
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    return compile_source(source, module_name=path), source


def _print_static_check(module, spec, report,
                        include_global_accesses_in_calls: bool) -> int:
    diagnostics = cross_check(
        module, spec, report,
        include_global_accesses_in_calls=include_global_accesses_in_calls)
    if diagnostics:
        print(f"Static cross-check: {len(diagnostics)} violation(s)")
        for diagnostic in diagnostics:
            print(f"  {diagnostic}")
        return 1
    print("Static cross-check: ok (dynamic MLI within the static candidate "
          "set; every dynamic DDG edge statically feasible)")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    if (args.static_check or args.static_prefilter) and not args.source:
        print("error: --static-check/--static-prefilter need the IR module; "
              "pass the mini-C program via --source", file=sys.stderr)
        return 2
    module = None
    if args.source:
        module, _ = _load_module(args.source)
    spec = MainLoopSpec(function=args.function, start_line=args.start,
                        end_line=args.end)
    config = AutoCheckConfig(main_loop=spec,
                             parallel_preprocessing=args.parallel,
                             preprocessing_workers=args.workers,
                             streaming_preprocessing=args.streaming,
                             induction_variable=args.induction,
                             analysis_engine=args.engine,
                             workers=args.workers,
                             use_cache=args.cache,
                             cache_dir=args.cache_dir,
                             static_prefilter=args.static_prefilter,
                             decode=args.decode)
    report = AutoCheck(config, trace_path=args.trace, module=module).run()
    print(report.summary())
    if args.static_check:
        return _print_static_check(
            module, spec, report, config.include_global_accesses_in_calls)
    return 0


def _cmd_analyze_batch(args: argparse.Namespace) -> int:
    from repro.store.batch import run_batch

    result = run_batch(args.manifest,
                       workers=args.workers,
                       use_cache=args.cache,
                       cache_dir=args.cache_dir,
                       trace_dir=args.trace_dir)
    print(result.summary())
    return 0 if result.all_ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import AnalysisServer

    try:
        server = AnalysisServer(host=args.host, port=args.port,
                                workers=args.workers,
                                queue_limit=args.queue_limit,
                                use_cache=args.cache,
                                cache_dir=args.cache_dir,
                                trace_dir=args.trace_dir)
    except OSError as exc:
        print(f"error: cannot bind {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 2
    print(f"autocheck serve: listening on http://{server.host}:{server.port} "
          f"({args.workers} workers, queue limit {args.queue_limit}, "
          f"store {server.store.root})")
    print("endpoints: POST /analyze · GET /jobs/<id> · GET /report/<key> · "
          "GET /stats · GET /healthz  (Ctrl-C drains and exits)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down: draining in-flight jobs ...")
    server.close(graceful=True)
    return 0


def _cmd_gc(args: argparse.Namespace) -> int:
    from repro.store.cache import ArtifactStore

    store = ArtifactStore(args.cache_dir)
    before = store.stats()
    print(f"store {store.root}: {before.entries} entries, "
          f"{before.total_bytes} bytes")
    if not (args.clear or args.max_entries is not None
            or args.max_age_days is not None or args.max_bytes is not None):
        return 0
    result = store.gc(
        max_entries=args.max_entries,
        max_age_seconds=(args.max_age_days * 86400.0
                         if args.max_age_days is not None else None),
        max_bytes=args.max_bytes,
        clear=args.clear,
        dry_run=args.dry_run)
    verb = "would evict" if args.dry_run else "evicted"
    print(f"{verb} {result.evicted} entries ({result.evicted_bytes} bytes), "
          f"kept {result.kept} ({result.kept_bytes} bytes)")
    return 0


def _unknown_app(exc: KeyError) -> int:
    name = exc.args[0] if exc.args else exc
    print(f"error: unknown app {name!r} (see 'autocheck list')",
          file=sys.stderr)
    return 2


def _cmd_app(args: argparse.Namespace) -> int:
    try:
        app = get_app(args.name)
    except KeyError as exc:
        return _unknown_app(exc)
    analysis = analyze_app(app)
    print(f"# {app.title} — {app.description}")
    print(analysis.report.summary())
    status = "matches" if analysis.matches_expected else "DIFFERS from"
    print(f"Result {status} the paper's Table II row "
          f"({analysis.mismatch_description()}).")
    exit_code = 0 if analysis.matches_expected else 1
    if args.static_check:
        flag = bool(app.autocheck_options.get(
            "include_global_accesses_in_calls", False))
        check_code = _print_static_check(
            analysis.module, analysis.report.main_loop, analysis.report, flag)
        exit_code = exit_code or check_code
    return exit_code


def _cmd_static_report(args: argparse.Namespace) -> int:
    try:
        app = get_app(args.target)
    except KeyError:
        app = None
    if app is not None:
        module = app.module()
        spec = app.main_loop()
    else:
        from repro.apps.base import find_mclr

        try:
            module, source = _load_module(args.target)
        except OSError:
            print(f"error: {args.target!r} is neither a bundled app nor a "
                  f"readable mini-C source file", file=sys.stderr)
            return 2
        try:
            start, end = find_mclr(source)
            spec = MainLoopSpec(function=args.function, start_line=start,
                                end_line=end)
        except ValueError:
            # No @mclr markers: report structure only, no spec-derived parts.
            spec = None
    print(render_static_report(module, spec=spec))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    with open(args.source, encoding="utf-8") as handle:
        source = handle.read()
    module = compile_source(source, module_name=args.source)
    size, result = trace_to_file(module, args.output, fmt=args.format)
    print(f"wrote {size} bytes ({args.format}) to {args.output}; "
          f"program output:")
    for line in result.output:
        print(f"  {line}")
    return 0


def _cmd_list(_: argparse.Namespace) -> int:
    for app in all_apps(include_example=True):
        expected = ", ".join(f"{k} ({v})" for k, v in app.expected_critical.items())
        print(f"{app.name:10s} {app.title:15s} expected: {expected}")
    return 0


def _cmd_experiment(args: argparse.Namespace, runner, formatter,
                    verdict=None) -> int:
    """Shared driver for the table/validate verbs (one exit-code convention:
    2 = unknown app, 1 = failed verdict, 0 = success)."""
    try:
        result = runner(apps=args.apps)
    except KeyError as exc:
        return _unknown_app(exc)
    print(formatter(result))
    if verdict is not None and not verdict(result):
        return 1
    return 0


def _validation_verdict(rows) -> bool:
    return all(row.restart_successful and not row.false_positives
               for row in rows)


def _cmd_run_all(args: argparse.Namespace) -> int:
    try:
        print(run_all(apps=args.apps, output_path=args.output,
                      include_validation=not args.skip_validation))
    except KeyError as exc:
        return _unknown_app(exc)
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.campaign import (
        CONTENT_POLICIES,
        INTERVAL_POLICIES,
        CampaignConfig,
        PolicyError,
        parse_policies,
        resolve_app_names,
        run_campaign,
    )

    try:
        config = CampaignConfig(
            apps=resolve_app_names(args.apps),
            content_policies=parse_policies(args.policies, CONTENT_POLICIES,
                                            "content"),
            interval_policies=parse_policies(args.intervals,
                                             INTERVAL_POLICIES, "interval"),
            trials=args.trials,
            seed=args.seed,
            every_k=args.every_k,
            workers=args.workers,
            run_necessity=args.necessity,
            use_cache=args.cache,
            cache_dir=args.cache_dir,
            trace_dir=args.trace_dir,
        )
        report = run_campaign(config)
    except PolicyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report.to_json())
    if args.json:
        print(report.to_json(), end="")
    else:
        print(report.summary())
    return 0 if report.all_pass else 1


def _add_cache_flags(parser: argparse.ArgumentParser, default: bool) -> None:
    """The shared ``--cache/--no-cache`` + ``--cache-dir`` pair."""
    parser.add_argument("--cache", action=argparse.BooleanOptionalAction,
                        default=default,
                        help="consult/publish the content-addressed artifact "
                             "store: a hit (same trace digest, same semantic "
                             "config, same report schema) skips the record "
                             "walk entirely"
                             + (" (default: on)" if default
                                else " (default: off)"))
    parser.add_argument("--cache-dir", default=None,
                        help="artifact store root (default: "
                             "$AUTOCHECK_CACHE_DIR or ~/.cache/autocheck)")


def build_parser() -> argparse.ArgumentParser:
    """Build the full CLI parser (also consumed by the docs drift check)."""
    parser = argparse.ArgumentParser(
        prog="autocheck",
        description="AutoCheck: automatically identify variables for "
                    "checkpointing by data dependency analysis (SC'24 "
                    "reproduction)")
    sub = parser.add_subparsers(dest="command")

    p_analyze = sub.add_parser("analyze", help="analyse an existing trace file")
    p_analyze.add_argument("trace")
    p_analyze.add_argument("--function", default="main")
    p_analyze.add_argument("--start", type=int, required=True,
                           help="main loop start line")
    p_analyze.add_argument("--end", type=int, required=True,
                           help="main loop end line")
    p_analyze.add_argument("--induction", default=None)
    p_analyze.add_argument("--parallel", action="store_true")
    p_analyze.add_argument("--streaming", action="store_true",
                           help="stream the trace file instead of "
                                "materializing it (bounded memory for very "
                                "large traces; with the default fused "
                                "engine the file is streamed exactly once)")
    p_analyze.add_argument("--engine",
                           choices=("fused", "parallel", "multipass"),
                           default="fused",
                           help="'fused' (default): all analysis stages run "
                                "as passes over one single-pass record "
                                "walk; 'parallel': shard that walk across "
                                "--workers worker processes over partitions "
                                "of a binary trace (identical report, "
                                "scales with cores); 'multipass': the "
                                "legacy staged pipeline (each stage "
                                "re-iterates its region)")
    p_analyze.add_argument("--workers", type=int, default=4,
                           help="worker count for --parallel preprocessing "
                                "and for --engine parallel")
    p_analyze.add_argument("--decode",
                           choices=("columnar", "records"),
                           default="columnar",
                           help="how the fused/parallel engines consume a "
                                "binary trace: 'columnar' (default) decodes "
                                "whole record blocks into column arrays and "
                                "sweeps them in bulk, materializing records "
                                "only for the rare scope-changing opcodes; "
                                "'records' is the classic one-object-per-"
                                "record walk (identical report, lower "
                                "throughput); non-binary inputs fall back "
                                "to 'records' automatically")
    p_analyze.add_argument("--source", default=None,
                           help="the traced mini-C program; supplies the IR "
                                "module the static analyses need (required "
                                "by --static-check and --static-prefilter)")
    p_analyze.add_argument("--static-check", action="store_true",
                           help="after the analysis, cross-check the dynamic "
                                "result against the static IR dataflow "
                                "over-approximation (dynamic MLI must be "
                                "within the static candidate set, every "
                                "dynamic DDG edge statically feasible); "
                                "violations are printed as named "
                                "diagnostics and exit non-zero")
    p_analyze.add_argument("--static-prefilter", action="store_true",
                           help="let the fused engine skip pass dispatch for "
                                "records the static analysis proves "
                                "irrelevant outside the main loop (the "
                                "report is identical; the summary shows the "
                                "skip count)")
    _add_cache_flags(p_analyze, default=False)
    p_analyze.set_defaults(func=_cmd_analyze)

    p_batch = sub.add_parser(
        "analyze-batch",
        help="analyse a manifest of traces/apps over a process pool, "
             "reusing the artifact store")
    p_batch.add_argument("manifest",
                         help="JSON manifest: a list of entries, or an "
                              "object with 'entries' (and optionally "
                              "'trace_dir')")
    p_batch.add_argument("--workers", type=int, default=1,
                         help="process-pool width; 1 runs inline")
    p_batch.add_argument("--trace-dir", default=None,
                         help="where app entries keep their generated "
                              "binary traces (reused across runs; default: "
                              "<store root>/traces)")
    _add_cache_flags(p_batch, default=True)
    p_batch.set_defaults(func=_cmd_analyze_batch)

    p_serve = sub.add_parser(
        "serve",
        help="run the analysis-as-a-service HTTP/JSON daemon: warm "
             "requests answer from the artifact store, cold ones fan "
             "into a bounded worker pool with request coalescing and "
             "429 backpressure")
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default: 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=8573,
                         help="bind port; 0 picks an ephemeral port "
                              "(default: 8573)")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="analysis worker threads for cold requests "
                              "(default: 2)")
    p_serve.add_argument("--queue-limit", type=int, default=16,
                         help="max queued cold analyses before the daemon "
                              "sheds load with 429 (default: 16)")
    p_serve.add_argument("--trace-dir", default=None,
                         help="where app traces and uploaded trace bodies "
                              "are kept (default: <store root>/traces)")
    _add_cache_flags(p_serve, default=True)
    p_serve.set_defaults(func=_cmd_serve)

    p_gc = sub.add_parser("gc",
                          help="inspect the artifact store and evict entries")
    p_gc.add_argument("--cache-dir", default=None,
                      help="artifact store root (default: "
                           "$AUTOCHECK_CACHE_DIR or ~/.cache/autocheck)")
    p_gc.add_argument("--max-entries", type=int, default=None,
                      help="keep at most N entries (oldest evicted first)")
    p_gc.add_argument("--max-age-days", type=float, default=None,
                      help="evict entries older than D days")
    p_gc.add_argument("--max-bytes", type=int, default=None,
                      help="keep the newest entries totalling at most B bytes")
    p_gc.add_argument("--clear", action="store_true",
                      help="evict every entry")
    p_gc.add_argument("--dry-run", action="store_true",
                      help="report what would be evicted without deleting")
    p_gc.set_defaults(func=_cmd_gc)

    p_app = sub.add_parser("app", help="trace + analyse a bundled benchmark")
    p_app.add_argument("name")
    p_app.add_argument("--static-check", action="store_true",
                       help="also run the static-vs-dynamic cross-check "
                            "oracle on the result (exit non-zero on any "
                            "violation)")
    p_app.set_defaults(func=_cmd_app)

    p_static = sub.add_parser(
        "static-report",
        help="print the static IR picture (CFG, dominators, loops, "
             "liveness, MLI candidates) of a bundled app or mini-C file")
    p_static.add_argument("target",
                          help="bundled benchmark name or path to a mini-C "
                               "source file")
    p_static.add_argument("--function", default="main",
                          help="main-loop function for source files whose "
                               "@mclr markers supply the line range "
                               "(default: main)")
    p_static.set_defaults(func=_cmd_static_report)

    p_trace = sub.add_parser("trace", help="compile and trace a mini-C source file")
    p_trace.add_argument("source")
    p_trace.add_argument("-o", "--output", required=True)
    p_trace.add_argument("-f", "--format", choices=("text", "binary"),
                         default="text",
                         help="trace encoding (binary is smaller and much "
                              "faster to parse)")
    p_trace.set_defaults(func=_cmd_trace)

    p_list = sub.add_parser("list", help="list bundled benchmarks")
    p_list.set_defaults(func=_cmd_list)

    p_campaign = sub.add_parser(
        "campaign",
        help="run a fault-injection checkpoint campaign: apps x checkpoint "
             "content x interval policy x seeded kill points, verdicting "
             "restart equivalence against uninterrupted runs")
    p_campaign.add_argument("--apps", default="all",
                            help="comma-separated app names, or 'all' for "
                                 "the full 16-app bundled fleet "
                                 "(default: all)")
    p_campaign.add_argument("--policies", default="critical,full,blcr",
                            help="checkpoint-content policies to sweep: "
                                 "'critical' (the AutoCheck set), 'full' "
                                 "(every variable live at the main loop), "
                                 "'blcr' (whole-process baseline) "
                                 "(default: critical,full,blcr)")
    p_campaign.add_argument("--intervals", default="every-k",
                            help="interval policies to sweep: 'every-k' "
                                 "(fixed cadence, see --every-k), 'young', "
                                 "'daly' (model-recommended cadences under "
                                 "the synthetic time model) "
                                 "(default: every-k)")
    p_campaign.add_argument("--trials", type=int, default=3,
                            help="kill points per matrix cell; the first "
                                 "pins the kill-before-first-checkpoint "
                                 "edge, the second the kill-during-"
                                 "checkpoint-write edge (default: 3)")
    p_campaign.add_argument("--seed", type=int, default=7,
                            help="campaign seed; the full trial plan and "
                                 "all verdicts are a pure function of it "
                                 "(default: 7)")
    p_campaign.add_argument("--every-k", type=int, default=2,
                            help="cadence (in iterations) of the every-k "
                                 "interval policy (default: 2)")
    p_campaign.add_argument("--workers", type=int, default=1,
                            help="process-pool width for per-app prep and "
                                 "trial batches; 1 runs inline")
    p_campaign.add_argument("--necessity", action="store_true",
                            help="also run the drop-one ablation per app "
                                 "and verdict false positives")
    p_campaign.add_argument("--out", default=None,
                            help="write the canonical JSON report here "
                                 "(byte-identical across same-seed re-runs)")
    p_campaign.add_argument("--json", action="store_true",
                            help="print the JSON report to stdout instead "
                                 "of the summary table")
    p_campaign.add_argument("--trace-dir", default=None,
                            help="where per-app binary traces are kept "
                                 "(reused across runs; default: "
                                 "<store root>/traces)")
    _add_cache_flags(p_campaign, default=True)
    p_campaign.set_defaults(func=_cmd_campaign)

    for name, runner, formatter, verdict in (
            ("table2", run_table2, format_table2, None),
            ("table3", run_table3, format_table3, None),
            ("table4", run_table4, format_table4, None),
            ("validate", run_validation, format_validation,
             _validation_verdict)):
        p_cmd = sub.add_parser(name, help=f"regenerate {name}")
        p_cmd.add_argument("--apps", nargs="*", default=None)
        p_cmd.set_defaults(func=lambda a, r=runner, f=formatter, v=verdict:
                           _cmd_experiment(a, r, f, v))

    p_fig = sub.add_parser("figure5", help="regenerate the Fig. 4/5 worked example")
    p_fig.set_defaults(func=lambda a: (print(run_figure5().summary()) or 0))

    p_all = sub.add_parser("run-all", help="run every experiment")
    p_all.add_argument("--apps", nargs="*", default=None)
    p_all.add_argument("--output", default=None)
    p_all.add_argument("--skip-validation", action="store_true")
    p_all.set_defaults(func=_cmd_run_all)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if not getattr(args, "command", None):
        parser.print_help()
        return 2
    return int(args.func(args) or 0)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
