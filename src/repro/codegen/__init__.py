"""``repro.codegen`` — lowering of the mini-C AST to the LLVM-like IR.

Lowering follows the ``clang -O0`` idiom the paper's analysis assumes:

* every source variable gets its own ``Alloca`` (locals/params) or module
  global; every read is a fresh ``Load`` into a new temporary register and
  every write a ``Store`` — this is what makes the on-the-fly reg-var map
  well defined;
* array element accesses produce a ``BitCast`` of the array storage to an
  element pointer, explicit ``Mul``/``Add`` flat-index arithmetic, and a
  ``GetElementPtr`` — the complement instructions listed in paper Table I;
* function calls pass scalars by value and arrays by decayed element
  pointers, so the argument/parameter correlation of paper Fig. 6(b) occurs
  naturally in the traces.
"""

from repro.codegen.lowering import CodeGenerator, compile_program, compile_source
from repro.codegen.layout import flat_index_dims, ir_type_of

__all__ = [
    "CodeGenerator",
    "compile_program",
    "compile_source",
    "flat_index_dims",
    "ir_type_of",
]
