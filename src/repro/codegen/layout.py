"""Type mapping and array layout helpers shared by codegen and checkpointing."""

from __future__ import annotations

from typing import Tuple

from repro.minicc import ast_nodes as ast
from repro.ir.types import ArrayType, F64, I32, IRType, PointerType


def ir_type_of(ctype: ast.CType) -> IRType:
    """Map a mini-C type to its IR representation."""
    if isinstance(ctype, ast.IntType):
        return I32
    if isinstance(ctype, ast.DoubleType):
        return F64
    if isinstance(ctype, ast.VoidType):
        from repro.ir.types import VOID

        return VOID
    if isinstance(ctype, ast.ArrayType):
        return ArrayType(element=ir_type_of(ctype.element), dims=tuple(ctype.dims))
    if isinstance(ctype, ast.PointerType):
        return PointerType(ir_type_of(ctype.element))
    raise TypeError(f"unsupported mini-C type {ctype!r}")


def element_ctype(ctype: ast.CType) -> ast.CType:
    """Return the scalar element type of an array/pointer mini-C type."""
    if isinstance(ctype, (ast.ArrayType, ast.PointerType)):
        return ctype.element
    return ctype


def flat_index_dims(ctype: ast.CType, num_indices: int) -> Tuple[int, ...]:
    """Return the dimension sizes used to flatten a multi-dimensional access.

    For an ``ArrayType`` with dims ``(d0, d1, ..., dk)`` indexed with all k+1
    subscripts the flat index is ``((i0*d1 + i1)*d2 + i2)...`` so the sizes
    needed are ``dims[1:]``.  For pointer parameters the declared trailing
    dimensions play the same role; a single-subscript access needs no sizes.
    """
    if num_indices <= 1:
        return ()
    if isinstance(ctype, (ast.ArrayType, ast.PointerType)):
        dims = ctype.dims
    else:
        raise TypeError("flat_index_dims expects an array or pointer type")
    if len(dims) < num_indices:
        raise ValueError(
            f"access with {num_indices} subscripts on type with dims {dims}")
    # When the leading dimension is present it is not needed for flattening.
    return tuple(dims[len(dims) - num_indices + 1:])


def byte_size_of(ctype: ast.CType) -> int:
    """Total byte size of a mini-C variable (used by the storage study)."""
    ir_ty = ir_type_of(ctype)
    return ir_ty.size_in_bytes()
