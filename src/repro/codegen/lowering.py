"""AST → IR lowering (the mini-C "clang -O0" code generator)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.codegen.layout import element_ctype, flat_index_dims, ir_type_of
from repro.ir.builder import IRBuilder
from repro.ir.instructions import binary_opcode
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.opcodes import Opcode
from repro.ir.types import F64, I32, PointerType
from repro.ir.values import Argument, Constant, GlobalVariable, Value
from repro.ir.verifier import verify_module
from repro.minicc import ast_nodes as ast
from repro.minicc.errors import SemanticError
from repro.minicc.parser import parse_program
from repro.minicc.sema import BUILTIN_FUNCTIONS, SemanticInfo, analyze


@dataclass
class _VarSlot:
    """Storage backing a resolved mini-C variable."""

    name: str
    ctype: ast.CType
    #: Pointer-valued IR entity addressing the storage: an ``Alloca`` result
    #: register for locals/params or the :class:`GlobalVariable` itself.
    pointer: Value
    is_global: bool = False
    #: For pointer parameters the alloca stores a *pointer* which must itself
    #: be loaded before use.
    is_pointer_param: bool = False


class _Scope:
    def __init__(self, parent: Optional["_Scope"] = None) -> None:
        self.parent = parent
        self.slots: Dict[str, _VarSlot] = {}

    def declare(self, slot: _VarSlot) -> None:
        self.slots[slot.name] = slot

    def lookup(self, name: str) -> Optional[_VarSlot]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.slots:
                return scope.slots[name]
            scope = scope.parent
        return None


class _LoopContext:
    """Targets for ``break`` / ``continue`` inside the innermost loop."""

    def __init__(self, continue_block: BasicBlock, break_block: BasicBlock) -> None:
        self.continue_block = continue_block
        self.break_block = break_block


class CodeGenerator:
    """Lower an analyzed mini-C program into an IR :class:`Module`."""

    def __init__(self, program: ast.Program, info: SemanticInfo,
                 module_name: str = "module") -> None:
        self.program = program
        self.info = info
        self.module = Module(name=module_name, source=program.source)
        self._globals: Dict[str, GlobalVariable] = {}
        self._builder: Optional[IRBuilder] = None
        self._scope: Optional[_Scope] = None
        self._loops: List[_LoopContext] = []
        self._current_func: Optional[ast.FuncDef] = None

    # ------------------------------------------------------------------ #
    # Entry point
    # ------------------------------------------------------------------ #
    def generate(self) -> Module:
        for decl in self.program.globals:
            self._emit_global(decl)
        for func in self.program.functions:
            self._emit_function(func)
        verify_module(self.module)
        return self.module

    # ------------------------------------------------------------------ #
    # Globals
    # ------------------------------------------------------------------ #
    def _emit_global(self, decl: ast.VarDecl) -> None:
        value_type = ir_type_of(decl.ctype)
        initializer: Optional[Union[int, float]] = None
        if decl.init is not None:
            initializer = _const_value(decl.init)
            if isinstance(decl.ctype, ast.IntType):
                initializer = int(initializer)
            else:
                initializer = float(initializer)
        gvar = GlobalVariable(type=PointerType(value_type), name=decl.name,
                              value_type=value_type, initializer=initializer)
        self.module.add_global(gvar)
        self._globals[decl.name] = gvar

    # ------------------------------------------------------------------ #
    # Functions
    # ------------------------------------------------------------------ #
    def _emit_function(self, func: ast.FuncDef) -> None:
        ir_func = Function(name=func.name,
                           return_type=ir_type_of(func.return_type),
                           line=func.line)
        for index, param in enumerate(func.params):
            ir_func.args.append(Argument(type=ir_type_of(param.ctype),
                                         name=param.name, index=index))
        self.module.add_function(ir_func)

        builder = IRBuilder(self.module, ir_func)
        entry = builder.new_block("entry")
        builder.set_block(entry)
        self._builder = builder
        self._current_func = func

        # Function scope: globals are visible, then parameters.
        global_scope = _Scope()
        for name, gvar in self._globals.items():
            ctype = self.info.global_types[name]
            global_scope.declare(_VarSlot(name=name, ctype=ctype, pointer=gvar,
                                          is_global=True))
        scope = _Scope(global_scope)

        for param, arg in zip(func.params, ir_func.args):
            param_ir_type = ir_type_of(param.ctype)
            ptr = builder.alloca(param_ir_type, param.name,
                                 line=param.line, column=param.column)
            builder.store(arg, ptr, line=param.line, column=param.column)
            scope.declare(_VarSlot(
                name=param.name, ctype=param.ctype, pointer=ptr,
                is_pointer_param=isinstance(param.ctype, ast.PointerType)))

        self._scope = scope
        self._emit_block(func.body, scope)

        # Terminate any block left open (implicit return).
        for block in ir_func.blocks:
            if not block.is_terminated:
                builder.set_block(block)
                if isinstance(func.return_type, ast.VoidType):
                    builder.ret(None, line=func.body.line)
                elif isinstance(func.return_type, ast.DoubleType):
                    builder.ret(builder.const_float(0.0), line=func.body.line)
                else:
                    builder.ret(builder.const_int(0), line=func.body.line)

        self._builder = None
        self._scope = None
        self._current_func = None

    # ------------------------------------------------------------------ #
    # Statements
    # ------------------------------------------------------------------ #
    def _emit_block(self, block: ast.Block, parent_scope: _Scope) -> None:
        scope = _Scope(parent_scope)
        for stmt in block.statements:
            self._emit_statement(stmt, scope)

    def _emit_statement(self, stmt: ast.Stmt, scope: _Scope) -> None:
        builder = self._builder
        assert builder is not None
        if isinstance(stmt, ast.DeclStmt):
            for decl in stmt.decls:
                self._emit_local_decl(decl, scope)
        elif isinstance(stmt, ast.ExprStmt):
            self._emit_expr(stmt.expr, scope)
        elif isinstance(stmt, ast.Block):
            self._emit_block(stmt, scope)
        elif isinstance(stmt, ast.Print):
            self._emit_print(stmt, scope)
        elif isinstance(stmt, ast.Return):
            self._emit_return(stmt, scope)
        elif isinstance(stmt, ast.If):
            self._emit_if(stmt, scope)
        elif isinstance(stmt, ast.While):
            self._emit_while(stmt, scope)
        elif isinstance(stmt, ast.For):
            self._emit_for(stmt, scope)
        elif isinstance(stmt, ast.Break):
            if not self._loops:
                raise SemanticError("break outside of loop", stmt.line, stmt.column)
            builder.br(self._loops[-1].break_block, line=stmt.line)
        elif isinstance(stmt, ast.Continue):
            if not self._loops:
                raise SemanticError("continue outside of loop", stmt.line, stmt.column)
            builder.br(self._loops[-1].continue_block, line=stmt.line)
        else:  # pragma: no cover - defensive
            raise SemanticError(f"cannot lower statement {type(stmt).__name__}",
                                stmt.line, stmt.column)

    def _emit_local_decl(self, decl: ast.VarDecl, scope: _Scope) -> None:
        builder = self._builder
        assert builder is not None
        ir_ty = ir_type_of(decl.ctype)
        ptr = builder.alloca(ir_ty, decl.name, line=decl.line, column=decl.column)
        slot = _VarSlot(name=decl.name, ctype=decl.ctype, pointer=ptr)
        scope.declare(slot)
        if decl.init is not None:
            value, value_ctype = self._emit_expr(decl.init, scope)
            value = self._convert(value, value_ctype, decl.ctype,
                                  decl.line, decl.column)
            builder.store(value, ptr, line=decl.line, column=decl.column)

    def _emit_print(self, stmt: ast.Print, scope: _Scope) -> None:
        builder = self._builder
        assert builder is not None
        operands: List[Value] = []
        labels: List[Optional[str]] = []
        pending: Optional[str] = None
        for arg in stmt.args:
            if isinstance(arg, ast.StringLiteral):
                pending = arg.value if pending is None else pending + arg.value
                continue
            value, _ = self._emit_expr(arg, scope)
            operands.append(value)
            labels.append(pending)
            pending = None
        if pending is not None:
            labels.append(pending)
        builder.print_(operands, labels, line=stmt.line, column=stmt.column)

    def _emit_return(self, stmt: ast.Return, scope: _Scope) -> None:
        builder = self._builder
        assert builder is not None
        assert self._current_func is not None
        if stmt.value is None:
            builder.ret(None, line=stmt.line, column=stmt.column)
            return
        value, value_ctype = self._emit_expr(stmt.value, scope)
        value = self._convert(value, value_ctype, self._current_func.return_type,
                              stmt.line, stmt.column)
        builder.ret(value, line=stmt.line, column=stmt.column)

    def _emit_if(self, stmt: ast.If, scope: _Scope) -> None:
        builder = self._builder
        assert builder is not None
        cond = self._emit_condition(stmt.cond, scope)
        then_block = builder.new_block()
        end_block = builder.new_block()
        else_block = builder.new_block() if stmt.else_body is not None else end_block
        builder.cond_br(cond, then_block, else_block,
                        line=stmt.line, column=stmt.column)

        builder.set_block(then_block)
        self._emit_statement(stmt.then_body, _Scope(scope))
        if not builder.current_block_terminated:
            builder.br(end_block, line=stmt.line)

        if stmt.else_body is not None:
            builder.set_block(else_block)
            self._emit_statement(stmt.else_body, _Scope(scope))
            if not builder.current_block_terminated:
                builder.br(end_block, line=stmt.line)

        builder.set_block(end_block)

    def _emit_while(self, stmt: ast.While, scope: _Scope) -> None:
        builder = self._builder
        assert builder is not None
        cond_block = builder.new_block()
        body_block = builder.new_block()
        end_block = builder.new_block()

        builder.br(cond_block, line=stmt.line, column=stmt.column)
        builder.set_block(cond_block)
        cond = self._emit_condition(stmt.cond, scope)
        builder.cond_br(cond, body_block, end_block,
                        line=stmt.line, column=stmt.column)

        self._loops.append(_LoopContext(cond_block, end_block))
        builder.set_block(body_block)
        self._emit_statement(stmt.body, _Scope(scope))
        if not builder.current_block_terminated:
            builder.br(cond_block, line=stmt.line)
        self._loops.pop()

        builder.set_block(end_block)

    def _emit_for(self, stmt: ast.For, scope: _Scope) -> None:
        builder = self._builder
        assert builder is not None
        loop_scope = _Scope(scope)
        if stmt.init is not None:
            self._emit_statement(stmt.init, loop_scope)

        cond_block = builder.new_block()
        body_block = builder.new_block()
        step_block = builder.new_block()
        end_block = builder.new_block()

        builder.br(cond_block, line=stmt.line, column=stmt.column)
        builder.set_block(cond_block)
        if stmt.cond is not None:
            cond = self._emit_condition(stmt.cond, loop_scope)
        else:
            cond = builder.const_int(1)
        builder.cond_br(cond, body_block, end_block,
                        line=stmt.line, column=stmt.column)

        self._loops.append(_LoopContext(step_block, end_block))
        builder.set_block(body_block)
        self._emit_statement(stmt.body, _Scope(loop_scope))
        if not builder.current_block_terminated:
            builder.br(step_block, line=stmt.line)
        self._loops.pop()

        builder.set_block(step_block)
        if stmt.step is not None:
            self._emit_expr(stmt.step, loop_scope)
        builder.br(cond_block, line=stmt.line, column=stmt.column)

        builder.set_block(end_block)

    # ------------------------------------------------------------------ #
    # Expressions
    # ------------------------------------------------------------------ #
    def _emit_condition(self, expr: ast.Expr, scope: _Scope) -> Value:
        """Evaluate ``expr`` and normalise it to an i32 0/1 value."""
        builder = self._builder
        assert builder is not None
        value, ctype = self._emit_expr(expr, scope)
        if isinstance(expr, (ast.BinaryOp,)) and expr.op in (
                "==", "!=", "<", "<=", ">", ">=", "&&", "||"):
            return value
        if isinstance(ctype, ast.DoubleType):
            return builder.fcmp("ne", value, builder.const_float(0.0),
                                line=expr.line, column=expr.column)
        return builder.icmp("ne", value, builder.const_int(0),
                            line=expr.line, column=expr.column)

    def _emit_expr(self, expr: ast.Expr, scope: _Scope) -> Tuple[Value, ast.CType]:
        builder = self._builder
        assert builder is not None
        if isinstance(expr, ast.IntLiteral):
            return builder.const_int(expr.value), ast.INT
        if isinstance(expr, ast.FloatLiteral):
            return builder.const_float(expr.value), ast.DOUBLE
        if isinstance(expr, ast.Identifier):
            return self._emit_identifier_load(expr, scope)
        if isinstance(expr, ast.ArrayIndex):
            address, elem_ctype_ = self._emit_element_address(expr, scope)
            value = builder.load(address, ir_type_of(elem_ctype_),
                                 line=expr.line, column=expr.column)
            return value, elem_ctype_
        if isinstance(expr, ast.UnaryOp):
            return self._emit_unary(expr, scope)
        if isinstance(expr, ast.BinaryOp):
            return self._emit_binary(expr, scope)
        if isinstance(expr, ast.Assignment):
            return self._emit_assignment(expr, scope)
        if isinstance(expr, ast.IncDec):
            return self._emit_incdec(expr, scope)
        if isinstance(expr, ast.Call):
            return self._emit_call(expr, scope)
        raise SemanticError(f"cannot lower expression {type(expr).__name__}",
                            expr.line, expr.column)

    def _emit_identifier_load(self, expr: ast.Identifier,
                              scope: _Scope) -> Tuple[Value, ast.CType]:
        builder = self._builder
        assert builder is not None
        slot = self._lookup(expr.name, scope, expr.line, expr.column)
        if isinstance(slot.ctype, (ast.ArrayType, ast.PointerType)):
            # Array-valued identifier in a value context: decay to a pointer
            # to the first element (used when passing arrays to functions).
            pointer = self._decayed_pointer(slot, expr.line, expr.column)
            return pointer, slot.ctype
        value = builder.load(slot.pointer, ir_type_of(slot.ctype),
                             line=expr.line, column=expr.column)
        return value, slot.ctype

    def _emit_unary(self, expr: ast.UnaryOp, scope: _Scope) -> Tuple[Value, ast.CType]:
        builder = self._builder
        assert builder is not None
        value, ctype = self._emit_expr(expr.operand, scope)
        if expr.op == "-":
            if isinstance(ctype, ast.DoubleType):
                result = builder.binary(Opcode.FSUB, builder.const_float(0.0),
                                        value, F64, line=expr.line, column=expr.column)
                return result, ast.DOUBLE
            result = builder.binary(Opcode.SUB, builder.const_int(0), value, I32,
                                    line=expr.line, column=expr.column)
            return result, ast.INT
        if expr.op == "!":
            if isinstance(ctype, ast.DoubleType):
                result = builder.fcmp("eq", value, builder.const_float(0.0),
                                      line=expr.line, column=expr.column)
            else:
                result = builder.icmp("eq", value, builder.const_int(0),
                                      line=expr.line, column=expr.column)
            return result, ast.INT
        raise SemanticError(f"unsupported unary operator {expr.op!r}",
                            expr.line, expr.column)

    def _emit_binary(self, expr: ast.BinaryOp, scope: _Scope) -> Tuple[Value, ast.CType]:
        builder = self._builder
        assert builder is not None
        left, left_ty = self._emit_expr(expr.left, scope)
        right, right_ty = self._emit_expr(expr.right, scope)

        if expr.op in ("&&", "||"):
            left_b = self._to_bool(left, left_ty, expr.left)
            right_b = self._to_bool(right, right_ty, expr.right)
            opcode = Opcode.AND if expr.op == "&&" else Opcode.OR
            result = builder.binary(opcode, left_b, right_b, I32,
                                    line=expr.line, column=expr.column)
            return result, ast.INT

        if expr.op in ("==", "!=", "<", "<=", ">", ">="):
            predicate = {"==": "eq", "!=": "ne", "<": "lt", "<=": "le",
                         ">": "gt", ">=": "ge"}[expr.op]
            use_float = isinstance(left_ty, ast.DoubleType) or isinstance(
                right_ty, ast.DoubleType)
            if use_float:
                left = self._convert(left, left_ty, ast.DOUBLE, expr.line, expr.column)
                right = self._convert(right, right_ty, ast.DOUBLE, expr.line, expr.column)
                result = builder.fcmp(predicate, left, right,
                                      line=expr.line, column=expr.column)
            else:
                result = builder.icmp(predicate, left, right,
                                      line=expr.line, column=expr.column)
            return result, ast.INT

        use_float = isinstance(left_ty, ast.DoubleType) or isinstance(
            right_ty, ast.DoubleType)
        if expr.op == "%":
            use_float = False
        if use_float:
            left = self._convert(left, left_ty, ast.DOUBLE, expr.line, expr.column)
            right = self._convert(right, right_ty, ast.DOUBLE, expr.line, expr.column)
            result_ty: ast.CType = ast.DOUBLE
            ir_ty = F64
        else:
            result_ty = ast.INT
            ir_ty = I32
        opcode = binary_opcode(expr.op, use_float)
        result = builder.binary(opcode, left, right, ir_ty,
                                line=expr.line, column=expr.column)
        return result, result_ty

    def _emit_assignment(self, expr: ast.Assignment,
                         scope: _Scope) -> Tuple[Value, ast.CType]:
        builder = self._builder
        assert builder is not None
        target_addr, target_ctype = self._emit_lvalue_address(expr.target, scope)

        if expr.op == "=":
            value, value_ctype = self._emit_expr(expr.value, scope)
            value = self._convert(value, value_ctype, target_ctype,
                                  expr.line, expr.column)
        else:
            current = builder.load(target_addr, ir_type_of(target_ctype),
                                   line=expr.line, column=expr.column)
            rhs, rhs_ctype = self._emit_expr(expr.value, scope)
            op = expr.op[0]  # '+', '-', '*', '/'
            use_float = isinstance(target_ctype, ast.DoubleType) or isinstance(
                rhs_ctype, ast.DoubleType)
            lhs_value = self._convert(current, target_ctype,
                                      ast.DOUBLE if use_float else ast.INT,
                                      expr.line, expr.column)
            rhs_value = self._convert(rhs, rhs_ctype,
                                      ast.DOUBLE if use_float else ast.INT,
                                      expr.line, expr.column)
            opcode = binary_opcode(op, use_float)
            combined = builder.binary(opcode, lhs_value, rhs_value,
                                      F64 if use_float else I32,
                                      line=expr.line, column=expr.column)
            value = self._convert(combined,
                                  ast.DOUBLE if use_float else ast.INT,
                                  target_ctype, expr.line, expr.column)
        builder.store(value, target_addr, line=expr.line, column=expr.column)
        return value, target_ctype

    def _emit_incdec(self, expr: ast.IncDec, scope: _Scope) -> Tuple[Value, ast.CType]:
        builder = self._builder
        assert builder is not None
        target_addr, target_ctype = self._emit_lvalue_address(expr.target, scope)
        current = builder.load(target_addr, ir_type_of(target_ctype),
                               line=expr.line, column=expr.column)
        is_double = isinstance(target_ctype, ast.DoubleType)
        one: Value = builder.const_float(1.0) if is_double else builder.const_int(1)
        if expr.op == "++":
            opcode = Opcode.FADD if is_double else Opcode.ADD
        else:
            opcode = Opcode.FSUB if is_double else Opcode.SUB
        updated = builder.binary(opcode, current, one, F64 if is_double else I32,
                                 line=expr.line, column=expr.column)
        builder.store(updated, target_addr, line=expr.line, column=expr.column)
        return (updated if expr.is_prefix else current), target_ctype

    def _emit_call(self, expr: ast.Call, scope: _Scope) -> Tuple[Value, ast.CType]:
        builder = self._builder
        assert builder is not None
        if expr.callee in BUILTIN_FUNCTIONS:
            param_types, return_ctype = BUILTIN_FUNCTIONS[expr.callee]
            args: List[Value] = []
            for index, arg in enumerate(expr.args):
                value, value_ctype = self._emit_expr(arg, scope)
                if param_types is not None and index < len(param_types):
                    value = self._convert(value, value_ctype, param_types[index],
                                          arg.line, arg.column)
                args.append(value)
            result = builder.call(expr.callee, args, ir_type_of(return_ctype),
                                  is_builtin=True, line=expr.line, column=expr.column)
            if result is None:
                return builder.const_int(0), ast.INT
            return result, return_ctype

        signature = self.info.functions[expr.callee]
        args = []
        for arg, param_ctype in zip(expr.args, signature.param_types):
            if isinstance(param_ctype, ast.PointerType):
                assert isinstance(arg, ast.Identifier)
                slot = self._lookup(arg.name, scope, arg.line, arg.column)
                args.append(self._decayed_pointer(slot, arg.line, arg.column))
            else:
                value, value_ctype = self._emit_expr(arg, scope)
                args.append(self._convert(value, value_ctype, param_ctype,
                                          arg.line, arg.column))
        param_names = tuple(param.name for param in signature.definition.params)
        result = builder.call(expr.callee, args,
                              ir_type_of(signature.return_type),
                              is_builtin=False, param_names=param_names,
                              line=expr.line, column=expr.column)
        if result is None:
            return builder.const_int(0), ast.INT
        return result, signature.return_type

    # ------------------------------------------------------------------ #
    # Addresses and lvalues
    # ------------------------------------------------------------------ #
    def _emit_lvalue_address(self, expr: ast.Expr,
                             scope: _Scope) -> Tuple[Value, ast.CType]:
        if isinstance(expr, ast.Identifier):
            slot = self._lookup(expr.name, scope, expr.line, expr.column)
            if isinstance(slot.ctype, (ast.ArrayType, ast.PointerType)):
                raise SemanticError(f"cannot assign to array {expr.name!r}",
                                    expr.line, expr.column)
            return slot.pointer, slot.ctype
        if isinstance(expr, ast.ArrayIndex):
            return self._emit_element_address(expr, scope)
        raise SemanticError("invalid assignment target", expr.line, expr.column)

    def _emit_element_address(self, expr: ast.ArrayIndex,
                              scope: _Scope) -> Tuple[Value, ast.CType]:
        builder = self._builder
        assert builder is not None
        slot = self._lookup(expr.base.name, scope, expr.line, expr.column)
        elem_ty = element_ctype(slot.ctype)
        base_pointer = self._decayed_pointer(slot, expr.line, expr.column)

        # Flat index: ((i0 * d1 + i1) * d2 + i2) ...
        dims = flat_index_dims(slot.ctype, len(expr.indices))
        flat: Optional[Value] = None
        for position, index_expr in enumerate(expr.indices):
            index_value, index_ctype = self._emit_expr(index_expr, scope)
            index_value = self._convert(index_value, index_ctype, ast.INT,
                                        index_expr.line, index_expr.column)
            if flat is None:
                flat = index_value
            else:
                dim = dims[position - 1]
                scaled = builder.binary(Opcode.MUL, flat, builder.const_int(dim),
                                        I32, line=expr.line, column=expr.column)
                flat = builder.binary(Opcode.ADD, scaled, index_value, I32,
                                      line=expr.line, column=expr.column)
        assert flat is not None
        address = builder.gep(base_pointer, flat, ir_type_of(elem_ty),
                              line=expr.line, column=expr.column)
        return address, elem_ty

    def _decayed_pointer(self, slot: _VarSlot, line: int, column: int) -> Value:
        """Return a pointer-to-element value for an array/pointer variable."""
        builder = self._builder
        assert builder is not None
        if isinstance(slot.ctype, ast.PointerType):
            # Pointer parameters: load the pointer stored in the param alloca.
            return builder.load(slot.pointer, ir_type_of(slot.ctype),
                                line=line, column=column)
        if isinstance(slot.ctype, ast.ArrayType):
            elem_ir = ir_type_of(slot.ctype.element)
            return builder.bitcast(slot.pointer, PointerType(elem_ir),
                                   line=line, column=column)
        # Scalars passed by pointer are not supported in mini-C.
        return slot.pointer

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _lookup(self, name: str, scope: _Scope, line: int, column: int) -> _VarSlot:
        slot = scope.lookup(name)
        if slot is None:
            raise SemanticError(f"use of undeclared identifier {name!r}", line, column)
        return slot

    def _to_bool(self, value: Value, ctype: ast.CType, expr: ast.Expr) -> Value:
        builder = self._builder
        assert builder is not None
        if isinstance(ctype, ast.DoubleType):
            return builder.fcmp("ne", value, builder.const_float(0.0),
                                line=expr.line, column=expr.column)
        return builder.icmp("ne", value, builder.const_int(0),
                            line=expr.line, column=expr.column)

    def _convert(self, value: Value, from_ctype: ast.CType, to_ctype: ast.CType,
                 line: int, column: int) -> Value:
        builder = self._builder
        assert builder is not None
        if isinstance(from_ctype, ast.IntType) and isinstance(to_ctype, ast.DoubleType):
            if isinstance(value, Constant):
                return builder.const_float(float(value.value))
            return builder.cast(Opcode.SITOFP, value, F64, line=line, column=column)
        if isinstance(from_ctype, ast.DoubleType) and isinstance(to_ctype, ast.IntType):
            if isinstance(value, Constant):
                return builder.const_int(int(value.value))
            return builder.cast(Opcode.FPTOSI, value, I32, line=line, column=column)
        return value


def _const_value(expr: ast.Expr) -> Union[int, float]:
    if isinstance(expr, ast.IntLiteral):
        return expr.value
    if isinstance(expr, ast.FloatLiteral):
        return expr.value
    if isinstance(expr, ast.UnaryOp) and expr.op == "-":
        return -_const_value(expr.operand)
    raise SemanticError("expected a constant initializer", expr.line, expr.column)


def compile_program(program: ast.Program, info: Optional[SemanticInfo] = None,
                    module_name: str = "module") -> Module:
    """Lower an AST (running semantic analysis if needed) into an IR module."""
    if info is None:
        info = analyze(program)
    return CodeGenerator(program, info, module_name=module_name).generate()


def compile_source(source: str, module_name: str = "module") -> Module:
    """Parse, analyze and lower mini-C ``source`` into a verified IR module."""
    program = parse_program(source)
    info = analyze(program)
    return CodeGenerator(program, info, module_name=module_name).generate()
