"""``repro.core`` — the AutoCheck analytical model itself.

This package implements the three modules of the paper's design (Fig. 2):

1. **Pre-processing** (:mod:`repro.core.preprocessing`) — partition the
   dynamic trace around the main computation loop and identify the
   Main-Loop-Input (MLI) variables by matching the variables accessed before
   and inside the loop (Sec. IV-A, Fig. 3), with the address-based
   disambiguation of Challenges 1 and 2 (Sec. V-B/V-C).
2. **Data dependency analysis** (:mod:`repro.core.dependency`,
   :mod:`repro.core.regmaps`, :mod:`repro.core.ddg`,
   :mod:`repro.core.contraction`) — selectively iterate the dynamic
   instructions, build the complete DDG through the on-the-fly *reg-var map*
   and *reg-reg map* (Sec. IV-B, Fig. 5), and contract it to MLI variables
   only (Algorithm 1).
3. **Identification of critical variables** (:mod:`repro.core.rwdeps`,
   :mod:`repro.core.classify`) — convert the dependencies into an
   execution-time-ordered Read/Write sequence and apply the WAR / Outcome /
   RAPO / Index heuristics (Sec. IV-C, Fig. 7).

:class:`repro.core.pipeline.AutoCheck` ties the three modules together and
reports per-stage timings (the Table III breakdown).  By default all three
run as passes over one single-pass record walk
(:class:`repro.core.engine.AnalysisEngine`); the staged multi-pass pipeline
remains available as ``AutoCheckConfig(analysis_engine="multipass")``.
"""

from repro.core.config import ANALYSIS_ENGINES, AutoCheckConfig, MainLoopSpec
from repro.core.engine import (
    REGION_AFTER,
    REGION_BEFORE,
    REGION_INSIDE,
    AnalysisEngine,
    AnalysisPass,
    EngineWalk,
)
from repro.core.errors import AnalysisError
from repro.core.report import (
    AutoCheckReport,
    CacheInfo,
    CriticalVariable,
    DependencyType,
)
from repro.core.varmap import VariableInfo, VariableMap
from repro.core.preprocessing import (
    MLICollectionPass,
    MLIVariable,
    PreprocessingResult,
    StreamingTraceRegions,
    TraceRecordRegionView,
    TraceRegions,
    identify_mli_variables,
    identify_mli_variables_streaming,
    partition_trace,
)
from repro.core.ddg import DDG, DDGNode, NodeKind
from repro.core.regmaps import RegRegMap, RegVarMap
from repro.core.dependency import (
    DependencyAnalysis,
    DependencyFrontierPass,
    DependencyPass,
    DependencyResult,
)
from repro.core.parallel import (
    ParallelWalkResult,
    PartitionSeed,
    run_parallel_fused,
    scan_scope_snapshots,
)
from repro.core.contraction import contract_ddg
from repro.core.rwdeps import (
    AccessEvent,
    AccessKind,
    RWExtractionPass,
    extract_rw_dependencies,
)
from repro.core.classify import classify_variables
from repro.core.pipeline import AutoCheck, InductionProbePass, analyze_trace

__all__ = [
    "ANALYSIS_ENGINES",
    "AutoCheckConfig",
    "MainLoopSpec",
    "AnalysisError",
    "AnalysisEngine",
    "AnalysisPass",
    "EngineWalk",
    "REGION_BEFORE",
    "REGION_INSIDE",
    "REGION_AFTER",
    "AutoCheckReport",
    "CacheInfo",
    "CriticalVariable",
    "DependencyType",
    "VariableInfo",
    "VariableMap",
    "MLICollectionPass",
    "MLIVariable",
    "PreprocessingResult",
    "StreamingTraceRegions",
    "TraceRecordRegionView",
    "TraceRegions",
    "identify_mli_variables",
    "identify_mli_variables_streaming",
    "partition_trace",
    "DDG",
    "DDGNode",
    "NodeKind",
    "RegRegMap",
    "RegVarMap",
    "DependencyAnalysis",
    "DependencyFrontierPass",
    "DependencyPass",
    "DependencyResult",
    "ParallelWalkResult",
    "PartitionSeed",
    "run_parallel_fused",
    "scan_scope_snapshots",
    "contract_ddg",
    "AccessEvent",
    "AccessKind",
    "RWExtractionPass",
    "extract_rw_dependencies",
    "classify_variables",
    "AutoCheck",
    "InductionProbePass",
    "analyze_trace",
]
