"""Critical-variable identification heuristics (paper Sec. IV-C, Fig. 7).

Four dependency classes are recognised:

* **WAR** (Write-After-Read): within the loop the variable is read before it
  is (later) overwritten, i.e. its value carries information across
  iterations — it must be checkpointed or the restarted loop would consume a
  stale value.
* **RAPO** (Read-After-Partially-Overwritten): an array whose leading writes
  in an iteration only touch part of its elements before it is read — the
  untouched elements carry state from earlier iterations.
* **Outcome**: the main loop's output — written in the loop and read after
  it.
* **Index**: the outermost induction variable of the main computation loop
  (identified statically; always checkpointed so the restart can jump to the
  right iteration).

Priority when several classes apply: Index, then WAR, then RAPO, then
Outcome (matching how the paper labels its Table II variables, e.g. FT's
``y`` is WAR even though it is also read after the loop, while ``sum`` is the
Outcome).
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.core.preprocessing import PreprocessingResult
from repro.core.report import CriticalVariable, DependencyType
from repro.core.rwdeps import AccessEvent, AccessKind, RWDependencies
from repro.core.varmap import VariableInfo


def _is_war(events: List[AccessEvent]) -> bool:
    """First loop access is a read and a later write exists."""
    if not events:
        return False
    if events[0].kind is not AccessKind.READ:
        return False
    return any(event.kind is AccessKind.WRITE for event in events[1:])


def _is_rapo(info: VariableInfo, events: List[AccessEvent],
             post_events: List[AccessEvent]) -> bool:
    """Array partially overwritten before being read (in or after the loop).

    ``element_offset`` values come from the interval store's
    ``resolve_access`` and are relative to the array's base address, so the
    coverage check against ``info.element_count`` holds for any array size —
    there is no per-element address index behind them any more.
    """
    if not info.is_array or not events:
        return False
    if events[0].kind is not AccessKind.WRITE:
        return False
    written: Set[int] = set()
    saw_read = False
    for event in events:
        if event.kind is AccessKind.WRITE:
            written.add(event.element_offset)
        else:
            saw_read = True
            break
    if not saw_read and not post_events:
        return False
    return len(written) < info.element_count


def _is_outcome(events: List[AccessEvent], post_events: List[AccessEvent]) -> bool:
    """Written inside the loop and read after it."""
    if not post_events:
        return False
    has_write = any(event.kind is AccessKind.WRITE for event in events)
    has_post_read = any(event.kind is AccessKind.READ for event in post_events)
    return has_write and has_post_read


def classify_variables(preprocessing: PreprocessingResult,
                       rw: RWDependencies,
                       induction: Optional[str] = None,
                       induction_info: Optional[VariableInfo] = None,
                       ) -> List[CriticalVariable]:
    """Apply the WAR / RAPO / Outcome / Index heuristics.

    ``induction`` is the name of the outermost main-loop induction variable
    (from the static loop analysis); it is reported with the *Index* class
    and excluded from the other heuristics even if it also matches them.
    """
    critical: List[CriticalVariable] = []
    induction_key: Optional[str] = None

    for variable in preprocessing.mli_variables:
        info = variable.info
        if induction is not None and info.name == induction:
            induction_key = info.key
            continue
        events = rw.events_for(info.key)
        post_events = rw.post_events_for(info.key)
        dependency: Optional[DependencyType] = None
        if _is_war(events):
            dependency = DependencyType.WAR
        elif _is_rapo(info, events, post_events):
            dependency = DependencyType.RAPO
        elif _is_outcome(events, post_events):
            dependency = DependencyType.OUTCOME
        if dependency is not None:
            critical.append(CriticalVariable(
                name=info.name,
                dependency=dependency,
                size_bytes=info.size_bytes,
                base_address=info.base_address,
                decl_line=info.decl_line,
                is_array=info.is_array,
                is_global=info.is_global,
            ))

    if induction is not None:
        info = induction_info
        if info is None:
            mli_match = next((var.info for var in preprocessing.mli_variables
                              if var.name == induction), None)
            info = mli_match
        critical.append(CriticalVariable(
            name=induction,
            dependency=DependencyType.INDEX,
            size_bytes=info.size_bytes if info else 4,
            base_address=info.base_address if info else 0,
            decl_line=info.decl_line if info else 0,
            is_array=False,
            is_global=info.is_global if info else False,
        ))

    return critical
