"""Configuration objects for the AutoCheck pipeline.

Per the paper (Sec. VII, "Use of AutoCheck") the user supplies:

1. the dynamic execution trace of the target program,
2. the main computation loop's start and end line numbers, and
3. the name of the function containing the main computation loop.

:class:`MainLoopSpec` captures (2) and (3); :class:`AutoCheckConfig` adds the
implementation knobs (parallel pre-processing on/off and worker count —
Sec. V-A — plus the optional global-variable workaround discussed for FT in
Sec. V-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

#: Valid values of :attr:`AutoCheckConfig.analysis_engine`.
ANALYSIS_ENGINES = ("fused", "parallel", "multipass")

#: Valid values of :attr:`AutoCheckConfig.decode`.
DECODE_MODES = ("columnar", "records")


@dataclass(frozen=True)
class MainLoopSpec:
    """Location of the main computation loop in the source program.

    The paper's user-supplied input (Sec. VII): AutoCheck needs to know
    which function hosts the main computation loop and the loop's source
    line range (the MCLR of Table II).
    """

    #: Name of the function containing the main computation loop.
    function: str
    #: First source line of the loop (inclusive; the controlling line).
    start_line: int
    #: Last source line of the loop (inclusive).
    end_line: int

    def __post_init__(self) -> None:
        if self.start_line <= 0 or self.end_line < self.start_line:
            raise ValueError(
                f"invalid main computation loop range "
                f"[{self.start_line}, {self.end_line}]")

    def contains_line(self, line: int) -> bool:
        """True when ``line`` lies within the loop's source range."""
        return self.start_line <= line <= self.end_line

    @property
    def mclr(self) -> str:
        """Human readable MCLR string as used in paper Table II."""
        return f"{self.start_line}-{self.end_line}"


@dataclass
class AutoCheckConfig:
    """Tunable options of the analysis."""

    main_loop: MainLoopSpec
    #: Enable the parallel trace pre-processing optimization (Sec. V-A) when
    #: the input is a trace file.
    parallel_preprocessing: bool = False
    #: Number of workers used by the parallel pre-processing.
    preprocessing_workers: int = 4
    #: Use process- instead of thread-based workers for the parallel read.
    preprocessing_use_processes: bool = False
    #: Stream the trace file through the pre-processing stage in a single
    #: pass instead of materializing every record in memory first.  The
    #: region partitioning and the before/inside variable collection happen
    #: on the fly, so memory stays bounded by the variable sets rather than
    #: the trace size (the later pipeline stages re-stream only the
    #: inside/after regions they need).  Requires a trace *file* input;
    #: ignored for in-memory traces.
    streaming_preprocessing: bool = False
    #: Also collect global-variable accesses made inside function calls when
    #: gathering the before/inside variable sets.  The paper keeps this off
    #: and instead initializes such globals right before the main loop (the
    #: FT workaround of Sec. V-B); the switch exists to study that choice.
    include_global_accesses_in_calls: bool = False
    #: Name of the induction variable, if the caller already knows it (e.g.
    #: from the static loop analysis).  When ``None`` the pipeline falls back
    #: to its own detection.
    induction_variable: Optional[str] = None
    #: Which analysis pipeline to run.  ``"fused"`` (default) drives every
    #: stage — region partitioning, MLI collection, dependency analysis,
    #: R/W extraction, dynamic-induction probing — as passes over one
    #: single-pass :class:`repro.core.engine.AnalysisEngine` walk; combined
    #: with ``streaming_preprocessing`` the trace file is streamed exactly
    #: once end to end.  ``"parallel"`` shards that same fused walk across
    #: ``workers`` worker processes over partitions of a *block-indexed
    #: binary* trace file (:mod:`repro.core.parallel`) and merges the
    #: per-partition pass states into an identical report — the throughput
    #: path for large traces on multi-core machines.  ``"multipass"`` is
    #: the legacy staged pipeline (each stage re-iterates its region), kept
    #: as the benchmark baseline.
    analysis_engine: str = "fused"
    #: Worker-process count (and partition count) of the parallel fused
    #: engine; only read when ``analysis_engine="parallel"``.  ``1`` runs
    #: the partition machinery inline without subprocesses.
    workers: int = 4
    #: Consult the content-addressed artifact store (:mod:`repro.store`)
    #: before running the analysis, and publish the result into it after.
    #: A hit — same trace content digest, same semantic config fingerprint,
    #: same report schema — skips the record walk entirely and deserializes
    #: the stored report.  Off by default; the CLI exposes it as
    #: ``--cache`` / ``--no-cache``.
    use_cache: bool = False
    #: Root directory of the artifact store.  ``None`` uses
    #: ``$AUTOCHECK_CACHE_DIR`` or ``~/.cache/autocheck`` (see
    #: :func:`repro.store.cache.default_cache_dir`).
    cache_dir: Optional[str] = None
    #: Hand the fused engine a static prefilter derived from the module's
    #: IR (:mod:`repro.static.prefilter`): records outside the loop region
    #: that provably cannot reach the MLI / R/W passes skip pass dispatch
    #: entirely.  Requires the module to be supplied to :class:`AutoCheck`
    #: and ``analysis_engine="fused"``; the report is proven byte-identical
    #: by ``tests/test_static_prefilter.py``.  When on, the static
    #: analysis' fingerprint joins the artifact-store cache key.
    static_prefilter: bool = False
    #: How the fused and parallel engines consume a *block-indexed binary*
    #: trace file.  ``"columnar"`` (default) decodes whole record blocks
    #: into parallel arrays (:mod:`repro.trace.columnar`) and lets the
    #: passes sweep column slices, materializing per-record objects only
    #: for the rare scope-changing opcodes; ``"records"`` is the classic
    #: one-``TraceRecord``-per-record walk.  The reports are byte-identical
    #: (``tests/test_columnar.py`` proves it fleet-wide) — this knob only
    #: trades decode strategy for speed, so it does not join the artifact
    #: store's semantic fingerprint.  Inputs the columnar reader cannot
    #: serve (in-memory traces, text traces, v1 binary files without a
    #: block index) silently fall back to the record walk.
    decode: str = "columnar"
    #: Optional progress hook for long walks: called with the cumulative
    #: number of trace records consumed so far, periodically during the
    #: fused engine's walk (per columnar block, or every
    #: :data:`repro.core.pipeline.PROGRESS_STRIDE` records on the record
    #: walk).  The serve daemon points this at a job's progress counter so
    #: ``GET /jobs/<id>`` can stream live progress; it is per-run plumbing,
    #: not analysis semantics — excluded from equality, repr and the
    #: artifact-store fingerprint, and it must be picklable (or ``None``)
    #: if the config crosses process boundaries.
    progress_callback: Optional[Callable[[int], None]] = field(
        default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.parallel_preprocessing and self.streaming_preprocessing:
            raise ValueError(
                "parallel_preprocessing and streaming_preprocessing are "
                "mutually exclusive: the streaming mode is a single "
                "sequential pass and would silently ignore the parallel "
                "reader — pick one")
        if self.analysis_engine not in ANALYSIS_ENGINES:
            raise ValueError(
                f"unknown analysis_engine {self.analysis_engine!r}; "
                f"expected one of {ANALYSIS_ENGINES}")
        if self.analysis_engine == "parallel" and self.workers < 1:
            raise ValueError(
                f"analysis_engine='parallel' needs workers >= 1, "
                f"got {self.workers}")
        if self.decode not in DECODE_MODES:
            raise ValueError(
                f"unknown decode {self.decode!r}; "
                f"expected one of {DECODE_MODES}")
        if self.static_prefilter and self.analysis_engine != "fused":
            raise ValueError(
                "static_prefilter is only implemented for the fused "
                "single-pass engine (analysis_engine='fused'); the skip "
                "rules are proven against exactly its pass set")
