"""DDG contraction (paper Algorithm 1).

The complete DDG contains MLI variables, local variables and temporary
registers.  The contraction replaces, for every MLI variable, each non-MLI
parent by that parent's parents, repeating until only MLI parents remain;
parentless non-MLI parents are simply contracted away.  Finally every vertex
that is not an MLI variable is removed, leaving the contracted DDG of paper
Fig. 5(d).

Termination note: temporary registers can form cycles through non-MLI local
variables (e.g. a local accumulator ``t = t + x``).  The paper's algorithm
stops when "the DDG does not change any more"; we implement the same fixed
point by never re-expanding a parent that has already been substituted for a
given MLI vertex, which yields exactly the set of MLI ancestors reachable
through chains of non-MLI vertices.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

from repro.core.ddg import DDG, NodeKind


def contract_ddg(complete: DDG, mli_keys: Optional[Iterable[str]] = None) -> DDG:
    """Return the contracted DDG containing only MLI-variable vertices."""
    if mli_keys is None:
        keys: Set[str] = {node.key for node in complete.nodes() if node.is_mli}
    else:
        keys = set(mli_keys)

    result = complete.copy()

    for mli_key in [node.key for node in result.nodes() if node.key in keys]:
        expanded: Set[str] = set()
        changed = True
        while changed:
            changed = False
            for parent in list(result.parents_of(mli_key)):
                if parent in keys:
                    continue
                # Replace the non-MLI parent by its own parents (grandparents
                # of the MLI vertex), dropping it from this vertex's parents.
                result.remove_edge(parent, mli_key)
                changed = True
                if parent in expanded:
                    continue
                expanded.add(parent)
                for grandparent in result.parents_of(parent):
                    if grandparent != mli_key:
                        result.add_edge(grandparent, mli_key)

    for node in list(result.nodes()):
        if node.key not in keys:
            result.remove_node(node.key)
    return result


def contraction_is_sound(complete: DDG, contracted: DDG,
                         mli_keys: Optional[Iterable[str]] = None) -> bool:
    """Check the contraction's defining property (used by property tests).

    For every pair of MLI vertices ``(p, c)``: ``p`` is a parent of ``c`` in
    the contracted DDG *iff* ``c`` is reachable from ``p`` in the complete
    DDG through a path whose intermediate vertices are all non-MLI.
    """
    if mli_keys is None:
        keys = {node.key for node in complete.nodes() if node.is_mli}
    else:
        keys = set(mli_keys)

    for child in keys:
        if not complete.has_node(child):
            continue
        expected: Set[str] = set()
        # BFS backwards over non-MLI intermediates.
        seen: Set[str] = set()
        work = list(complete.parents_of(child))
        while work:
            current = work.pop()
            if current in seen:
                continue
            seen.add(current)
            if current in keys:
                if current != child:
                    expected.add(current)
                continue
            work.extend(complete.parents_of(current))
        actual = set(contracted.parents_of(child)) if contracted.has_node(child) else set()
        if actual != expected:
            return False
    return True
