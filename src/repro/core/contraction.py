"""DDG contraction (paper Algorithm 1).

The complete DDG contains MLI variables, local variables and temporary
registers.  The contraction replaces, for every MLI variable, each non-MLI
parent by that parent's parents, repeating until only MLI parents remain;
parentless non-MLI parents are simply contracted away.  Finally every vertex
that is not an MLI variable is removed, leaving the contracted DDG of paper
Fig. 5(d).

Termination note: temporary registers can form cycles through non-MLI local
variables (e.g. a local accumulator ``t = t + x``).  The paper's algorithm
stops when "the DDG does not change any more"; the fixed point it converges
to is exactly "every MLI vertex's parents are the MLI ancestors reachable
through chains of non-MLI vertices", which we compute directly with one
reverse BFS per MLI vertex over the *unmodified* complete DDG.  This is
O(MLI vertices × edges) worst case and visits every vertex at most once per
BFS — the earlier expansion-loop formulation re-copied parent sets on every
substitution and went quadratic on dense register graphs.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

from repro.core.ddg import DDG


def contract_ddg(complete: DDG, mli_keys: Optional[Iterable[str]] = None) -> DDG:
    """Return the contracted DDG containing only MLI-variable vertices."""
    if mli_keys is None:
        keys: Set[str] = {node.key for node in complete.nodes() if node.is_mli}
    else:
        keys = set(mli_keys)

    result = DDG()
    retained = [node for node in complete.nodes() if node.key in keys]
    for node in retained:
        result.add_node(node.key, node.kind, node.label)

    for node in retained:
        child = node.key
        # Reverse BFS from `child` through non-MLI intermediates; every MLI
        # vertex reached becomes a parent in the contracted graph.
        seen: Set[str] = set()
        work = list(complete.parents_of(child))
        while work:
            current = work.pop()
            if current in seen:
                continue
            seen.add(current)
            if current in keys:
                if current != child:
                    result.add_edge(current, child)
                continue
            work.extend(complete.parents_of(current))
    return result


def contraction_is_sound(complete: DDG, contracted: DDG,
                         mli_keys: Optional[Iterable[str]] = None) -> bool:
    """Check the contraction's defining property (used by property tests).

    For every pair of MLI vertices ``(p, c)``: ``p`` is a parent of ``c`` in
    the contracted DDG *iff* ``c`` is reachable from ``p`` in the complete
    DDG through a path whose intermediate vertices are all non-MLI.
    """
    if mli_keys is None:
        keys = {node.key for node in complete.nodes() if node.is_mli}
    else:
        keys = set(mli_keys)

    for child in keys:
        if not complete.has_node(child):
            continue
        expected: Set[str] = set()
        # BFS backwards over non-MLI intermediates.
        seen: Set[str] = set()
        work = list(complete.parents_of(child))
        while work:
            current = work.pop()
            if current in seen:
                continue
            seen.add(current)
            if current in keys:
                if current != child:
                    expected.add(current)
                continue
            work.extend(complete.parents_of(current))
        actual = set(contracted.parents_of(child)) if contracted.has_node(child) else set()
        if actual != expected:
            return False
    return True
