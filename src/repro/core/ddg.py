"""Data dependency graph (DDG) structure.

Nodes are either MLI variables, local variables (including temporaries of
called functions), or virtual registers; a directed edge ``parent -> child``
means "child's value depends on parent" — exactly the structure of the
paper's Fig. 5(c).  The contraction pass (Algorithm 1) removes every node
that is not an MLI variable, producing Fig. 5(d).

The graph is a thin adjacency structure of its own (the contraction operates
on parents-of queries, which we keep O(1)); :meth:`DDG.to_networkx` exports
to :mod:`networkx` for tests, metrics and visualisation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple


class NodeKind(enum.Enum):
    """What a DDG vertex stands for."""

    MLI = "mli"
    LOCAL = "local"
    REGISTER = "register"


@dataclass(frozen=True)
class DDGNode:
    """One DDG vertex."""

    key: str
    kind: NodeKind
    label: str

    @property
    def is_mli(self) -> bool:
        return self.kind is NodeKind.MLI


class DDG:
    """A mutable directed dependency graph."""

    def __init__(self) -> None:
        self._nodes: Dict[str, DDGNode] = {}
        self._parents: Dict[str, Set[str]] = {}
        self._children: Dict[str, Set[str]] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_node(self, key: str, kind: NodeKind, label: Optional[str] = None) -> DDGNode:
        node = self._nodes.get(key)
        if node is None:
            node = DDGNode(key=key, kind=kind, label=label or key)
            self._nodes[key] = node
            self._parents[key] = set()
            self._children[key] = set()
        return node

    def set_node_kind(self, key: str, kind: NodeKind) -> None:
        """Re-label an existing node (no-op for unknown keys).

        Used by the single-pass engine: a variable's MLI status may only be
        proven *after* its node was created (the qualifying loop access can
        come later in the stream), so node kinds are finalized once the
        walk ends.  Edges are untouched.
        """
        node = self._nodes.get(key)
        if node is not None and node.kind is not kind:
            self._nodes[key] = DDGNode(key=node.key, kind=kind,
                                       label=node.label)

    def add_edge(self, parent_key: str, child_key: str) -> None:
        if parent_key == child_key:
            return
        if parent_key not in self._nodes or child_key not in self._nodes:
            raise KeyError("both endpoints must be added before the edge")
        self._parents[child_key].add(parent_key)
        self._children[parent_key].add(child_key)

    def remove_node(self, key: str) -> None:
        if key not in self._nodes:
            return
        for parent in self._parents.pop(key, set()):
            self._children[parent].discard(key)
        for child in self._children.pop(key, set()):
            self._parents[child].discard(key)
        del self._nodes[key]

    def remove_edge(self, parent_key: str, child_key: str) -> None:
        self._parents.get(child_key, set()).discard(parent_key)
        self._children.get(parent_key, set()).discard(child_key)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def node(self, key: str) -> DDGNode:
        return self._nodes[key]

    def has_node(self, key: str) -> bool:
        return key in self._nodes

    def nodes(self) -> List[DDGNode]:
        return list(self._nodes.values())

    def node_keys(self) -> List[str]:
        return list(self._nodes.keys())

    def parents_of(self, key: str) -> Set[str]:
        return set(self._parents.get(key, set()))

    def children_of(self, key: str) -> Set[str]:
        return set(self._children.get(key, set()))

    def edges(self) -> List[Tuple[str, str]]:
        out: List[Tuple[str, str]] = []
        for child, parents in self._parents.items():
            for parent in parents:
                out.append((parent, child))
        return out

    def mli_nodes(self) -> List[DDGNode]:
        return [node for node in self._nodes.values() if node.is_mli]

    def ancestors_of(self, key: str) -> Set[str]:
        """All transitive ancestors of ``key`` (not including itself)."""
        seen: Set[str] = set()
        work = list(self._parents.get(key, set()))
        while work:
            current = work.pop()
            if current in seen:
                continue
            seen.add(current)
            work.extend(self._parents.get(current, set()))
        return seen

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def edge_count(self) -> int:
        return sum(len(parents) for parents in self._parents.values())

    # ------------------------------------------------------------------ #
    # Interop / utilities
    # ------------------------------------------------------------------ #
    def copy(self) -> "DDG":
        clone = DDG()
        for node in self._nodes.values():
            clone.add_node(node.key, node.kind, node.label)
        for child, parents in self._parents.items():
            for parent in parents:
                clone.add_edge(parent, child)
        return clone

    def to_networkx(self):
        """Export to a :class:`networkx.DiGraph` (edges parent -> child)."""
        import networkx as nx

        graph = nx.DiGraph()
        for node in self._nodes.values():
            graph.add_node(node.key, kind=node.kind.value, label=node.label)
        for parent, child in self.edges():
            graph.add_edge(parent, child)
        return graph

    def to_dot(self) -> str:
        """Render as Graphviz DOT (used by examples to show Fig. 5 graphs)."""
        lines = ["digraph ddg {"]
        shape = {NodeKind.MLI: "box", NodeKind.LOCAL: "ellipse",
                 NodeKind.REGISTER: "circle"}
        for node in self._nodes.values():
            lines.append(
                f'  "{node.key}" [label="{node.label}", shape={shape[node.kind]}];')
        for parent, child in sorted(self.edges()):
            lines.append(f'  "{parent}" -> "{child}";')
        lines.append("}")
        return "\n".join(lines)

    def __eq__(self, other: object) -> bool:
        """Structural equality: same nodes (key, kind, label) and edges.

        Needed by the artifact store's round-trip guarantee — a report
        deserialized from JSON must compare equal to the report it was
        serialized from, and :class:`~repro.core.report.AutoCheckReport` is
        a dataclass whose ``__eq__`` recurses into its DDGs.
        """
        if not isinstance(other, DDG):
            return NotImplemented
        return (self._nodes == other._nodes
                and self._parents == other._parents)

    __hash__ = None  # mutable container; structural eq forbids hashing

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<DDG nodes={self.node_count} edges={self.edge_count}>"
