"""Data dependency analysis: building the complete DDG.

Implements Sec. IV-B of the paper.  The analysis *selectively* iterates the
dynamic instructions of the main computation loop's dynamic extent and
maintains:

* the **reg-var map** — updated by ``Load``/``Store`` and by the pointer
  assignments of ``GetElementPtr``/``BitCast`` (paper Table I);
* the **reg-reg map** — updated by arithmetic instructions and by
  single-``Call`` records (the Fig. 6a case);
* the **complete DDG** — variable and register vertices with "depends on"
  edges; variable vertices gain their incoming edges when ``Store``
  instructions terminate computations, and function calls with a traced body
  (the Fig. 6b case) connect arguments to parameters through the recorded
  argument/parameter correlation.

Every memory access is attributed to its owning variable by address-interval
lookup (:class:`repro.core.varmap.VariableMap`), which is how the analysis
distinguishes MLI variables from same-named locals (Challenge 2) and follows
data through pointer parameters.

Two pieces of dynamic scoping keep that attribution honest across calls:

* every traced ``Call`` opens an allocation scope on the variable map and
  the matching ``Ret`` closes it, retiring the callee's Allocas — a dead
  frame can never absorb later accesses to reused stack addresses;
* argument/parameter correlations are kept on a **per-callee binding
  stack** (pushed on ``Call``, popped on ``Ret``), so recursive or repeated
  calls to the same callee cannot clobber each other's bindings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.ddg import DDG, NodeKind
from repro.core.preprocessing import MLIVariable, PreprocessingResult, TraceRegions
from repro.core.regmaps import RegRegMap, RegVarMap
from repro.core.varmap import VariableInfo, VariableMap
from repro.ir.opcodes import FORWARDING_OPCODES, Opcode
from repro.trace.records import TraceOperand, TraceRecord


@dataclass
class DependencyResult:
    """Artefacts produced by the dependency analysis."""

    complete_ddg: DDG
    reg_var_map: RegVarMap
    reg_reg_map: RegRegMap
    variable_map: VariableMap
    #: last binding observed per (callee, parameter) — reporting view of the
    #: per-activation binding stacks the analysis maintains internally
    param_bindings: Dict[Tuple[str, str], str] = field(default_factory=dict)
    #: number of records actually inspected (the "selective" subset)
    inspected_records: int = 0


class DependencyAnalysis:
    """Build the complete DDG for the main computation loop."""

    def __init__(self, preprocessing: PreprocessingResult) -> None:
        self.preprocessing = preprocessing
        self.regions: TraceRegions = preprocessing.regions
        self.mli_keys: Set[str] = set(preprocessing.mli_keys())
        self.mli_by_key: Dict[str, MLIVariable] = {
            var.key: var for var in preprocessing.mli_variables}

        # The dependency analysis needs to attribute addresses to *any*
        # variable, including locals of called functions; start from the
        # pre-processing map (globals + main-loop-function allocations) and
        # extend it on the fly with the Allocas seen inside the loop.
        self.varmap = VariableMap()
        for info in preprocessing.variable_map:
            self.varmap.add(info)

        self.ddg = DDG()
        self.reg_var = RegVarMap()
        self.reg_reg = RegRegMap()
        self.param_bindings: Dict[Tuple[str, str], str] = {}
        #: callee name -> stack of per-activation {parameter: source key}
        #: frames; the innermost frame is the one lookups must see, so
        #: recursion cannot clobber an outer activation's bindings.  A frame
        #: entry may be None: the parameter is explicitly *unbound* for that
        #: activation (non-register argument) and must not leak a previous
        #: activation's binding.
        self._binding_stacks: Dict[str, List[Dict[str, Optional[str]]]] = {}
        #: set by a Call record; materialized into a scope + binding frame by
        #: the next record IF that record executes in the callee (i.e. a
        #: traced body follows — zero-parameter user functions included;
        #: builtins never enter their callee, so nothing opens for them).
        self._pending_activation: Optional[Tuple[str, Dict[str, Optional[str]]]] = None
        self._inspected = 0

    # ------------------------------------------------------------------ #
    # Node helpers
    # ------------------------------------------------------------------ #
    def _register_key(self, function: str, register: str) -> str:
        return f"{function}%{register}"

    def _register_node(self, function: str, register: str) -> str:
        key = self._register_key(function, register)
        self.ddg.add_node(key, NodeKind.REGISTER, label=f"{function}:%{register}")
        return key

    def _variable_node(self, info: VariableInfo) -> str:
        kind = NodeKind.MLI if info.key in self.mli_keys else NodeKind.LOCAL
        self.ddg.add_node(info.key, kind, label=info.name)
        return info.key

    def _lookup_binding(self, function: str, name: str) -> Optional[str]:
        """The innermost activation's binding for parameter ``name``.

        If the innermost frame knows the parameter, its value is
        authoritative — including an explicit None (unbound for this
        activation; a previous activation's binding must not leak in).  The
        flat last-binding view is only consulted when no frame knows the
        name, e.g. for regions that begin mid-activation where no ``Call``
        record was seen for the open frame.
        """
        frames = self._binding_stacks.get(function)
        if frames and name in frames[-1]:
            return frames[-1][name]
        return self.param_bindings.get((function, name))

    def _resolve_memory(self, record: TraceRecord,
                        operand: TraceOperand) -> Optional[str]:
        """Resolve a memory operand to a variable node key."""
        info = self.varmap.resolve(operand.address)
        if info is not None:
            return self._variable_node(info)
        binding = self._lookup_binding(record.function, operand.name)
        if binding is not None:
            return binding
        if operand.name:
            key = f"{record.function}:{operand.name}"
            self.ddg.add_node(key, NodeKind.LOCAL, label=operand.name)
            return key
        return None

    # ------------------------------------------------------------------ #
    # Main walk
    # ------------------------------------------------------------------ #
    def run(self) -> DependencyResult:
        for record in self.regions.inside:
            self._visit(record)
        return DependencyResult(
            complete_ddg=self.ddg,
            reg_var_map=self.reg_var,
            reg_reg_map=self.reg_reg,
            variable_map=self.varmap,
            param_bindings=self.param_bindings,
            inspected_records=self._inspected,
        )

    def _visit(self, record: TraceRecord) -> None:
        pending = self._pending_activation
        if pending is not None:
            self._pending_activation = None
            callee, frame = pending
            if record.function == callee:
                # The callee's traced body follows the Call record: open its
                # activation now (allocation scope + binding frame).  For a
                # builtin the next record stays in the caller and nothing
                # opens, so Call/Ret scope pairing is exact — including for
                # zero-parameter user functions.
                self._binding_stacks.setdefault(callee, []).append(frame)
                self.varmap.enter_scope(callee)
        opcode = record.opcode
        if record.is_alloca:
            self._inspected += 1
            self.varmap.add_alloca_record(record)
            return
        if record.is_load:
            self._inspected += 1
            self._visit_load(record)
            return
        if record.is_store:
            self._inspected += 1
            self._visit_store(record)
            return
        if record.is_gep or Opcode(opcode) in FORWARDING_OPCODES:
            self._inspected += 1
            self._visit_forwarding(record)
            return
        if record.is_arithmetic:
            self._inspected += 1
            self._visit_arithmetic(record)
            return
        if record.is_call:
            self._inspected += 1
            self._visit_call(record)
            return
        if opcode == Opcode.RET:
            # Returns carry no data dependencies, but they close the callee's
            # activation: retire its Allocas from address resolution and pop
            # its parameter-binding frame.  Not counted as "inspected" — the
            # selective iteration statistic counts dependency-bearing records.
            self._visit_ret(record)
            return
        # Branches and comparisons carry no data dependencies the heuristics
        # need; they are skipped ("selective iteration").

    def _visit_load(self, record: TraceRecord) -> None:
        operand = record.memory_operand()
        if operand is None or record.result is None:
            return
        var_key = self._resolve_memory(record, operand)
        if var_key is None:
            return
        reg_key = self._register_node(record.function, record.result.name)
        self.ddg.add_edge(var_key, reg_key)
        self.reg_var.associate(record.function, record.result.name, var_key)

    def _visit_store(self, record: TraceRecord) -> None:
        if len(record.operands) < 2:
            return
        value_operand, memory_operand = record.operands[0], record.operands[1]
        var_key = self._resolve_memory(record, memory_operand)
        if var_key is None:
            return
        if value_operand.is_register:
            reg_key = self._register_node(record.function, value_operand.name)
            self.ddg.add_edge(reg_key, var_key)
            self.reg_var.associate(record.function, value_operand.name, var_key)
        elif value_operand.name:
            # Storing a named non-register value: this is the callee spilling
            # a formal parameter into its stack slot — connect it to the
            # argument recorded by the preceding Call instruction (Fig. 6b).
            binding = self._lookup_binding(record.function, value_operand.name)
            if binding is not None:
                self.ddg.add_edge(binding, var_key)

    def _visit_forwarding(self, record: TraceRecord) -> None:
        """GetElementPtr / BitCast / numeric casts: pointer or value forwarding."""
        if record.result is None:
            return
        result_key = self._register_node(record.function, record.result.name)
        if record.is_gep:
            operand = record.memory_operand()
            if operand is not None:
                var_key = self._resolve_memory(record, operand)
                if var_key is not None:
                    # Pointer assignment: the result register now stands for
                    # the variable (recursive source search of Sec. IV-A).
                    self.reg_var.associate(record.function, record.result.name, var_key)
            # Index registers feeding the address computation also flow into
            # the access (e.g. the DDG edge from `it` into `a` in Fig. 5c).
            for operand in record.operands[1:]:
                if operand.is_register:
                    reg_key = self._register_node(record.function, operand.name)
                    self.ddg.add_edge(reg_key, result_key)
            return
        # BitCast and numeric casts forward their single operand.
        for operand in record.operands:
            if operand.is_register:
                reg_key = self._register_node(record.function, operand.name)
                self.ddg.add_edge(reg_key, result_key)
                source = self.reg_var.lookup(record.function, operand.name)
                if source is None and operand.address is not None:
                    # The register holds a pointer (e.g. the result of an
                    # array Alloca being decayed) — resolve it by address.
                    info = self.varmap.resolve(operand.address)
                    if info is not None:
                        source = self._variable_node(info)
                if source is not None:
                    self.reg_var.associate(record.function, record.result.name, source)
                self.reg_reg.link(record.function, record.result.name, [operand.name])

    def _visit_arithmetic(self, record: TraceRecord) -> None:
        if record.result is None:
            return
        result_key = self._register_node(record.function, record.result.name)
        input_registers: List[str] = []
        for operand in record.operands:
            if operand.is_register:
                input_registers.append(operand.name)
                reg_key = self._register_node(record.function, operand.name)
                self.ddg.add_edge(reg_key, result_key)
        self.reg_reg.link(record.function, record.result.name, input_registers)

    def _visit_call(self, record: TraceRecord) -> None:
        params = record.parameter_operands()
        args = record.argument_operands()
        frame: Dict[str, Optional[str]] = {}
        if not params:
            # Single-Call form (builtin / external, Fig. 6a): behave like an
            # arithmetic instruction over the argument registers.  It may
            # still be a zero-parameter *user* function whose body follows —
            # the pending-activation check on the next record decides.
            if record.result is not None:
                result_key = self._register_node(record.function,
                                                 record.result.name)
                input_registers = []
                for operand in args:
                    if operand.is_register:
                        input_registers.append(operand.name)
                        reg_key = self._register_node(record.function,
                                                      operand.name)
                        self.ddg.add_edge(reg_key, result_key)
                self.reg_reg.link(record.function, record.result.name,
                                  input_registers)
        else:
            # Call followed by its body (Fig. 6b): record the argument/
            # parameter correlation so the callee's parameter accesses
            # connect back to the caller's variables.  Every parameter gets a
            # frame entry — None marks it explicitly unbound for this
            # activation.
            for position, param in enumerate(params):
                source_key: Optional[str] = None
                if position < len(args):
                    arg = args[position]
                    if arg.is_register:
                        source_key = self.reg_var.lookup(record.function,
                                                         arg.name)
                        if source_key is None and arg.address is not None:
                            info = self.varmap.resolve(arg.address)
                            if info is not None:
                                source_key = self._variable_node(info)
                        if source_key is None:
                            source_key = self._register_node(record.function,
                                                             arg.name)
                frame[param.name] = source_key
                if source_key is not None:
                    self.param_bindings[(record.callee, param.name)] = source_key
        if record.callee:
            self._pending_activation = (record.callee, frame)

    def _visit_ret(self, record: TraceRecord) -> None:
        frames = self._binding_stacks.get(record.function)
        if frames:
            frames.pop()
        self.varmap.exit_scope(record.function)
