"""Data dependency analysis: building the complete DDG.

Implements Sec. IV-B of the paper.  The analysis *selectively* inspects the
dynamic instructions of the main computation loop's dynamic extent and
maintains:

* the **reg-var map** — updated by ``Load``/``Store`` and by the pointer
  assignments of ``GetElementPtr``/``BitCast`` (paper Table I);
* the **reg-reg map** — updated by arithmetic instructions and by
  single-``Call`` records (the Fig. 6a case);
* the **complete DDG** — variable and register vertices with "depends on"
  edges; variable vertices gain their incoming edges when ``Store``
  instructions terminate computations, and function calls with a traced body
  (the Fig. 6b case) connect arguments to parameters through the recorded
  argument/parameter correlation.

Every memory access is attributed to its owning variable by address-interval
lookup (:class:`repro.core.varmap.VariableMap`), which is how the analysis
distinguishes MLI variables from same-named locals (Challenge 2) and follows
data through pointer parameters.

The walk itself is hosted by :class:`repro.core.engine.AnalysisEngine`:
:class:`DependencyPass` subscribes to the record kinds that carry data
dependencies and to the engine's call/ret scope events, which keep the
attribution honest across calls:

* the engine opens an allocation scope when a traced ``Call``'s body follows
  and retires the callee's Allocas on its ``Ret`` — a dead frame can never
  absorb later accesses to reused stack addresses;
* argument/parameter correlations are kept on a **per-callee binding
  stack** (pushed on activation, popped on return), so recursive or
  repeated calls to the same callee cannot clobber each other's bindings.

In the fused pipeline the pass shares the engine's live map with every other
stage and decides MLI node kinds from the live before/inside variable sets
(finalized after the walk, since a variable's qualifying access can come
later in the stream).  One deliberate refinement over the legacy walk: when
the main loop lives in a *called* function, the shared map can attribute a
pointer access to the live ancestor frame's actual variable, where the
legacy map (globals + loop-function + region allocations only) fell back to
a parameter-binding or named-local vertex — the MLI/critical classification
is unaffected (MLI candidacy is filtered to globals and loop-function
locals either way), only the labeling of non-MLI intermediate DDG vertices
is more precise.  :class:`DependencyAnalysis` is the legacy-shaped
wrapper — pre-processing result in, :class:`DependencyResult` out — used by
the multi-pass pipeline and the unit tests; it drives the same pass over an
already-partitioned inside region.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.ddg import DDG, NodeKind
from repro.core.engine import (
    KIND_ARITHMETIC,
    KIND_BY_OPCODE,
    KIND_FORWARDING,
    KIND_GEP,
    KIND_LOAD,
    KIND_OTHER,
    KIND_STORE,
    REGION_INSIDE,
    AnalysisEngine,
    AnalysisPass,
)
from repro.core.preprocessing import MLIVariable, PreprocessingResult, TraceRegions
from repro.core.regmaps import RegRegMap, RegVarMap
from repro.core.varmap import VariableInfo, VariableMap
from repro.trace.records import TraceOperand, TraceRecord

try:  # numpy accelerates the columnar row preselection; loops otherwise
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the range fallback
    _np = None


# --------------------------------------------------------------------------- #
# Frontier events
# --------------------------------------------------------------------------- #
# The dependency analysis is the one pass whose state is inherently
# sequential: register associations, parameter-binding frames and DDG edges
# chain across records, so two trace partitions cannot build their DDG
# fragments independently without losing cross-boundary bindings.  The
# parallel fused engine therefore splits every record callback into
#
# * an **extract** step (the ``_extract_*`` helpers below) that performs all
#   work requiring the *live* variable map at the record's own execution
#   time — memory-operand and argument-address resolution — and packs the
#   outcome into a compact *frontier event* tuple, and
# * an **apply** step (``DependencyPass._apply_*``) that performs all work
#   touching the sequential state (reg-var/reg-reg maps, binding stacks,
#   the DDG).
#
# The serial pass runs extract→apply inline per record; a parallel worker
# runs only extract (:class:`DependencyFrontierPass`), shipping its
# partition's event stream back to the coordinator, which replays the
# streams in partition order through :meth:`DependencyPass.merge` — so a
# register associated in partition N and consumed in partition N+1 stitches
# exactly as the serial walk would have bound it, by construction.
#
# Event tags (first element of every event tuple); the remaining elements
# are exactly the positional arguments of the matching ``_apply_*`` method.
_EV_LOAD = 0
_EV_STORE = 1
_EV_GEP = 2
_EV_FORWARDING = 3
_EV_ARITHMETIC = 4
_EV_CALL_FLAT = 5
_EV_CALL_BOUND = 6
_EV_ACTIVATION = 7
_EV_RETURN = 8

#: A *memref* is a pre-resolved memory operand: ``(key, name)`` when the
#: live map attributed the address to a variable, the bare operand name
#: (``str``) when it did not — the apply step then consults the binding
#: stacks — and ``None`` when the record had no memory operand at all.
#:
#: A register operand's *fallback* (forwarding operands, call arguments) is
#: only consulted when the reg-var lookup misses, so its two shapes differ
#: in *when* they resolve: the serial inline path carries the raw address
#: (``int``) and resolves lazily on a miss — exactly the pre-refactor cost
#: profile — while a frontier event must carry the ``(key, name)`` tuple
#: resolved eagerly in the worker, because by replay time the map no longer
#: reflects the record's execution state.


#: raw opcode -> engine record kind, as a dense positional LUT for the
#: columnar fast paths (segments only carry known non-scope opcodes, so
#: indexing is safe without a range check).
_COLUMN_KIND = [KIND_OTHER] * (max(KIND_BY_OPCODE) + 1)
for _op, _kind in KIND_BY_OPCODE.items():
    _COLUMN_KIND[_op] = _kind
del _op, _kind
_COLUMN_KIND = tuple(_COLUMN_KIND)

#: the same LUT as a numpy gather table, for the segment preselection
_KIND_NP = None if _np is None else _np.array(_COLUMN_KIND, dtype=_np.int8)


def _segment_tuples(block, start: int, stop: int):
    """Pre-gathered dispatch tuples for segment ``[start, stop)``.

    Yields ``(row, kind, lo_slot, hi_slot, has_result, function_id,
    packed)`` for every row the dependency walk dispatches on
    (``KIND_OTHER`` rows are dropped up front), where ``packed`` is the
    ``function_id << 32 | result_name_id`` register-cache key.  The
    header fields of a whole segment gather in a handful of vector ops
    instead of five list indexings per row.  ``packed`` is garbage when
    the row has no result slot — every consumer checks ``has_result``
    before using it.
    """
    np_opcode = block.np_opcode
    op_name_np = block.np_op_name_id
    if (_KIND_NP is None or np_opcode is None or op_name_np is None
            or block.np_op_start is None or not op_name_np.size):
        return _row_tuples(block, range(start, stop))
    kinds_all = _KIND_NP[np_opcode[start:stop]]
    rows = _np.flatnonzero(kinds_all != KIND_OTHER)
    kinds = kinds_all[rows]
    if start:
        rows += start
    op_start = block.np_op_start
    lo = op_start[rows]
    hi = op_start[rows + 1]
    res = block.np_has_result[rows]
    fid = block.np_function_id[rows]
    packed = (fid << 32) | op_name_np[hi - 1]
    return zip(rows.tolist(), kinds.tolist(), lo.tolist(), hi.tolist(),
               res.tolist(), fid.tolist(), packed.tolist())


def _row_tuples(block, rows):
    """Scalar sibling of :func:`_segment_tuples`: explicit row lists
    (engine prefilter survivors) and blocks without the numpy mirrors."""
    kind_of = _COLUMN_KIND
    opcode = block.opcode
    op_start = block.op_start
    has_result = block.has_result
    function_id = block.function_id
    op_name_id = block.op_name_id
    for row in rows:
        kind = kind_of[opcode[row]]
        if kind == KIND_OTHER:
            continue
        lo = op_start[row]
        hi = op_start[row + 1]
        fid = function_id[row]
        packed = (fid << 32 | op_name_id[hi - 1]) if hi > lo else fid << 32
        yield row, kind, lo, hi, has_result[row], fid, packed

#: memo-miss sentinel (``None`` is a valid resolution outcome)
_MISS = object()


def _memref_of(varmap: VariableMap, operand: TraceOperand):
    """Resolve ``operand`` against the live map at execution time."""
    info = varmap.resolve(operand.address)
    if info is not None:
        return (info.key, info.name)
    return operand.name


def _resolve_address(varmap: VariableMap,
                     address: Optional[int]) -> Optional[Tuple[str, str]]:
    """Eagerly resolve a fallback address to ``(key, name)`` (or None)."""
    if address is None:
        return None
    info = varmap.resolve(address)
    if info is None:
        return None
    return (info.key, info.name)


def _extract_load(varmap: VariableMap, record: TraceRecord):
    operand = record.memory_operand()
    if operand is None or record.result is None:
        return None
    return (record.function, record.result.name, _memref_of(varmap, operand))


def _extract_store(varmap: VariableMap, record: TraceRecord):
    if len(record.operands) < 2:
        return None
    value_operand, memory_operand = record.operands[0], record.operands[1]
    return (record.function, value_operand.is_register, value_operand.name,
            _memref_of(varmap, memory_operand))


def _extract_gep(varmap: VariableMap, record: TraceRecord):
    if record.result is None:
        return None
    operand = record.memory_operand()
    memref = _memref_of(varmap, operand) if operand is not None else None
    index_registers = [op.name for op in record.operands[1:] if op.is_register]
    return (record.function, record.result.name, memref, index_registers)


def _extract_forwarding(record: TraceRecord):
    """Fallbacks are raw addresses here — lazy for the serial path; the
    frontier pass eagerly resolves them before shipping the event."""
    if record.result is None:
        return None
    operands = [(op.name, op.address)
                for op in record.operands if op.is_register]
    return (record.function, record.result.name, operands)


def _extract_arithmetic(record: TraceRecord):
    if record.result is None:
        return None
    return (record.function, record.result.name,
            [op.name for op in record.operands if op.is_register])


def _extract_call(record: TraceRecord):
    """Returns ``(tag, parts)`` — calls come in two shapes (Fig. 6a/6b).

    As with :func:`_extract_forwarding`, argument fallbacks stay raw
    addresses; the frontier pass pre-resolves them."""
    params = record.parameter_operands()
    args = record.argument_operands()
    if not params:
        result_name = record.result.name if record.result is not None else None
        return _EV_CALL_FLAT, (
            record.function, result_name,
            [op.name for op in args if op.is_register], record.callee)
    entries = []
    for position, param in enumerate(params):
        arg_info = None
        if position < len(args):
            arg = args[position]
            if arg.is_register:
                arg_info = (arg.name, arg.address)
        entries.append((param.name, arg_info))
    return _EV_CALL_BOUND, (record.function, record.callee, entries)


@dataclass
class DependencyResult:
    """Artefacts produced by the dependency analysis."""

    complete_ddg: DDG
    reg_var_map: RegVarMap
    reg_reg_map: RegRegMap
    variable_map: VariableMap
    #: last binding observed per (callee, parameter) — reporting view of the
    #: per-activation binding stacks the analysis maintains internally
    param_bindings: Dict[Tuple[str, str], str] = field(default_factory=dict)
    #: number of records actually inspected (the "selective" subset)
    inspected_records: int = 0


class DependencyPass(AnalysisPass):
    """Engine pass building the complete DDG over the inside region.

    MLI node kinds come from one of two sources:

    * ``mli_keys`` — a fixed, already-matched set (the legacy wrapper path,
      where pre-processing ran first);
    * ``before_vars``/``inside_vars`` — the *live* collection dicts of a
      :class:`~repro.core.preprocessing.MLICollectionPass` registered ahead
      of this pass on the same engine.  A node is provisionally MLI when its
      key is in both sets at creation time; :meth:`finalize` re-labels the
      nodes whose membership was only proven later in the stream.
    """

    def __init__(self, varmap: VariableMap,
                 mli_keys: Optional[Set[str]] = None,
                 before_vars: Optional[Dict[str, VariableInfo]] = None,
                 inside_vars: Optional[Dict[str, VariableInfo]] = None) -> None:
        self.varmap = varmap
        self._mli_keys = mli_keys
        self._before_vars = before_vars if before_vars is not None else {}
        self._inside_vars = inside_vars if inside_vars is not None else {}
        self.ddg = DDG()
        self.reg_var = RegVarMap()
        self.reg_reg = RegRegMap()
        self.param_bindings: Dict[Tuple[str, str], str] = {}
        #: callee name -> stack of per-activation {parameter: source key}
        #: frames; the innermost frame is the one lookups must see, so
        #: recursion cannot clobber an outer activation's bindings.  A frame
        #: entry may be None: the parameter is explicitly *unbound* for that
        #: activation (non-register argument) and must not leak a previous
        #: activation's binding.
        self._binding_stacks: Dict[str, List[Dict[str, Optional[str]]]] = {}
        #: (callee, frame) computed from the latest Call record; consumed by
        #: :meth:`on_activation` when the engine proves a traced body follows.
        self._pending_frame: Optional[Tuple[str, Dict[str, Optional[str]]]] = None
        self._inspected = 0
        #: columnar caches — ``function id << 32 | name id`` -> register
        #: node key, guarded by the owning string table's identity, plus
        #: the variable node keys already created through the columnar path
        self._col_strings_key: Optional[int] = None
        self._col_reg_keys: Dict[int, str] = {}
        self._col_var_seen: Set[str] = set()
        #: edges already inserted through the columnar path — ``add_edge``
        #: is idempotent set insertion and nothing removes edges during the
        #: walk, so eliding the repeat call is exact
        self._col_edge_seen: Set[Tuple[str, str]] = set()
        #: reg-reg links already inserted the same way (packed result key
        #: followed by the operand name ids; :meth:`RegRegMap.link` is
        #: likewise add-only set insertion) — id-based, so it resets with
        #: the string table alongside ``_col_reg_keys``
        self._col_link_seen: Set[Tuple[int, ...]] = set()
        #: address -> resolution memo, valid while the live map's revision
        #: is unchanged (scope records between segments may mutate it; the
        #: revision check at segment entry catches exactly those)
        self._col_memo: Dict = {}
        self._col_memo_rev = -1

    # ------------------------------------------------------------------ #
    # Node helpers
    # ------------------------------------------------------------------ #
    def _register_key(self, function: str, register: str) -> str:
        return f"{function}%{register}"

    def _register_node(self, function: str, register: str) -> str:
        key = self._register_key(function, register)
        self.ddg.add_node(key, NodeKind.REGISTER, label=f"{function}:%{register}")
        return key

    def _is_mli(self, key: str) -> bool:
        if self._mli_keys is not None:
            return key in self._mli_keys
        return key in self._before_vars and key in self._inside_vars

    def _variable_node(self, key: str, name: str) -> str:
        kind = NodeKind.MLI if self._is_mli(key) else NodeKind.LOCAL
        self.ddg.add_node(key, kind, label=name)
        return key

    def _lookup_binding(self, function: str, name: str) -> Optional[str]:
        """The innermost activation's binding for parameter ``name``.

        If the innermost frame knows the parameter, its value is
        authoritative — including an explicit None (unbound for this
        activation; a previous activation's binding must not leak in).  The
        flat last-binding view is only consulted when no frame knows the
        name, e.g. for regions that begin mid-activation where no ``Call``
        record was seen for the open frame.
        """
        frames = self._binding_stacks.get(function)
        if frames and name in frames[-1]:
            return frames[-1][name]
        return self.param_bindings.get((function, name))

    def _resolve_memref(self, function: str, memref) -> Optional[str]:
        """Turn a pre-resolved memref into a variable node key.

        A ``(key, name)`` memref resolved by address at execution time
        becomes a variable node; a bare operand name falls back to the
        binding stacks (apply-time state) and then to a function-local named
        vertex, exactly the order the legacy ``_resolve_memory`` used.
        """
        if memref.__class__ is tuple:
            return self._variable_node(*memref)
        binding = self._lookup_binding(function, memref)
        if binding is not None:
            return binding
        if memref:
            key = f"{function}:{memref}"
            self.ddg.add_node(key, NodeKind.LOCAL, label=memref)
            return key
        return None

    # ------------------------------------------------------------------ #
    # Engine callbacks (extract at execution time, apply immediately)
    # ------------------------------------------------------------------ #
    def on_alloca(self, record: TraceRecord, region: int) -> None:
        # Registration happens in the engine (shared map); the pass only
        # keeps the "selective iteration" statistic faithful.
        if region == REGION_INSIDE:
            self._inspected += 1

    def on_load(self, record: TraceRecord, region: int) -> None:
        if region != REGION_INSIDE:
            return
        self._inspected += 1
        parts = _extract_load(self.varmap, record)
        if parts is not None:
            self._apply_load(*parts)

    def on_store(self, record: TraceRecord, region: int) -> None:
        if region != REGION_INSIDE:
            return
        self._inspected += 1
        parts = _extract_store(self.varmap, record)
        if parts is not None:
            self._apply_store(*parts)

    def on_gep(self, record: TraceRecord, region: int) -> None:
        if region != REGION_INSIDE:
            return
        self._inspected += 1
        parts = _extract_gep(self.varmap, record)
        if parts is not None:
            self._apply_gep(*parts)

    def on_forwarding(self, record: TraceRecord, region: int) -> None:
        """BitCast and numeric casts forward their single operand."""
        if region != REGION_INSIDE:
            return
        self._inspected += 1
        parts = _extract_forwarding(record)
        if parts is not None:
            self._apply_forwarding(*parts)

    def on_arithmetic(self, record: TraceRecord, region: int) -> None:
        if region != REGION_INSIDE:
            return
        self._inspected += 1
        parts = _extract_arithmetic(record)
        if parts is not None:
            self._apply_arithmetic(*parts)

    def on_call(self, record: TraceRecord, region: int) -> None:
        if region != REGION_INSIDE:
            return
        self._inspected += 1
        tag, parts = _extract_call(record)
        if tag == _EV_CALL_FLAT:
            self._apply_call_flat(*parts)
        else:
            self._apply_call_bound(*parts)

    def on_activation(self, callee: str, region: int) -> None:
        if region != REGION_INSIDE:
            return
        self._apply_activation(callee)

    def on_return(self, record: TraceRecord, region: int) -> None:
        # Returns carry no data dependencies (not counted as "inspected"),
        # but they close the callee's activation: the engine has already
        # retired its Allocas; pop its parameter-binding frame here.
        if region != REGION_INSIDE:
            return
        self._apply_return(record.function)

    # ------------------------------------------------------------------ #
    # Columnar fast path
    # ------------------------------------------------------------------ #
    def consume_columns(self, block, start: int, stop: int, region: int,
                        rows: Optional[List[int]] = None) -> None:
        """Inline extract+apply straight off the columns.

        Semantically the per-record callbacks verbatim — same gate order,
        same state mutations — with three costs lifted out of the row loop:

        * register node keys cache per ``(function id, name id)`` pair
          (key strings and ``add_node`` probes are paid once per register,
          not once per record; node creation is first-wins, so skipping the
          re-add is exact);
        * variable nodes already created through this path skip the re-add
          the same way (``finalize`` settles MLI kinds regardless);
        * address resolutions memoize for the duration of the segment —
          scope records break segments, so the live map cannot change under
          the memo.
        """
        if region != REGION_INSIDE:
            return
        strings = block.strings
        op_flags = block.op_flags
        op_name_id = block.op_name_id
        op_address = block.op_address
        resolve = self.varmap.resolve
        add_node = self.ddg.add_node
        add_edge = self.ddg.add_edge
        reg_entries = self.reg_var.entries
        reg_lookup = self.reg_var.lookup
        reg_link = self.reg_reg.link
        variable_node = self._variable_node
        resolve_memref = self._resolve_memref
        if self._col_strings_key != id(strings):
            self._col_strings_key = id(strings)
            self._col_reg_keys = {}
            self._col_link_seen = set()
        reg_keys = self._col_reg_keys
        reg_keys_get = reg_keys.get
        var_seen = self._col_var_seen
        var_seen_add = var_seen.add
        edge_seen = self._col_edge_seen
        edge_seen_add = edge_seen.add
        link_seen = self._col_link_seen
        link_seen_add = link_seen.add
        register_kind = NodeKind.REGISTER
        memo = self._col_memo
        if self._col_memo_rev != self.varmap.revision:
            self._col_memo_rev = self.varmap.revision
            memo.clear()
        memo_get = memo.get
        miss = _MISS
        inspected = 0
        if rows is None:
            # Whole-segment pre-gather: header fields and the packed
            # register key arrive as ready tuples (KIND_OTHER rows already
            # dropped), built in a few vector ops.
            tuples = _segment_tuples(block, start, stop)
        else:
            tuples = _row_tuples(block, rows)
        for row, kind, lo_slot, hi_slot, result, fid, packed in tuples:
            inspected += 1
            n_ops = hi_slot - lo_slot - result
            if kind == KIND_LOAD:
                if not n_ops or not result:
                    continue
                function = strings[fid]
                address = op_address[lo_slot]
                info = memo_get(address, miss)
                if info is miss:
                    info = resolve(address)
                    memo[address] = info
                if info is not None:
                    var_key = info.key
                    if var_key not in var_seen:
                        variable_node(var_key, info.name)
                        var_seen_add(var_key)
                else:
                    var_key = resolve_memref(
                        function, strings[op_name_id[lo_slot]])
                    if var_key is None:
                        continue
                result_id = packed & 0xFFFFFFFF
                result_name = strings[result_id]
                result_key = reg_keys_get(packed)
                if result_key is None:
                    result_key = f"{function}%{result_name}"
                    add_node(result_key, register_kind,
                             f"{function}:%{result_name}")
                    reg_keys[packed] = result_key
                edge = (var_key, result_key)
                if edge not in edge_seen:
                    add_edge(var_key, result_key)
                    edge_seen_add(edge)
                reg_entries[(function, result_name)] = var_key
            elif kind == KIND_ARITHMETIC:
                if not result:
                    continue
                function = strings[fid]
                result_id = packed & 0xFFFFFFFF
                result_key = reg_keys_get(packed)
                if result_key is None:
                    result_name = strings[result_id]
                    result_key = f"{function}%{result_name}"
                    add_node(result_key, register_kind,
                             f"{function}:%{result_name}")
                    reg_keys[packed] = result_key
                input_ids = []
                for slot in range(lo_slot, lo_slot + n_ops):
                    if op_flags[slot] & 1:
                        name_id = op_name_id[slot]
                        packed_in = fid << 32 | name_id
                        reg_key = reg_keys_get(packed_in)
                        if reg_key is None:
                            name = strings[name_id]
                            reg_key = f"{function}%{name}"
                            add_node(reg_key, register_kind,
                                     f"{function}:%{name}")
                            reg_keys[packed_in] = reg_key
                        edge = (reg_key, result_key)
                        if edge not in edge_seen:
                            add_edge(reg_key, result_key)
                            edge_seen_add(edge)
                        input_ids.append(name_id)
                link_key = (packed, *input_ids)
                if link_key not in link_seen:
                    reg_link(function, strings[result_id],
                             [strings[i] for i in input_ids])
                    link_seen_add(link_key)
            elif kind == KIND_STORE:
                if n_ops < 2:
                    continue
                function = strings[fid]
                address = op_address[lo_slot + 1]
                info = memo_get(address, miss)
                if info is miss:
                    info = resolve(address)
                    memo[address] = info
                if info is not None:
                    var_key = info.key
                    if var_key not in var_seen:
                        variable_node(var_key, info.name)
                        var_seen_add(var_key)
                else:
                    var_key = resolve_memref(
                        function, strings[op_name_id[lo_slot + 1]])
                    if var_key is None:
                        continue
                if op_flags[lo_slot] & 1:
                    value_id = op_name_id[lo_slot]
                    value_name = strings[value_id]
                    packed = fid << 32 | value_id
                    reg_key = reg_keys_get(packed)
                    if reg_key is None:
                        reg_key = f"{function}%{value_name}"
                        add_node(reg_key, register_kind,
                                 f"{function}:%{value_name}")
                        reg_keys[packed] = reg_key
                    edge = (reg_key, var_key)
                    if edge not in edge_seen:
                        add_edge(reg_key, var_key)
                        edge_seen_add(edge)
                    reg_entries[(function, value_name)] = var_key
                else:
                    value_name = strings[op_name_id[lo_slot]]
                    if value_name:
                        binding = self._lookup_binding(function, value_name)
                        if binding is not None:
                            edge = (binding, var_key)
                            if edge not in edge_seen:
                                add_edge(binding, var_key)
                                edge_seen_add(edge)
            elif kind == KIND_GEP:
                if not result:
                    continue
                function = strings[fid]
                result_id = packed & 0xFFFFFFFF
                result_name = strings[result_id]
                result_key = reg_keys_get(packed)
                if result_key is None:
                    result_key = f"{function}%{result_name}"
                    add_node(result_key, register_kind,
                             f"{function}:%{result_name}")
                    reg_keys[packed] = result_key
                if n_ops:
                    address = op_address[lo_slot]
                    info = memo_get(address, miss)
                    if info is miss:
                        info = resolve(address)
                        memo[address] = info
                    if info is not None:
                        var_key = info.key
                        if var_key not in var_seen:
                            variable_node(var_key, info.name)
                            var_seen_add(var_key)
                    else:
                        var_key = resolve_memref(
                            function, strings[op_name_id[lo_slot]])
                    if var_key is not None:
                        reg_entries[(function, result_name)] = var_key
                for slot in range(lo_slot + 1, lo_slot + n_ops):
                    if op_flags[slot] & 1:
                        name_id = op_name_id[slot]
                        packed_in = fid << 32 | name_id
                        reg_key = reg_keys_get(packed_in)
                        if reg_key is None:
                            name = strings[name_id]
                            reg_key = f"{function}%{name}"
                            add_node(reg_key, register_kind,
                                     f"{function}:%{name}")
                            reg_keys[packed_in] = reg_key
                        edge = (reg_key, result_key)
                        if edge not in edge_seen:
                            add_edge(reg_key, result_key)
                            edge_seen_add(edge)
            elif kind == KIND_FORWARDING:
                if not result:
                    continue
                function = strings[fid]
                result_id = packed & 0xFFFFFFFF
                result_name = strings[result_id]
                result_key = reg_keys_get(packed)
                if result_key is None:
                    result_key = f"{function}%{result_name}"
                    add_node(result_key, register_kind,
                             f"{function}:%{result_name}")
                    reg_keys[packed] = result_key
                for slot in range(lo_slot, lo_slot + n_ops):
                    if op_flags[slot] & 1:
                        name_id = op_name_id[slot]
                        name = strings[name_id]
                        packed_in = fid << 32 | name_id
                        reg_key = reg_keys_get(packed_in)
                        if reg_key is None:
                            reg_key = f"{function}%{name}"
                            add_node(reg_key, register_kind,
                                     f"{function}:%{name}")
                            reg_keys[packed_in] = reg_key
                        edge = (reg_key, result_key)
                        if edge not in edge_seen:
                            add_edge(reg_key, result_key)
                            edge_seen_add(edge)
                        source = reg_lookup(function, name)
                        if source is None:
                            fallback = op_address[slot]
                            if fallback is not None:
                                info = memo_get(fallback, miss)
                                if info is miss:
                                    info = resolve(fallback)
                                    memo[fallback] = info
                                if info is not None:
                                    source = info.key
                                    if source not in var_seen:
                                        variable_node(source, info.name)
                                        var_seen_add(source)
                        if source is not None:
                            reg_entries[(function, result_name)] = source
                        link_key = (packed, name_id)
                        if link_key not in link_seen:
                            reg_link(function, result_name, [name])
                            link_seen_add(link_key)
        self._inspected += inspected

    # ------------------------------------------------------------------ #
    # Apply: the sequential half (reg maps, binding stacks, the DDG)
    # ------------------------------------------------------------------ #
    def _fallback_node(self, fallback) -> Optional[str]:
        """Materialize a register operand's by-address fallback.

        ``fallback`` is a pre-resolved ``(key, name)`` tuple in replayed
        frontier events, or a raw address (``int``) on the serial inline
        path — resolved here, i.e. lazily on a reg-var lookup miss and at
        the record's execution time (replay never reaches the address
        branch, so the coordinator's post-scan map is never consulted).
        """
        if fallback.__class__ is tuple:
            return self._variable_node(*fallback)
        info = self.varmap.resolve(fallback)
        if info is None:
            return None
        return self._variable_node(info.key, info.name)

    def _apply_load(self, function: str, result_name: str, memref) -> None:
        var_key = self._resolve_memref(function, memref)
        if var_key is None:
            return
        reg_key = self._register_node(function, result_name)
        self.ddg.add_edge(var_key, reg_key)
        self.reg_var.associate(function, result_name, var_key)

    def _apply_store(self, function: str, value_is_register: bool,
                     value_name: str, memref) -> None:
        var_key = self._resolve_memref(function, memref)
        if var_key is None:
            return
        if value_is_register:
            reg_key = self._register_node(function, value_name)
            self.ddg.add_edge(reg_key, var_key)
            self.reg_var.associate(function, value_name, var_key)
        elif value_name:
            # Storing a named non-register value: this is the callee spilling
            # a formal parameter into its stack slot — connect it to the
            # argument recorded by the preceding Call instruction (Fig. 6b).
            binding = self._lookup_binding(function, value_name)
            if binding is not None:
                self.ddg.add_edge(binding, var_key)

    def _apply_gep(self, function: str, result_name: str, memref,
                   index_registers: List[str]) -> None:
        result_key = self._register_node(function, result_name)
        if memref is not None:
            var_key = self._resolve_memref(function, memref)
            if var_key is not None:
                # Pointer assignment: the result register now stands for
                # the variable (recursive source search of Sec. IV-A).
                self.reg_var.associate(function, result_name, var_key)
        # Index registers feeding the address computation also flow into
        # the access (e.g. the DDG edge from `it` into `a` in Fig. 5c).
        for name in index_registers:
            reg_key = self._register_node(function, name)
            self.ddg.add_edge(reg_key, result_key)

    def _apply_forwarding(self, function: str, result_name: str,
                          operands: List[Tuple[str, object]]) -> None:
        result_key = self._register_node(function, result_name)
        for name, fallback in operands:
            reg_key = self._register_node(function, name)
            self.ddg.add_edge(reg_key, result_key)
            source = self.reg_var.lookup(function, name)
            if source is None and fallback is not None:
                # The register holds a pointer (e.g. the result of an array
                # Alloca being decayed) — attribute it by address.
                source = self._fallback_node(fallback)
            if source is not None:
                self.reg_var.associate(function, result_name, source)
            self.reg_reg.link(function, result_name, [name])

    def _apply_arithmetic(self, function: str, result_name: str,
                          input_registers: List[str]) -> None:
        result_key = self._register_node(function, result_name)
        for name in input_registers:
            reg_key = self._register_node(function, name)
            self.ddg.add_edge(reg_key, result_key)
        self.reg_reg.link(function, result_name, input_registers)

    def _apply_call_flat(self, function: str, result_name: Optional[str],
                         arg_registers: List[str], callee: str) -> None:
        # Single-Call form (builtin / external, Fig. 6a): behave like an
        # arithmetic instruction over the argument registers.  It may still
        # be a zero-parameter *user* function whose body follows — the
        # engine's activation detection on the next record decides.
        if result_name is not None:
            result_key = self._register_node(function, result_name)
            for name in arg_registers:
                reg_key = self._register_node(function, name)
                self.ddg.add_edge(reg_key, result_key)
            self.reg_reg.link(function, result_name, arg_registers)
        if callee:
            self._pending_frame = (callee, {})

    def _apply_call_bound(self, function: str, callee: str,
                          entries: List[Tuple[str, Optional[Tuple]]]) -> None:
        # Call followed by its body (Fig. 6b): record the argument/
        # parameter correlation so the callee's parameter accesses connect
        # back to the caller's variables.  Every parameter gets a frame
        # entry — None marks it explicitly unbound for this activation.
        frame: Dict[str, Optional[str]] = {}
        for param_name, arg_info in entries:
            source_key: Optional[str] = None
            if arg_info is not None:
                arg_name, fallback = arg_info
                source_key = self.reg_var.lookup(function, arg_name)
                if source_key is None and fallback is not None:
                    source_key = self._fallback_node(fallback)
                if source_key is None:
                    source_key = self._register_node(function, arg_name)
            frame[param_name] = source_key
            if source_key is not None:
                self.param_bindings[(callee, param_name)] = source_key
        if callee:
            self._pending_frame = (callee, frame)

    def _apply_activation(self, callee: str) -> None:
        pending = self._pending_frame
        self._pending_frame = None
        frame: Dict[str, Optional[str]] = {}
        if pending is not None and pending[0] == callee:
            frame = pending[1]
        self._binding_stacks.setdefault(callee, []).append(frame)

    def _apply_return(self, function: str) -> None:
        frames = self._binding_stacks.get(function)
        if frames:
            frames.pop()

    # ------------------------------------------------------------------ #
    # Parallel stitching
    # ------------------------------------------------------------------ #
    def merge(self, frontier: "DependencyFrontierPass") -> None:
        """Stitch one partition's frontier event stream into this pass.

        Call once per partition, in partition order: the events replay
        through the same ``_apply_*`` handlers the serial walk uses, so the
        sequential state (register associations, binding frames, DDG
        last-writer structure) crosses each partition boundary exactly as
        it would have in a single serial walk.
        """
        handlers = (self._apply_load, self._apply_store, self._apply_gep,
                    self._apply_forwarding, self._apply_arithmetic,
                    self._apply_call_flat, self._apply_call_bound,
                    self._apply_activation, self._apply_return)
        for event in frontier.events:
            handlers[event[0]](*event[1:])
        self._inspected += frontier.inspected

    def finalize(self) -> None:
        if self._mli_keys is None:
            # A node created before its owner's MLI membership was proven
            # (the qualifying loop access came later) carries a stale LOCAL
            # kind; the final before/inside intersection is now known.
            for key in self._before_vars:
                if key in self._inside_vars:
                    self.ddg.set_node_kind(key, NodeKind.MLI)

    def result(self) -> DependencyResult:
        return DependencyResult(
            complete_ddg=self.ddg,
            reg_var_map=self.reg_var,
            reg_reg_map=self.reg_reg,
            variable_map=self.varmap,
            param_bindings=self.param_bindings,
            inspected_records=self._inspected,
        )


class DependencyFrontierPass(AnalysisPass):
    """Worker-side half of the parallel dependency analysis.

    Performs, at each record's own execution time, exactly the address
    resolution :class:`DependencyPass` would perform against the shared
    live (snapshot-seeded) map, and records the outcome as a compact
    *frontier event* — everything the sequential stitch needs and nothing
    it can recompute.  The sequential state (reg-var/reg-reg maps,
    parameter-binding stacks, the DDG itself) is deliberately **not**
    touched here: lookups into it are deferred to
    :meth:`DependencyPass.merge`, which replays the partitions' event
    streams in stream order.

    Args:
        varmap: the engine's shared live map (the partition seed).
    """

    def __init__(self, varmap: VariableMap) -> None:
        self.varmap = varmap
        self.events: List[Tuple] = []
        self.inspected = 0

    def on_alloca(self, record: TraceRecord, region: int) -> None:
        if region == REGION_INSIDE:
            self.inspected += 1

    def on_load(self, record: TraceRecord, region: int) -> None:
        if region != REGION_INSIDE:
            return
        self.inspected += 1
        parts = _extract_load(self.varmap, record)
        if parts is not None:
            self.events.append((_EV_LOAD,) + parts)

    def on_store(self, record: TraceRecord, region: int) -> None:
        if region != REGION_INSIDE:
            return
        self.inspected += 1
        parts = _extract_store(self.varmap, record)
        if parts is not None:
            self.events.append((_EV_STORE,) + parts)

    def on_gep(self, record: TraceRecord, region: int) -> None:
        if region != REGION_INSIDE:
            return
        self.inspected += 1
        parts = _extract_gep(self.varmap, record)
        if parts is not None:
            self.events.append((_EV_GEP,) + parts)

    def on_forwarding(self, record: TraceRecord, region: int) -> None:
        if region != REGION_INSIDE:
            return
        self.inspected += 1
        parts = _extract_forwarding(record)
        if parts is not None:
            function, result_name, operands = parts
            # Fallback addresses must resolve NOW (execution time) — by
            # replay time the map no longer matches this record's state.
            operands = [(name, _resolve_address(self.varmap, address))
                        for name, address in operands]
            self.events.append(
                (_EV_FORWARDING, function, result_name, operands))

    def on_arithmetic(self, record: TraceRecord, region: int) -> None:
        if region != REGION_INSIDE:
            return
        self.inspected += 1
        parts = _extract_arithmetic(record)
        if parts is not None:
            self.events.append((_EV_ARITHMETIC,) + parts)

    def on_call(self, record: TraceRecord, region: int) -> None:
        if region != REGION_INSIDE:
            return
        self.inspected += 1
        tag, parts = _extract_call(record)
        if tag == _EV_CALL_BOUND:
            function, callee, entries = parts
            entries = [
                (param_name,
                 None if arg_info is None
                 else (arg_info[0], _resolve_address(self.varmap,
                                                     arg_info[1])))
                for param_name, arg_info in entries]
            parts = (function, callee, entries)
        self.events.append((tag,) + parts)

    def consume_columns(self, block, start: int, stop: int, region: int,
                        rows: Optional[List[int]] = None) -> None:
        """Columnar extract for workers: same events, straight off columns.

        Mirrors :meth:`DependencyPass.consume_columns`, except the outcome
        is appended as frontier events — with register fallbacks resolved
        eagerly, as every frontier event requires.
        """
        if region != REGION_INSIDE:
            return
        strings = block.strings
        opcode = block.opcode
        function_id = block.function_id
        op_start = block.op_start
        has_result = block.has_result
        op_flags = block.op_flags
        op_name_id = block.op_name_id
        op_address = block.op_address
        varmap = self.varmap
        resolve = varmap.resolve
        kind_of = _COLUMN_KIND
        append = self.events.append
        inspected = 0
        for row in (range(start, stop) if rows is None else rows):
            kind = kind_of[opcode[row]]
            if kind == KIND_OTHER:
                continue
            lo_slot = op_start[row]
            hi_slot = op_start[row + 1]
            result = has_result[row]
            n_ops = hi_slot - lo_slot - result
            inspected += 1
            if kind == KIND_ARITHMETIC:
                if not result:
                    continue
                append((_EV_ARITHMETIC,
                        strings[function_id[row]],
                        strings[op_name_id[hi_slot - 1]],
                        [strings[op_name_id[slot]]
                         for slot in range(lo_slot, lo_slot + n_ops)
                         if op_flags[slot] & 1]))
            elif kind == KIND_LOAD:
                if not n_ops or not result:
                    continue
                info = resolve(op_address[lo_slot])
                append((_EV_LOAD,
                        strings[function_id[row]],
                        strings[op_name_id[hi_slot - 1]],
                        (info.key, info.name) if info is not None
                        else strings[op_name_id[lo_slot]]))
            elif kind == KIND_STORE:
                if n_ops < 2:
                    continue
                info = resolve(op_address[lo_slot + 1])
                append((_EV_STORE,
                        strings[function_id[row]],
                        op_flags[lo_slot] & 1,
                        strings[op_name_id[lo_slot]],
                        (info.key, info.name) if info is not None
                        else strings[op_name_id[lo_slot + 1]]))
            elif kind == KIND_GEP:
                if not result:
                    continue
                memref = None
                if n_ops:
                    info = resolve(op_address[lo_slot])
                    memref = ((info.key, info.name) if info is not None
                              else strings[op_name_id[lo_slot]])
                append((_EV_GEP,
                        strings[function_id[row]],
                        strings[op_name_id[hi_slot - 1]],
                        memref,
                        [strings[op_name_id[slot]]
                         for slot in range(lo_slot + 1, lo_slot + n_ops)
                         if op_flags[slot] & 1]))
            elif kind == KIND_FORWARDING:
                if not result:
                    continue
                append((_EV_FORWARDING,
                        strings[function_id[row]],
                        strings[op_name_id[hi_slot - 1]],
                        [(strings[op_name_id[slot]],
                          _resolve_address(varmap, op_address[slot]))
                         for slot in range(lo_slot, lo_slot + n_ops)
                         if op_flags[slot] & 1]))
        self.inspected += inspected

    def on_activation(self, callee: str, region: int) -> None:
        if region != REGION_INSIDE:
            return
        self.events.append((_EV_ACTIVATION, callee))

    def on_return(self, record: TraceRecord, region: int) -> None:
        if region != REGION_INSIDE:
            return
        self.events.append((_EV_RETURN, record.function))


class DependencyAnalysis:
    """Build the complete DDG for the main computation loop.

    Legacy-shaped wrapper over :class:`DependencyPass`: takes a completed
    pre-processing result and drives the pass (through an
    :class:`~repro.core.engine.AnalysisEngine` for its dispatch table,
    variable-map maintenance and scope tracking) over the already-partitioned
    inside region.  The fused pipeline registers the pass on the shared
    engine instead and never materializes the region.
    """

    def __init__(self, preprocessing: PreprocessingResult) -> None:
        self.preprocessing = preprocessing
        self.regions: TraceRegions = preprocessing.regions
        self.mli_keys: Set[str] = set(preprocessing.mli_keys())
        self.mli_by_key: Dict[str, MLIVariable] = {
            var.key: var for var in preprocessing.mli_variables}

        # The dependency analysis needs to attribute addresses to *any*
        # variable, including locals of called functions; start from the
        # pre-processing map (globals + main-loop-function allocations) and
        # let the engine extend it on the fly with the Allocas seen inside
        # the loop.
        self.varmap = VariableMap()
        for info in preprocessing.variable_map:
            self.varmap.add(info)

    def run(self) -> DependencyResult:
        dep_pass = DependencyPass(self.varmap, mli_keys=self.mli_keys)
        engine = AnalysisEngine(self.regions.spec, [dep_pass],
                                variable_map=self.varmap)
        engine.run_region(self.regions.inside, REGION_INSIDE)
        engine.finalize()
        return dep_pass.result()
