"""Data dependency analysis: building the complete DDG.

Implements Sec. IV-B of the paper.  The analysis *selectively* inspects the
dynamic instructions of the main computation loop's dynamic extent and
maintains:

* the **reg-var map** — updated by ``Load``/``Store`` and by the pointer
  assignments of ``GetElementPtr``/``BitCast`` (paper Table I);
* the **reg-reg map** — updated by arithmetic instructions and by
  single-``Call`` records (the Fig. 6a case);
* the **complete DDG** — variable and register vertices with "depends on"
  edges; variable vertices gain their incoming edges when ``Store``
  instructions terminate computations, and function calls with a traced body
  (the Fig. 6b case) connect arguments to parameters through the recorded
  argument/parameter correlation.

Every memory access is attributed to its owning variable by address-interval
lookup (:class:`repro.core.varmap.VariableMap`), which is how the analysis
distinguishes MLI variables from same-named locals (Challenge 2) and follows
data through pointer parameters.

The walk itself is hosted by :class:`repro.core.engine.AnalysisEngine`:
:class:`DependencyPass` subscribes to the record kinds that carry data
dependencies and to the engine's call/ret scope events, which keep the
attribution honest across calls:

* the engine opens an allocation scope when a traced ``Call``'s body follows
  and retires the callee's Allocas on its ``Ret`` — a dead frame can never
  absorb later accesses to reused stack addresses;
* argument/parameter correlations are kept on a **per-callee binding
  stack** (pushed on activation, popped on return), so recursive or
  repeated calls to the same callee cannot clobber each other's bindings.

In the fused pipeline the pass shares the engine's live map with every other
stage and decides MLI node kinds from the live before/inside variable sets
(finalized after the walk, since a variable's qualifying access can come
later in the stream).  One deliberate refinement over the legacy walk: when
the main loop lives in a *called* function, the shared map can attribute a
pointer access to the live ancestor frame's actual variable, where the
legacy map (globals + loop-function + region allocations only) fell back to
a parameter-binding or named-local vertex — the MLI/critical classification
is unaffected (MLI candidacy is filtered to globals and loop-function
locals either way), only the labeling of non-MLI intermediate DDG vertices
is more precise.  :class:`DependencyAnalysis` is the legacy-shaped
wrapper — pre-processing result in, :class:`DependencyResult` out — used by
the multi-pass pipeline and the unit tests; it drives the same pass over an
already-partitioned inside region.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.ddg import DDG, NodeKind
from repro.core.engine import REGION_INSIDE, AnalysisEngine, AnalysisPass
from repro.core.preprocessing import MLIVariable, PreprocessingResult, TraceRegions
from repro.core.regmaps import RegRegMap, RegVarMap
from repro.core.varmap import VariableInfo, VariableMap
from repro.trace.records import TraceOperand, TraceRecord


@dataclass
class DependencyResult:
    """Artefacts produced by the dependency analysis."""

    complete_ddg: DDG
    reg_var_map: RegVarMap
    reg_reg_map: RegRegMap
    variable_map: VariableMap
    #: last binding observed per (callee, parameter) — reporting view of the
    #: per-activation binding stacks the analysis maintains internally
    param_bindings: Dict[Tuple[str, str], str] = field(default_factory=dict)
    #: number of records actually inspected (the "selective" subset)
    inspected_records: int = 0


class DependencyPass(AnalysisPass):
    """Engine pass building the complete DDG over the inside region.

    MLI node kinds come from one of two sources:

    * ``mli_keys`` — a fixed, already-matched set (the legacy wrapper path,
      where pre-processing ran first);
    * ``before_vars``/``inside_vars`` — the *live* collection dicts of a
      :class:`~repro.core.preprocessing.MLICollectionPass` registered ahead
      of this pass on the same engine.  A node is provisionally MLI when its
      key is in both sets at creation time; :meth:`finalize` re-labels the
      nodes whose membership was only proven later in the stream.
    """

    def __init__(self, varmap: VariableMap,
                 mli_keys: Optional[Set[str]] = None,
                 before_vars: Optional[Dict[str, VariableInfo]] = None,
                 inside_vars: Optional[Dict[str, VariableInfo]] = None) -> None:
        self.varmap = varmap
        self._mli_keys = mli_keys
        self._before_vars = before_vars if before_vars is not None else {}
        self._inside_vars = inside_vars if inside_vars is not None else {}
        self.ddg = DDG()
        self.reg_var = RegVarMap()
        self.reg_reg = RegRegMap()
        self.param_bindings: Dict[Tuple[str, str], str] = {}
        #: callee name -> stack of per-activation {parameter: source key}
        #: frames; the innermost frame is the one lookups must see, so
        #: recursion cannot clobber an outer activation's bindings.  A frame
        #: entry may be None: the parameter is explicitly *unbound* for that
        #: activation (non-register argument) and must not leak a previous
        #: activation's binding.
        self._binding_stacks: Dict[str, List[Dict[str, Optional[str]]]] = {}
        #: (callee, frame) computed from the latest Call record; consumed by
        #: :meth:`on_activation` when the engine proves a traced body follows.
        self._pending_frame: Optional[Tuple[str, Dict[str, Optional[str]]]] = None
        self._inspected = 0

    # ------------------------------------------------------------------ #
    # Node helpers
    # ------------------------------------------------------------------ #
    def _register_key(self, function: str, register: str) -> str:
        return f"{function}%{register}"

    def _register_node(self, function: str, register: str) -> str:
        key = self._register_key(function, register)
        self.ddg.add_node(key, NodeKind.REGISTER, label=f"{function}:%{register}")
        return key

    def _is_mli(self, key: str) -> bool:
        if self._mli_keys is not None:
            return key in self._mli_keys
        return key in self._before_vars and key in self._inside_vars

    def _variable_node(self, info: VariableInfo) -> str:
        kind = NodeKind.MLI if self._is_mli(info.key) else NodeKind.LOCAL
        self.ddg.add_node(info.key, kind, label=info.name)
        return info.key

    def _lookup_binding(self, function: str, name: str) -> Optional[str]:
        """The innermost activation's binding for parameter ``name``.

        If the innermost frame knows the parameter, its value is
        authoritative — including an explicit None (unbound for this
        activation; a previous activation's binding must not leak in).  The
        flat last-binding view is only consulted when no frame knows the
        name, e.g. for regions that begin mid-activation where no ``Call``
        record was seen for the open frame.
        """
        frames = self._binding_stacks.get(function)
        if frames and name in frames[-1]:
            return frames[-1][name]
        return self.param_bindings.get((function, name))

    def _resolve_memory(self, record: TraceRecord,
                        operand: TraceOperand) -> Optional[str]:
        """Resolve a memory operand to a variable node key."""
        info = self.varmap.resolve(operand.address)
        if info is not None:
            return self._variable_node(info)
        binding = self._lookup_binding(record.function, operand.name)
        if binding is not None:
            return binding
        if operand.name:
            key = f"{record.function}:{operand.name}"
            self.ddg.add_node(key, NodeKind.LOCAL, label=operand.name)
            return key
        return None

    # ------------------------------------------------------------------ #
    # Engine callbacks
    # ------------------------------------------------------------------ #
    def on_alloca(self, record: TraceRecord, region: int) -> None:
        # Registration happens in the engine (shared map); the pass only
        # keeps the "selective iteration" statistic faithful.
        if region == REGION_INSIDE:
            self._inspected += 1

    def on_load(self, record: TraceRecord, region: int) -> None:
        if region != REGION_INSIDE:
            return
        self._inspected += 1
        operand = record.memory_operand()
        if operand is None or record.result is None:
            return
        var_key = self._resolve_memory(record, operand)
        if var_key is None:
            return
        reg_key = self._register_node(record.function, record.result.name)
        self.ddg.add_edge(var_key, reg_key)
        self.reg_var.associate(record.function, record.result.name, var_key)

    def on_store(self, record: TraceRecord, region: int) -> None:
        if region != REGION_INSIDE:
            return
        self._inspected += 1
        if len(record.operands) < 2:
            return
        value_operand, memory_operand = record.operands[0], record.operands[1]
        var_key = self._resolve_memory(record, memory_operand)
        if var_key is None:
            return
        if value_operand.is_register:
            reg_key = self._register_node(record.function, value_operand.name)
            self.ddg.add_edge(reg_key, var_key)
            self.reg_var.associate(record.function, value_operand.name, var_key)
        elif value_operand.name:
            # Storing a named non-register value: this is the callee spilling
            # a formal parameter into its stack slot — connect it to the
            # argument recorded by the preceding Call instruction (Fig. 6b).
            binding = self._lookup_binding(record.function, value_operand.name)
            if binding is not None:
                self.ddg.add_edge(binding, var_key)

    def on_gep(self, record: TraceRecord, region: int) -> None:
        if region != REGION_INSIDE:
            return
        self._inspected += 1
        if record.result is None:
            return
        result_key = self._register_node(record.function, record.result.name)
        operand = record.memory_operand()
        if operand is not None:
            var_key = self._resolve_memory(record, operand)
            if var_key is not None:
                # Pointer assignment: the result register now stands for
                # the variable (recursive source search of Sec. IV-A).
                self.reg_var.associate(record.function, record.result.name,
                                       var_key)
        # Index registers feeding the address computation also flow into
        # the access (e.g. the DDG edge from `it` into `a` in Fig. 5c).
        for operand in record.operands[1:]:
            if operand.is_register:
                reg_key = self._register_node(record.function, operand.name)
                self.ddg.add_edge(reg_key, result_key)

    def on_forwarding(self, record: TraceRecord, region: int) -> None:
        """BitCast and numeric casts forward their single operand."""
        if region != REGION_INSIDE:
            return
        self._inspected += 1
        if record.result is None:
            return
        result_key = self._register_node(record.function, record.result.name)
        for operand in record.operands:
            if operand.is_register:
                reg_key = self._register_node(record.function, operand.name)
                self.ddg.add_edge(reg_key, result_key)
                source = self.reg_var.lookup(record.function, operand.name)
                if source is None and operand.address is not None:
                    # The register holds a pointer (e.g. the result of an
                    # array Alloca being decayed) — resolve it by address.
                    info = self.varmap.resolve(operand.address)
                    if info is not None:
                        source = self._variable_node(info)
                if source is not None:
                    self.reg_var.associate(record.function, record.result.name,
                                           source)
                self.reg_reg.link(record.function, record.result.name,
                                  [operand.name])

    def on_arithmetic(self, record: TraceRecord, region: int) -> None:
        if region != REGION_INSIDE:
            return
        self._inspected += 1
        if record.result is None:
            return
        result_key = self._register_node(record.function, record.result.name)
        input_registers: List[str] = []
        for operand in record.operands:
            if operand.is_register:
                input_registers.append(operand.name)
                reg_key = self._register_node(record.function, operand.name)
                self.ddg.add_edge(reg_key, result_key)
        self.reg_reg.link(record.function, record.result.name, input_registers)

    def on_call(self, record: TraceRecord, region: int) -> None:
        if region != REGION_INSIDE:
            return
        self._inspected += 1
        params = record.parameter_operands()
        args = record.argument_operands()
        frame: Dict[str, Optional[str]] = {}
        if not params:
            # Single-Call form (builtin / external, Fig. 6a): behave like an
            # arithmetic instruction over the argument registers.  It may
            # still be a zero-parameter *user* function whose body follows —
            # the engine's activation detection on the next record decides.
            if record.result is not None:
                result_key = self._register_node(record.function,
                                                 record.result.name)
                input_registers = []
                for operand in args:
                    if operand.is_register:
                        input_registers.append(operand.name)
                        reg_key = self._register_node(record.function,
                                                      operand.name)
                        self.ddg.add_edge(reg_key, result_key)
                self.reg_reg.link(record.function, record.result.name,
                                  input_registers)
        else:
            # Call followed by its body (Fig. 6b): record the argument/
            # parameter correlation so the callee's parameter accesses
            # connect back to the caller's variables.  Every parameter gets a
            # frame entry — None marks it explicitly unbound for this
            # activation.
            for position, param in enumerate(params):
                source_key: Optional[str] = None
                if position < len(args):
                    arg = args[position]
                    if arg.is_register:
                        source_key = self.reg_var.lookup(record.function,
                                                         arg.name)
                        if source_key is None and arg.address is not None:
                            info = self.varmap.resolve(arg.address)
                            if info is not None:
                                source_key = self._variable_node(info)
                        if source_key is None:
                            source_key = self._register_node(record.function,
                                                             arg.name)
                frame[param.name] = source_key
                if source_key is not None:
                    self.param_bindings[(record.callee, param.name)] = source_key
        if record.callee:
            self._pending_frame = (record.callee, frame)

    def on_activation(self, callee: str, region: int) -> None:
        if region != REGION_INSIDE:
            return
        pending = self._pending_frame
        self._pending_frame = None
        frame: Dict[str, Optional[str]] = {}
        if pending is not None and pending[0] == callee:
            frame = pending[1]
        self._binding_stacks.setdefault(callee, []).append(frame)

    def on_return(self, record: TraceRecord, region: int) -> None:
        # Returns carry no data dependencies (not counted as "inspected"),
        # but they close the callee's activation: the engine has already
        # retired its Allocas; pop its parameter-binding frame here.
        if region != REGION_INSIDE:
            return
        frames = self._binding_stacks.get(record.function)
        if frames:
            frames.pop()

    def finalize(self) -> None:
        if self._mli_keys is None:
            # A node created before its owner's MLI membership was proven
            # (the qualifying loop access came later) carries a stale LOCAL
            # kind; the final before/inside intersection is now known.
            for key in self._before_vars:
                if key in self._inside_vars:
                    self.ddg.set_node_kind(key, NodeKind.MLI)

    def result(self) -> DependencyResult:
        return DependencyResult(
            complete_ddg=self.ddg,
            reg_var_map=self.reg_var,
            reg_reg_map=self.reg_reg,
            variable_map=self.varmap,
            param_bindings=self.param_bindings,
            inspected_records=self._inspected,
        )


class DependencyAnalysis:
    """Build the complete DDG for the main computation loop.

    Legacy-shaped wrapper over :class:`DependencyPass`: takes a completed
    pre-processing result and drives the pass (through an
    :class:`~repro.core.engine.AnalysisEngine` for its dispatch table,
    variable-map maintenance and scope tracking) over the already-partitioned
    inside region.  The fused pipeline registers the pass on the shared
    engine instead and never materializes the region.
    """

    def __init__(self, preprocessing: PreprocessingResult) -> None:
        self.preprocessing = preprocessing
        self.regions: TraceRegions = preprocessing.regions
        self.mli_keys: Set[str] = set(preprocessing.mli_keys())
        self.mli_by_key: Dict[str, MLIVariable] = {
            var.key: var for var in preprocessing.mli_variables}

        # The dependency analysis needs to attribute addresses to *any*
        # variable, including locals of called functions; start from the
        # pre-processing map (globals + main-loop-function allocations) and
        # let the engine extend it on the fly with the Allocas seen inside
        # the loop.
        self.varmap = VariableMap()
        for info in preprocessing.variable_map:
            self.varmap.add(info)

    def run(self) -> DependencyResult:
        dep_pass = DependencyPass(self.varmap, mli_keys=self.mli_keys)
        engine = AnalysisEngine(self.regions.spec, [dep_pass],
                                variable_map=self.varmap)
        engine.run_region(self.regions.inside, REGION_INSIDE)
        engine.finalize()
        return dep_pass.result()
