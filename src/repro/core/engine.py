"""Single-pass analysis engine: one streamed walk drives every stage.

The multi-pass pipeline iterated the loop region at least four times —
MLI identification over the whole trace, the dependency analysis over
``regions.inside``, R/W extraction over ``inside`` and ``after``, and the
dynamic-induction fallback over ``inside`` again — and in streaming mode
every iteration re-streamed (for text traces: fully re-parsed) the file.
Worse, the post-hoc stages resolved addresses against the dependency
analysis' *end-of-region* :class:`~repro.core.varmap.VariableMap`, so stack
reuse inside the loop could misattribute early accesses (see
``tests/test_engine_fused.py::TestTemporalAttribution``).

:class:`AnalysisEngine` replaces that with one event-driven walk:

* records are streamed **exactly once** (from an in-memory list or a lazy
  file iterator — the engine never indexes, only iterates);
* the main loop's dynamic extent is tagged on the fly from the
  :class:`~repro.core.config.MainLoopSpec`: records seen after the latest
  loop-line record are buffered until a later loop-line record proves they
  lie inside the extent (they are then flushed, in stream order, as
  ``inside``) or the stream ends (they are the ``after`` region).  Memory is
  bounded by the longest stretch of records between two loop-line records
  plus the after region — never by the trace length;
* one **live, scoped** variable map is shared by every pass: the engine
  registers every ``Alloca`` the moment it executes, opens an allocation
  scope when a traced ``Call``'s body follows, and retires the callee's
  allocations on its ``Ret`` — so each access resolves against the
  allocation state *at its own execution time*, which fixes the temporal
  misattribution by construction;
* registered :class:`AnalysisPass` objects receive callbacks per record
  kind (load/store/GEP/forwarding/arithmetic/call/ret/alloca), per region
  transition, and per call/ret scope event.  Dispatch goes through a
  precomputed ``opcode -> (engine action, pass callbacks)`` table, so the
  hot loop never constructs an :class:`~repro.ir.opcodes.Opcode` enum and
  never calls a pass that did not subscribe to the kind.

Pass execution order is registration order; the fused pipeline registers
the MLI-collection pass first so that later passes observe the variable
sets updated through the current record.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.config import MainLoopSpec
from repro.core.errors import AnalysisError
from repro.core.varmap import VariableMap
from repro.ir.opcodes import (
    ARITHMETIC_OPCODE_VALUES,
    FORWARDING_OPCODE_VALUES,
    Opcode,
)
from repro.trace.records import GlobalSymbol, TraceRecord

try:  # numpy accelerates the columnar walk's masks; plain loops otherwise
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the list fallbacks
    _np = None

# --------------------------------------------------------------------------- #
# Regions and record kinds (plain ints: compared millions of times)
# --------------------------------------------------------------------------- #
REGION_BEFORE = 0
REGION_INSIDE = 1
REGION_AFTER = 2

REGION_NAMES = {REGION_BEFORE: "before", REGION_INSIDE: "inside",
                REGION_AFTER: "after"}

KIND_OTHER = 0
KIND_ALLOCA = 1
KIND_LOAD = 2
KIND_STORE = 3
KIND_GEP = 4
KIND_FORWARDING = 5
KIND_ARITHMETIC = 6
KIND_CALL = 7
KIND_RET = 8

#: kind -> name of the AnalysisPass callback that handles it
_KIND_CALLBACKS = {
    KIND_ALLOCA: "on_alloca",
    KIND_LOAD: "on_load",
    KIND_STORE: "on_store",
    KIND_GEP: "on_gep",
    KIND_FORWARDING: "on_forwarding",
    KIND_ARITHMETIC: "on_arithmetic",
    KIND_CALL: "on_call",
    KIND_RET: "on_ret",
    KIND_OTHER: "on_other",
}


def _kind_of(opcode: int) -> int:
    if opcode == Opcode.LOAD:
        return KIND_LOAD
    if opcode == Opcode.STORE:
        return KIND_STORE
    if opcode == Opcode.GETELEMENTPTR:
        return KIND_GEP
    if opcode == Opcode.ALLOCA:
        return KIND_ALLOCA
    if opcode in FORWARDING_OPCODE_VALUES:
        return KIND_FORWARDING
    if opcode in ARITHMETIC_OPCODE_VALUES:
        return KIND_ARITHMETIC
    if opcode == Opcode.CALL:
        return KIND_CALL
    if opcode == Opcode.RET:
        return KIND_RET
    return KIND_OTHER


#: raw opcode value -> record kind, for every known opcode
KIND_BY_OPCODE: Dict[int, int] = {int(op): _kind_of(int(op)) for op in Opcode}

_MAX_OPCODE = max(KIND_BY_OPCODE)

#: Opcodes the columnar walk materializes individually (engine actions
#: mutate the shared map / scope structure mid-stream, so these break the
#: vectorizable segments); every *other* known opcode stays columnar.
_SCOPE_KINDS = (KIND_RET, KIND_ALLOCA, KIND_CALL)
_NONBREAK_OPCODES = frozenset(
    op for op, kind in KIND_BY_OPCODE.items() if kind not in _SCOPE_KINDS)

#: Mirrors ``repro.static.prefilter._POINTER_OPERAND`` (the static layer
#: imports this module, so the engine cannot import it back): opcode ->
#: index of the pointer operand a structured prefilter's tables decide on.
_COLUMNAR_POINTER_OPERAND = {
    int(Opcode.LOAD): 0, int(Opcode.STORE): 1, int(Opcode.GETELEMENTPTR): 0}
_GEP_OPCODE = int(Opcode.GETELEMENTPTR)

if _np is not None:
    # True where the columnar walk must leave vectorized dispatch: scope
    # opcodes and every in-range value that is not a known opcode (the
    # walk clips out-of-range values onto index 0, which is unknown too).
    _NP_BREAK_LUT = _np.ones(_MAX_OPCODE + 1, dtype=bool)
    for _op in _NONBREAK_OPCODES:
        _NP_BREAK_LUT[_op] = False
    del _op


class AnalysisPass:
    """Base class for engine passes; override only the callbacks you need.

    The engine inspects which ``on_*`` methods a subclass overrides and
    builds its dispatch table from exactly those, so an un-overridden kind
    costs nothing in the hot loop.  Every record callback receives the
    record and the region constant (``REGION_BEFORE`` / ``REGION_INSIDE`` /
    ``REGION_AFTER``) it executes in.
    """

    # -- record-kind callbacks ----------------------------------------- #
    def on_alloca(self, record: TraceRecord, region: int) -> None:
        """An ``Alloca`` record (already registered on the shared map)."""

    def on_load(self, record: TraceRecord, region: int) -> None:
        """A ``Load`` record."""

    def on_store(self, record: TraceRecord, region: int) -> None:
        """A ``Store`` record."""

    def on_gep(self, record: TraceRecord, region: int) -> None:
        """A ``GetElementPtr`` record."""

    def on_forwarding(self, record: TraceRecord, region: int) -> None:
        """A ``BitCast`` / numeric-cast record (pointer/value forwarding)."""

    def on_arithmetic(self, record: TraceRecord, region: int) -> None:
        """An arithmetic record (paper Table I's instruction family)."""

    def on_call(self, record: TraceRecord, region: int) -> None:
        """A ``Call`` record (scope opening, if any, follows on the next
        record — see :meth:`on_activation`)."""

    def on_ret(self, record: TraceRecord, region: int) -> None:
        """A ``Ret`` record, as a plain record kind; scope closing is
        reported through :meth:`on_return`."""

    def on_other(self, record: TraceRecord, region: int) -> None:
        """Any record kind without a dedicated callback (Br, ICmp, ...)."""

    # -- columnar fast path -------------------------------------------- #
    def consume_columns(self, block, start: int, stop: int, region: int,
                        rows: Optional[List[int]] = None) -> None:
        """Optional columnar fast path over one decoded block segment.

        When overridden, the engine's columnar walk calls this **instead
        of** the per-record kind callbacks for segment rows: consume rows
        ``[start, stop)`` of ``block`` (a
        :class:`~repro.trace.columnar.ColumnarBlock`) — or exactly ``rows``
        (ascending, within that range) when the static prefilter narrowed
        the segment — with semantics identical to receiving the per-record
        callbacks for the same records in row order.  Segments never
        contain ``Alloca`` / ``Call`` / ``Ret`` records (those carry engine
        actions and always arrive through the per-record callbacks), all
        rows of a segment share ``region``, and the shared variable map is
        constant across the segment.  A pass that does not override this
        keeps its exact per-record behavior via lazily materialized
        records.
        """

    # -- structural callbacks ------------------------------------------ #
    def on_region_change(self, region: int) -> None:
        """The walk crossed into ``region``.  Fires exactly three times per
        :meth:`AnalysisEngine.run`: ``REGION_BEFORE`` at the start of the
        walk, ``REGION_INSIDE`` at the first loop-line record, and
        ``REGION_AFTER`` once the stream ends (even when the after region
        is empty)."""

    def on_activation(self, callee: str, region: int) -> None:
        """A traced ``Call``'s body follows: the engine just opened an
        allocation scope for ``callee`` (fires before the first callee
        record's kind callback)."""

    def on_return(self, record: TraceRecord, region: int) -> None:
        """``record`` is the ``Ret`` closing the innermost activation of
        its function; the engine has already retired the scope."""

    def finalize(self) -> None:
        """The walk ended; compute any derived results."""


@dataclass
class EngineWalk:
    """Shape of the walked trace: the loop extent and region sizes."""

    record_count: int
    first_index: int
    last_index: int
    first_loop_dyn_id: int
    last_loop_dyn_id: int

    @property
    def before_count(self) -> int:
        return self.first_index

    @property
    def inside_count(self) -> int:
        return self.last_index - self.first_index + 1

    @property
    def after_count(self) -> int:
        return self.record_count - self.last_index - 1


class _SizedRegion:
    """Sized stand-in for a region that was streamed, not materialized."""

    __slots__ = ("count",)

    def __init__(self, count: int) -> None:
        self.count = count

    def __len__(self) -> int:
        return self.count

    def __iter__(self):
        raise TypeError(
            "this region was consumed by the single-pass analysis engine "
            "and is not re-iterable; run with analysis_engine='multipass' "
            "if a stage needs to re-walk a region")


class RegionCounts:
    """A :class:`~repro.core.preprocessing.TraceRegions`-shaped object
    carrying only sizes — what the fused pipeline's report needs.  The
    record streams behind it were consumed exactly once by the engine."""

    def __init__(self, spec: MainLoopSpec, walk: EngineWalk) -> None:
        self.spec = spec
        self.before = _SizedRegion(walk.before_count)
        self.inside = _SizedRegion(walk.inside_count)
        self.after = _SizedRegion(walk.after_count)
        self.first_loop_dyn_id = walk.first_loop_dyn_id
        self.last_loop_dyn_id = walk.last_loop_dyn_id

    @property
    def total_records(self) -> int:
        return len(self.before) + len(self.inside) + len(self.after)


# engine-internal actions baked into the dispatch plan
_ACT_NONE = 0
_ACT_ALLOCA = 1
_ACT_CALL = 2
_ACT_RET = 3
_ACT_UNKNOWN = 4

_ACTION_BY_KIND = {KIND_ALLOCA: _ACT_ALLOCA, KIND_CALL: _ACT_CALL,
                   KIND_RET: _ACT_RET}


class AnalysisEngine:
    """Drive registered passes over a record stream in one pass.

    The engine owns the shared live variable map: it registers every
    ``Alloca`` (all functions) at execution time and mirrors the trace's
    call/return structure as allocation scopes — a ``Call`` opens a scope
    only once the next record proves a traced body follows (zero-parameter
    user functions included; builtins, whose next record stays in the
    caller, open nothing), and the matching ``Ret`` retires it.
    """

    def __init__(self, spec: MainLoopSpec, passes: Sequence[AnalysisPass],
                 variable_map: Optional[VariableMap] = None,
                 prefilter: Optional[object] = None) -> None:
        self.spec = spec
        self.passes: List[AnalysisPass] = list(passes)
        self.varmap = variable_map if variable_map is not None else VariableMap()
        # Optional static skip filter (repro.static.prefilter.StaticPrefilter,
        # duck-typed to avoid a core -> static import cycle).  Consulted only
        # for records *outside* the loop region, and only valid for pass sets
        # that — like the fused pipeline's — gate non-memory kinds to the
        # inside region.  Engine-side actions (Alloca registration, scope
        # open/close) always run; only pass dispatch is skipped.  Filters
        # exposing ``make_skip_plan()`` split the decision into a
        # membership-testable always-skip opcode set plus a closure for the
        # rest — the per-record Python call is what the split avoids.
        self._prefilter_obj = prefilter
        if prefilter is None:
            self._prefilter_skip = None
            self._prefilter_always: frozenset = frozenset()
        else:
            make_plan = getattr(prefilter, "make_skip_plan", None)
            if make_plan is not None:
                self._prefilter_always, self._prefilter_skip = make_plan()
            else:
                self._prefilter_always = frozenset()
                self._prefilter_skip = prefilter.should_skip
        self.skipped_records = 0
        #: per-trace columnar state; built on the first block walked
        self._col_tables_key: Optional[int] = None
        self._col_id_of: Dict[str, int] = {}
        self._pending_activation: Optional[str] = None
        self._activation_callbacks = tuple(
            p.on_activation for p in self.passes
            if type(p).on_activation is not AnalysisPass.on_activation)
        self._region_callbacks = tuple(
            p.on_region_change for p in self.passes
            if type(p).on_region_change is not AnalysisPass.on_region_change)
        self._return_callbacks = tuple(
            p.on_return for p in self.passes
            if type(p).on_return is not AnalysisPass.on_return)
        # opcode -> (engine action, subscribed pass callbacks); one dict
        # probe per record replaces per-record Opcode(...) construction and
        # per-pass "do I care?" tests.
        self._plan: Dict[int, Tuple[int, Tuple[Callable, ...]]] = {}
        for raw, kind in KIND_BY_OPCODE.items():
            method_name = _KIND_CALLBACKS[kind]
            callbacks = tuple(
                getattr(p, method_name) for p in self.passes
                if getattr(type(p), method_name)
                is not getattr(AnalysisPass, method_name))
            self._plan[raw] = (_ACTION_BY_KIND.get(kind, _ACT_NONE), callbacks)
        # Opcodes outside the enum mean a corrupt or foreign trace; the old
        # per-record Opcode(...) construction failed loudly on them and the
        # dispatch table must too (only such records pay this branch).
        self._default_plan: Tuple[int, Tuple[Callable, ...]] = (_ACT_UNKNOWN, ())
        # Columnar dispatch plan: per pass, its consume_columns override (or
        # None) plus a per-opcode map of its own record callbacks for the
        # materializing fallback.
        self._col_passes: List[Tuple[Optional[Callable],
                                     Optional[Callable]]] = []
        for p in self.passes:
            consume = (p.consume_columns
                       if type(p).consume_columns
                       is not AnalysisPass.consume_columns else None)
            fallback: Dict[int, Callable] = {}
            if consume is None:
                for raw, kind in KIND_BY_OPCODE.items():
                    method_name = _KIND_CALLBACKS[kind]
                    if (getattr(type(p), method_name)
                            is not getattr(AnalysisPass, method_name)):
                        fallback[raw] = getattr(p, method_name)
            self._col_passes.append(
                (consume, fallback.get if fallback else None))

    # ------------------------------------------------------------------ #
    # Setup
    # ------------------------------------------------------------------ #
    def add_globals(self, globals_: Iterable[GlobalSymbol]) -> None:
        """Register the trace preamble's module globals on the shared map.

        Call once before :meth:`run` — globals must be resolvable from the
        first record on.

        Args:
            globals_: the preamble's :class:`GlobalSymbol` entries.
        """
        for symbol in globals_:
            self.varmap.add_global_symbol(symbol)

    # ------------------------------------------------------------------ #
    # Driving
    # ------------------------------------------------------------------ #
    def run(self, records: Iterable[TraceRecord]) -> EngineWalk:
        """Walk ``records`` once, tagging regions on the fly.

        Args:
            records: the full trace's records in stream order — a list or a
                lazy file-backed iterator; consumed exactly once.

        Returns:
            The :class:`EngineWalk` shape of the trace (loop extent, region
            sizes).  Passes are finalized before returning.

        Raises:
            AnalysisError: when no record falls inside the main computation
                loop range, or a record carries an unknown opcode.
        """
        spec = self.spec
        spec_function = spec.function
        start_line = spec.start_line
        end_line = spec.end_line
        process = self._process
        pending: List[TraceRecord] = []
        pending_append = pending.append
        first_index: Optional[int] = None
        last_index = -1
        first_dyn = last_dyn = 0
        index = -1
        # Prefilter fast path for the before region: records whose opcode
        # carries no engine action resolve against precomputed sets without
        # entering :meth:`_process` at all (its pending-activation check,
        # plan probe and attribute loads cost more than the skip decision).
        # Any record that might open an activation (the one right after a
        # Call) or run an action takes the full path; skip-count semantics
        # match _process exactly — only records with subscribed callbacks
        # count.
        fast_on = self._prefilter_skip is not None
        if fast_on:
            mem_skip = self._prefilter_skip
            always = self._prefilter_always
            fast_count = frozenset(
                op for op, (act, cbs) in self._plan.items()
                if act == _ACT_NONE and cbs and op in always)
            fast_noop = frozenset(
                op for op, (act, cbs) in self._plan.items()
                if act == _ACT_NONE and not cbs)
            mem_callbacks_get = {
                op: cbs for op, (act, cbs) in self._plan.items()
                if act == _ACT_NONE and cbs and op not in always}.get
        fast_skipped = 0
        self._emit_region(REGION_BEFORE)
        for index, record in enumerate(records):
            if (record.function == spec_function
                    and start_line <= record.line <= end_line):
                if first_index is None:
                    first_index = index
                    first_dyn = record.dyn_id
                    self._emit_region(REGION_INSIDE)
                if pending:
                    # Everything buffered since the previous loop-line record
                    # is now proven to lie inside the loop's dynamic extent:
                    # flush it, in stream order, before this record.
                    for buffered in pending:
                        process(buffered, REGION_INSIDE)
                    pending.clear()
                last_index = index
                last_dyn = record.dyn_id
                process(record, REGION_INSIDE)
            elif first_index is None:
                if fast_on and self._pending_activation is None:
                    opcode = record.opcode
                    if opcode in fast_count:
                        fast_skipped += 1
                        continue
                    if opcode in fast_noop:
                        continue
                    callbacks = mem_callbacks_get(opcode)
                    if callbacks is not None:
                        if mem_skip(record, REGION_BEFORE):
                            fast_skipped += 1
                        else:
                            for callback in callbacks:
                                callback(record, REGION_BEFORE)
                        continue
                process(record, REGION_BEFORE)
            else:
                pending_append(record)
        self.skipped_records += fast_skipped
        if first_index is None:
            raise AnalysisError(
                f"no trace record falls inside the main computation loop "
                f"range {spec.mclr} of function {spec.function!r}")
        # The still-buffered tail is the after region.
        self._emit_region(REGION_AFTER)
        for buffered in pending:
            process(buffered, REGION_AFTER)
        pending.clear()
        for pass_ in self.passes:
            pass_.finalize()
        return EngineWalk(
            record_count=index + 1,
            first_index=first_index,
            last_index=last_index,
            first_loop_dyn_id=first_dyn,
            last_loop_dyn_id=last_dyn,
        )

    def run_indexed(self, records: Iterable[TraceRecord], *,
                    base_index: int, first_index: int, last_index: int,
                    pending_activation: Optional[str] = None) -> int:
        """Walk one partition of the trace with index-derived regions.

        The parallel fused pipeline shards the record stream by global
        record index after a sequential scope scan has located the main
        loop's extent.  Each worker drives its partition through this
        method: ``records`` must yield the records starting at global index
        ``base_index``, and each record's region follows from its global
        index — before ``first_index``, inside ``[first_index,
        last_index]``, after — instead of from on-the-fly loop-line
        detection.  Every engine-side effect (Alloca registration,
        activation opening, scope retirement) still happens at the record's
        own execution time against the (snapshot-seeded) shared map.

        Args:
            records: the partition's records, in stream order.
            base_index: global index of the first yielded record.
            first_index: global index of the first main-loop record.
            last_index: global index of the last main-loop record.
            pending_activation: callee name when the *previous* partition
                ended on a traced ``Call`` whose body may follow — seeds the
                engine's one-record activation lookahead.

        Returns:
            The number of records processed.  Region-change callbacks fire
            for the regions the partition actually crosses (partition-local,
            unlike :meth:`run`'s exactly-three guarantee); passes are *not*
            finalized — the coordinator finalizes after merging.
        """
        self._pending_activation = pending_activation
        process = self._process
        index = base_index
        region: Optional[int] = None
        for record in records:
            if index < first_index:
                record_region = REGION_BEFORE
            elif index <= last_index:
                record_region = REGION_INSIDE
            else:
                record_region = REGION_AFTER
            if record_region != region:
                region = record_region
                self._emit_region(region)
            process(record, record_region)
            index += 1
        return index - base_index

    # ------------------------------------------------------------------ #
    # Columnar driving
    # ------------------------------------------------------------------ #
    def run_columnar(self, blocks) -> EngineWalk:
        """Walk :class:`~repro.trace.columnar.ColumnarBlock`s once.

        The columnar counterpart of :meth:`run`, with identical observable
        semantics (regions, scope tracking, prefilter skip counts, error
        messages): loop-extent detection becomes one vectorized line/
        function mask per block, region-unresolved spans are buffered as
        ``(block, lo, hi)`` triples instead of record lists, and segment
        rows between scope records dispatch through each pass's
        :meth:`AnalysisPass.consume_columns` fast path (or lazily
        materialized records for passes without one).

        Args:
            blocks: the trace's blocks in stream order, e.g. from
                :meth:`~repro.trace.columnar.TraceColumnarReader.iter_blocks`.

        Returns:
            The :class:`EngineWalk` shape; passes are finalized.

        Raises:
            AnalysisError: when no record falls inside the main computation
                loop range, or a record carries an unknown opcode.
        """
        spec = self.spec
        first_index: Optional[int] = None
        last_index = -1
        first_dyn = last_dyn = 0
        total = 0
        #: (block, lo, hi) spans whose region a later loop hit must prove
        pending_spans: List[Tuple] = []
        self._emit_region(REGION_BEFORE)
        for block in blocks:
            self._prepare_columnar(block)
            spec_fid = block.id_of.get(spec.function, -1)
            hits = block.loop_rows(spec_fid, spec.start_line, spec.end_line)
            if not hits:
                if first_index is None:
                    self._walk_span(block, 0, block.count, REGION_BEFORE)
                else:
                    pending_spans.append((block, 0, block.count))
            else:
                first_hit, last_hit = hits[0], hits[-1]
                if first_index is None:
                    self._walk_span(block, 0, first_hit, REGION_BEFORE)
                    first_index = block.base_index + first_hit
                    first_dyn = int(block.dyn_id_col()[first_hit])
                    self._emit_region(REGION_INSIDE)
                    inside_from = first_hit
                else:
                    # Everything buffered since the previous loop hit is now
                    # proven inside the loop's dynamic extent.
                    for span_block, lo, hi in pending_spans:
                        self._walk_span(span_block, lo, hi, REGION_INSIDE)
                    pending_spans.clear()
                    inside_from = 0
                self._walk_span(block, inside_from, last_hit + 1,
                                REGION_INSIDE)
                last_index = block.base_index + last_hit
                last_dyn = int(block.dyn_id_col()[last_hit])
                if last_hit + 1 < block.count:
                    pending_spans.append((block, last_hit + 1, block.count))
            total += block.count
        if first_index is None:
            raise AnalysisError(
                f"no trace record falls inside the main computation loop "
                f"range {spec.mclr} of function {spec.function!r}")
        # The still-buffered tail is the after region.
        self._emit_region(REGION_AFTER)
        for span_block, lo, hi in pending_spans:
            self._walk_span(span_block, lo, hi, REGION_AFTER)
        pending_spans.clear()
        for pass_ in self.passes:
            pass_.finalize()
        return EngineWalk(
            record_count=total,
            first_index=first_index,
            last_index=last_index,
            first_loop_dyn_id=first_dyn,
            last_loop_dyn_id=last_dyn,
        )

    def run_indexed_columnar(self, blocks, *, first_index: int,
                             last_index: int,
                             pending_activation: Optional[str] = None) -> int:
        """Columnar counterpart of :meth:`run_indexed` (parallel workers).

        ``blocks`` must carry their global position in ``base_index`` (the
        columnar reader sets it); each row's region follows from its global
        index against ``[first_index, last_index]``.  Region-change
        callbacks fire partition-locally and passes are not finalized,
        exactly like :meth:`run_indexed`.

        Returns:
            The number of records processed.
        """
        self._pending_activation = pending_activation
        region: Optional[int] = None
        processed = 0
        for block in blocks:
            self._prepare_columnar(block)
            base = block.base_index
            count = block.count
            spans = (
                (0, min(count, first_index - base), REGION_BEFORE),
                (max(0, first_index - base),
                 min(count, last_index + 1 - base), REGION_INSIDE),
                (max(0, last_index + 1 - base), count, REGION_AFTER),
            )
            for lo, hi, span_region in spans:
                if lo >= hi:
                    continue
                if span_region != region:
                    region = span_region
                    self._emit_region(region)
                self._walk_span(block, lo, hi, span_region)
            processed += count
        return processed

    def _prepare_columnar(self, block) -> None:
        """Build the per-trace columnar tables (id-keyed prefilter sets).

        Keyed on the block's string-table identity: one build per trace,
        re-entered for free on every subsequent block.
        """
        key = id(block.strings)
        if self._col_tables_key == key:
            return
        self._col_tables_key = key
        self._col_id_of = block.id_of
        if self._prefilter_skip is None:
            return
        always = self._prefilter_always
        #: opcodes record mode counts as skipped with one membership test
        count_set = frozenset(
            op for op, (act, cbs) in self._plan.items()
            if cbs and op in always)
        #: opcodes needing the per-record memory decision
        mem_set = frozenset(
            op for op, (act, cbs) in self._plan.items()
            if cbs and op not in always)
        self._col_count_set = count_set
        self._col_mem_set = mem_set
        if _np is not None:
            count_lut = _np.zeros(_MAX_OPCODE + 1, dtype=_np.int64)
            mem_lut = _np.zeros(_MAX_OPCODE + 1, dtype=bool)
            for op in count_set:
                count_lut[op] = 1
            for op in mem_set:
                mem_lut[op] = True
            self._col_count_lut = count_lut
            self._col_mem_lut = mem_lut
        # Structured filters (repro.static.prefilter.StaticPrefilter shape)
        # expose their raw tables; translating them to string-table ids
        # turns the per-record decision into two list loads and a frozenset
        # probe.  Anything else falls back to materializing the candidate
        # records for its should_skip closure.
        prefilter = self._prefilter_obj
        registers = getattr(prefilter, "skip_registers", None)
        names = getattr(prefilter, "skip_names", None)
        spec_function = getattr(prefilter, "spec_function", None)
        include = getattr(prefilter, "include_global_accesses_in_calls", None)
        self._col_structured = (
            registers is not None and names is not None
            and spec_function is not None and include is not None
            and mem_set <= _COLUMNAR_POINTER_OPERAND.keys())
        if self._col_structured:
            id_of = block.id_of
            self._col_spec_fid = id_of.get(spec_function, -1)
            self._col_include = include
            self._col_reg_ids = {
                id_of[fn]: frozenset(
                    id_of[n] for n in table if n in id_of)
                for fn, table in registers.items() if fn in id_of}
            self._col_name_ids = {
                id_of[fn]: frozenset(
                    id_of[n] for n in table if n in id_of)
                for fn, table in names.items() if fn in id_of}

    def _break_rows(self, block, lo: int, hi: int) -> List[int]:
        """Rows in ``[lo, hi)`` the walk must materialize individually:
        scope opcodes (engine actions) and unknown opcodes (loud failure
        through :meth:`_process`, identical to record mode)."""
        if _np is not None and block.np_opcode is not None:
            ops = block.np_opcode[lo:hi]
            clipped = _np.clip(ops, 0, _MAX_OPCODE)
            mask = _NP_BREAK_LUT[clipped] | (clipped != ops)
            return (_np.flatnonzero(mask) + lo).tolist()
        opcode = block.opcode
        nonbreak = _NONBREAK_OPCODES
        return [row for row in range(lo, hi) if opcode[row] not in nonbreak]

    def _walk_span(self, block, lo: int, hi: int, region: int) -> None:
        """Walk rows ``[lo, hi)`` of one block in a single known region."""
        if lo >= hi:
            return
        record_of = block.record
        segment_lo = lo
        for row in self._break_rows(block, lo, hi):
            if segment_lo < row:
                self._dispatch_segment(block, segment_lo, row, region)
            self._process(record_of(row), region)
            segment_lo = row + 1
        if segment_lo < hi:
            self._dispatch_segment(block, segment_lo, hi, region)

    def _dispatch_segment(self, block, lo: int, hi: int,
                          region: int) -> None:
        """Dispatch one scope-free segment to every pass, in pass order."""
        # The record after a Call resolves the activation lookahead; inside
        # a segment that can only be the first row (Calls break segments).
        pending = self._pending_activation
        if pending is not None:
            self._pending_activation = None
            if block.function_id[lo] == self._col_id_of.get(pending, -1):
                self.varmap.enter_scope(pending)
                for callback in self._activation_callbacks:
                    callback(pending, region)
        rows: Optional[List[int]] = None
        if self._prefilter_skip is not None and region != REGION_INSIDE:
            rows, skipped = self._columnar_survivors(block, lo, hi, region)
            self.skipped_records += skipped
            if not rows:
                return
        for consume, fallback_get in self._col_passes:
            if consume is not None:
                consume(block, lo, hi, region, rows)
            elif fallback_get is not None:
                record_of = block.record
                opcode = block.opcode
                for row in (range(lo, hi) if rows is None else rows):
                    callback = fallback_get(opcode[row])
                    if callback is not None:
                        callback(record_of(row), region)

    def _columnar_survivors(self, block, lo: int, hi: int,
                            region: int) -> Tuple[List[int], int]:
        """Prefilter one outside-loop segment: (surviving rows, skipped).

        Column translation of record mode's decision: rows whose opcode is
        always-skippable *and* subscribed count as skipped in bulk; memory
        rows go through the structured id-table decision (or the filter's
        own closure over materialized records for non-structured filters);
        rows without any subscribed callback contribute nothing.
        """
        skipped = 0
        if _np is not None and block.np_opcode is not None:
            ops = block.np_opcode[lo:hi]
            skipped = int(self._col_count_lut[ops].sum())
            memory_rows = (_np.flatnonzero(self._col_mem_lut[ops])
                           + lo).tolist()
        else:
            count_set = self._col_count_set
            mem_set = self._col_mem_set
            opcode = block.opcode
            memory_rows = []
            for row in range(lo, hi):
                op = opcode[row]
                if op in count_set:
                    skipped += 1
                elif op in mem_set:
                    memory_rows.append(row)
        if not memory_rows:
            return memory_rows, skipped
        survivors: List[int] = []
        keep = survivors.append
        if not self._col_structured:
            skip = self._prefilter_skip
            record_of = block.record
            for row in memory_rows:
                if skip(record_of(row), region):
                    skipped += 1
                else:
                    keep(row)
            return survivors, skipped
        opcode = block.opcode
        function_id = block.function_id
        op_start = block.op_start
        has_result = block.has_result
        op_flags = block.op_flags
        op_name_id = block.op_name_id
        pointer_operand = _COLUMNAR_POINTER_OPERAND
        spec_fid = self._col_spec_fid
        include = self._col_include
        registers_get = self._col_reg_ids.get
        names_get = self._col_name_ids.get
        before = region == REGION_BEFORE
        gep = _GEP_OPCODE
        for row in memory_rows:
            op = opcode[row]
            fid = function_id[row]
            if before:
                if fid != spec_fid and not include:
                    skipped += 1
                    continue
            elif op == gep:
                skipped += 1
                continue
            operand_index = pointer_operand[op]
            start = op_start[row]
            if op_start[row + 1] - start - has_result[row] > operand_index:
                slot = start + operand_index
                table = (registers_get(fid) if op_flags[slot] & 1
                         else names_get(fid))
                if table is not None and op_name_id[slot] in table:
                    skipped += 1
                    continue
            keep(row)
        return survivors, skipped

    def run_region(self, records: Iterable[TraceRecord],
                   region: int = REGION_INSIDE) -> int:
        """Walk an already-partitioned region (no loop detection).

        Used by the legacy-shaped stage wrappers
        (:class:`~repro.core.dependency.DependencyAnalysis`) that receive a
        pre-partitioned region and only need the engine's dispatch, variable
        map maintenance and scope tracking.  Returns the record count;
        passes are *not* finalized (drive multiple regions, then call
        :meth:`finalize`).
        """
        process = self._process
        count = 0
        for record in records:
            process(record, region)
            count += 1
        return count

    def finalize(self) -> None:
        """Finalize every registered pass (for :meth:`run_region` /
        :meth:`run_indexed` drivers; :meth:`run` finalizes itself)."""
        for pass_ in self.passes:
            pass_.finalize()

    # ------------------------------------------------------------------ #
    # Per-record processing
    # ------------------------------------------------------------------ #
    def _process(self, record: TraceRecord, region: int) -> None:
        pending = self._pending_activation
        if pending is not None:
            self._pending_activation = None
            if record.function == pending:
                # The callee's traced body follows its Call record: open the
                # activation before dispatching this record.
                self.varmap.enter_scope(pending)
                for callback in self._activation_callbacks:
                    callback(pending, region)
        action, callbacks = self._plan.get(record.opcode, self._default_plan)
        if action == _ACT_ALLOCA:
            self.varmap.add_alloca_record(record)
        elif action == _ACT_UNKNOWN:
            raise AnalysisError(
                f"trace record #{record.dyn_id} carries unknown opcode "
                f"{record.opcode} ({record.opcode_name!r}); the trace is "
                f"corrupt or from an unsupported producer")
        elif action == _ACT_RET:
            # Close the innermost activation of the returning function (a
            # function with no open scope — e.g. the main-loop function — is
            # a no-op).
            self.varmap.exit_scope(record.function)
            for callback in self._return_callbacks:
                callback(record, region)
        if callbacks:
            skip = self._prefilter_skip
            if skip is None or region == REGION_INSIDE:
                for callback in callbacks:
                    callback(record, region)
            elif (record.opcode in self._prefilter_always
                    or skip(record, region)):
                self.skipped_records += 1
            else:
                for callback in callbacks:
                    callback(record, region)
        if action == _ACT_CALL and record.callee:
            self._pending_activation = record.callee

    def _emit_region(self, region: int) -> None:
        for callback in self._region_callbacks:
            callback(region)
