"""Errors raised by the AutoCheck analysis pipeline."""

from __future__ import annotations


class AnalysisError(Exception):
    """Raised when the analysis cannot proceed (e.g. no record falls inside
    the declared main-computation-loop source range, or the trace is empty)."""
