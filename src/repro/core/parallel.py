"""Parallel fused analysis over trace partitions.

The fused :class:`~repro.core.engine.AnalysisEngine` (PR 3) walks the trace
exactly once — but strictly serially, so one core does all the work while
the block-indexed binary format's exact partitioning sits idle.  This module
shards that one-pass walk across worker processes with a two-phase design:

**Phase 1 — sequential scope scan** (:func:`scan_scope_snapshots`).  The
only cross-record state a partition worker cannot reconstruct locally is the
live variable map: which allocations exist, which are shadowed, and which
activations are open at the partition's first record.  That state is driven
exclusively by *scope-affecting* records (``Alloca`` / ``Call`` / ``Ret``),
so a cheap sequential pre-scan — reading only each record block's fixed
header via :func:`repro.trace.binio.scan_record_headers`, fully decoding
just the Allocas — replays it, locates the main loop's dynamic extent on the
way, and snapshots the map (:meth:`repro.core.varmap.VariableMap.clone`)
plus the engine's pending-activation lookahead at every partition boundary.

**Phase 2 — parallel fan-out** (:func:`analyze_partition`).  Worker
processes each run the *full* per-record pass work over their record range,
seeded from the boundary snapshot, with regions decided by global record
index (:meth:`~repro.core.engine.AnalysisEngine.run_indexed`).  Every
address therefore resolves against the exact allocation state at its own
execution time — the fused engine's defining guarantee survives sharding.

**Merge** (:func:`run_parallel_fused`).  Per-partition pass states combine
in partition order: the MLI-collection, R/W-extraction and induction-probe
passes merge by order-preserving union/concatenation, and the dependency
pass — whose register associations, binding frames and DDG edges chain
*across* partition boundaries — is stitched by replaying each partition's
pre-resolved frontier event stream (:class:`~repro.core.dependency.
DependencyFrontierPass`) through the serial apply handlers
(:meth:`~repro.core.dependency.DependencyPass.merge`).  The merged report is
identical to the serial fused engine's by construction;
``tests/test_engine_parallel.py`` asserts full-report equality on every
registered benchmark at 1/2/4 workers, including boundaries that fall
mid-scope and mid-loop-iteration.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from functools import partial
from itertools import islice
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import MainLoopSpec
from repro.core.dependency import DependencyFrontierPass, DependencyPass
from repro.core.engine import AnalysisEngine, EngineWalk
from repro.core.errors import AnalysisError
from repro.core.preprocessing import MLICollectionPass
from repro.core.rwdeps import RWExtractionPass
from repro.core.varmap import VariableInfo, VariableMap
from repro.ir.opcodes import Opcode
from repro.trace.binio import (
    BinaryTraceLayout,
    TraceBinaryReader,
    is_binary_trace_file,
    read_layout,
    scan_record_headers,
)
from repro.trace.columnar import TraceColumnarReader
from repro.trace.partition import RecordRange, partition_records
from repro.util.timing import TimingBreakdown

#: Opcodes phase 1 must decode in full (allocation size lives in operands).
_SCAN_FULL_OPCODES = frozenset({int(Opcode.ALLOCA)})


@dataclass
class PartitionSeed:
    """Everything a worker needs to resume the walk at a partition boundary.

    ``varmap`` is the live map exactly as the serial engine would hold it
    just before processing record ``start`` (globals + every earlier
    ``Alloca``, with shadowing and open scopes intact);
    ``pending_activation`` is the engine's one-record lookahead when the
    preceding record was a traced ``Call``.
    """

    index: int
    start: int
    end: int
    varmap: VariableMap
    pending_activation: Optional[str]


@dataclass
class ScopeScan:
    """Output of the sequential phase-1 scope scan."""

    walk: EngineWalk
    #: boundary record index -> (varmap snapshot, pending activation)
    snapshots: Dict[int, Tuple[VariableMap, Optional[str]]]
    #: the map's final state — the complete registration history, used by
    #: the identify stage (latest-by-name lookups) after the merge
    varmap: VariableMap


@dataclass
class PartitionOutcome:
    """What one phase-2 worker ships back for merging."""

    index: int
    processed: int
    mli: MLICollectionPass
    frontier: DependencyFrontierPass
    rw: RWExtractionPass
    probe: Optional[object]  # InductionProbePass (None when not needed)


@dataclass
class ParallelWalkResult:
    """Merged output of the parallel fused walk, ready for report assembly."""

    walk: EngineWalk
    varmap: VariableMap
    mli: MLICollectionPass
    dep: DependencyPass
    rw: RWExtractionPass
    probe: Optional[object]
    global_count: int


def _no_loop_error(spec: MainLoopSpec) -> AnalysisError:
    return AnalysisError(
        f"no trace record falls inside the main computation loop "
        f"range {spec.mclr} of function {spec.function!r}")


def scan_scope_snapshots(path: str, layout: BinaryTraceLayout,
                         spec: MainLoopSpec,
                         snapshot_indices: Sequence[int]) -> ScopeScan:
    """Phase 1: replay scope-affecting records, snapshot at each boundary.

    Walks every record block's fixed header once (sequentially, no operand
    decoding except Allocas) and mirrors exactly the engine-side effects of
    :meth:`repro.core.engine.AnalysisEngine._process`: activation opening on
    the record after a traced ``Call``, ``Alloca`` registration, scope
    retirement on ``Ret``.  The main loop's dynamic extent is located from
    the headers' function/line fields on the way.

    Args:
        path: binary trace file.
        layout: its decoded footer.
        spec: the main computation loop location.
        snapshot_indices: sorted, distinct record indices at which to clone
            the map (a snapshot reflects the state *before* the record at
            that index executes; indices at or past the end of the trace
            snapshot the final state).

    Returns:
        The walk shape, the requested snapshots and the final map (complete
        registration history).

    Raises:
        AnalysisError: when no record falls inside the main loop range.
    """
    strings = layout.strings
    id_of = {text: index for index, text in enumerate(strings)}
    spec_function_id = id_of.get(spec.function, -1)
    start_line, end_line = spec.start_line, spec.end_line
    alloca_op = int(Opcode.ALLOCA)
    call_op = int(Opcode.CALL)
    ret_op = int(Opcode.RET)

    varmap = VariableMap()
    for symbol in layout.globals:
        varmap.add_global_symbol(symbol)

    snapshots: Dict[int, Tuple[VariableMap, Optional[str]]] = {}
    boundary_iter = iter(snapshot_indices)
    next_boundary = next(boundary_iter, None)
    pending: Optional[str] = None
    first_index: Optional[int] = None
    last_index = -1
    first_dyn = last_dyn = 0
    index = -1
    scan = scan_record_headers(path, layout, full_opcodes=_SCAN_FULL_OPCODES)
    for index, (dyn_id, opcode, line, function_id, callee_id,
                record) in enumerate(scan):
        if next_boundary == index:
            snapshots[index] = (varmap.clone(), pending)
            next_boundary = next(boundary_iter, None)
        # Mirror AnalysisEngine._process: the activation lookahead resolves
        # first, then the record's own scope effect.
        if pending is not None:
            if strings[function_id] == pending:
                varmap.enter_scope(pending)
            pending = None
        if opcode == alloca_op:
            varmap.add_alloca_record(record)
        elif opcode == ret_op:
            varmap.exit_scope(strings[function_id])
        elif opcode == call_op:
            callee = strings[callee_id]
            if callee:
                pending = callee
        if (function_id == spec_function_id
                and start_line <= line <= end_line):
            if first_index is None:
                first_index = index
                first_dyn = dyn_id
            last_index = index
            last_dyn = dyn_id
    record_count = index + 1
    while next_boundary is not None:
        snapshots[next_boundary] = (varmap.clone(), pending)
        next_boundary = next(boundary_iter, None)
    if first_index is None:
        raise _no_loop_error(spec)
    walk = EngineWalk(record_count=record_count, first_index=first_index,
                      last_index=last_index, first_loop_dyn_id=first_dyn,
                      last_loop_dyn_id=last_dyn)
    return ScopeScan(walk=walk, snapshots=snapshots, varmap=varmap)


def _mli_owner_candidate(spec_function: str, info: VariableInfo) -> bool:
    """Could ``info`` possibly be an MLI variable?  (MLI collection only
    admits module globals and the main-loop function's own allocations.)"""
    return info.is_global or info.function == spec_function


def analyze_partition(path: str, spec: MainLoopSpec, seed: PartitionSeed,
                      first_index: int, last_index: int,
                      include_global_accesses_in_calls: bool,
                      need_probe: bool,
                      decode: str = "columnar") -> PartitionOutcome:
    """Phase 2 worker: run the full fused pass walk over one partition.

    Runs in a worker process (or inline for single-partition runs): seeds
    the engine with the boundary snapshot, streams the partition's records
    via the block index, and returns the partition's pass states — with the
    (potentially large) seeded variable map detached, since the coordinator
    merges against the phase-1 map instead.

    ``decode`` picks the partition's consumption strategy: ``"columnar"``
    (default) decodes the record range as column blocks and drives
    :meth:`~repro.core.engine.AnalysisEngine.run_indexed_columnar`;
    ``"records"`` streams per-record objects through ``run_indexed``.
    """
    from repro.core.pipeline import InductionProbePass

    varmap = seed.varmap
    mli = MLICollectionPass(
        varmap, spec,
        include_global_accesses_in_calls=include_global_accesses_in_calls)
    frontier = DependencyFrontierPass(varmap)
    rw = RWExtractionPass(
        varmap, owner_filter=partial(_mli_owner_candidate, spec.function))
    passes = [mli, frontier, rw]
    probe = None
    if need_probe:
        probe = InductionProbePass(varmap, spec)
        passes.append(probe)
    engine = AnalysisEngine(spec, passes, variable_map=varmap)
    if decode == "columnar":
        with TraceColumnarReader(path) as reader:
            processed = engine.run_indexed_columnar(
                reader.iter_blocks(start_record=seed.start,
                                   end_record=seed.end),
                first_index=first_index, last_index=last_index,
                pending_activation=seed.pending_activation)
    else:
        reader = TraceBinaryReader(path)
        records = islice(reader.iter_records(start_record=seed.start),
                         seed.end - seed.start)
        processed = engine.run_indexed(
            records, base_index=seed.start, first_index=first_index,
            last_index=last_index, pending_activation=seed.pending_activation)
    for pass_ in passes:
        pass_.varmap = None  # don't ship the seeded map back
    return PartitionOutcome(index=seed.index, processed=processed, mli=mli,
                            frontier=frontier, rw=rw, probe=probe)


def _ranges_from_boundaries(record_count: int,
                            boundaries: Sequence[int]) -> List[RecordRange]:
    """Build contiguous record ranges from explicit internal cut points.

    Used by the equivalence tests to force a boundary onto a specific
    record (mid-scope, mid-loop-iteration).  Cuts are clamped to
    ``[0, record_count]`` and deduplicated.
    """
    cuts = sorted({min(max(int(cut), 0), record_count) for cut in boundaries}
                  - {0, record_count})
    edges = [0] + cuts + [record_count]
    return [RecordRange(index=position, start=edges[position],
                        end=edges[position + 1])
            for position in range(len(edges) - 1)]


def run_parallel_fused(path: str, spec: MainLoopSpec, *,
                       workers: int = 4,
                       include_global_accesses_in_calls: bool = False,
                       need_probe: bool = False,
                       boundaries: Optional[Sequence[int]] = None,
                       timings: Optional[TimingBreakdown] = None,
                       decode: str = "columnar",
                       ) -> ParallelWalkResult:
    """Run the fused analysis sharded over partitions of a binary trace.

    Args:
        path: a *block-indexed binary* trace file (the partitioning and the
            per-worker O(1) seeks both come from its block index).
        spec: the main computation loop location.
        workers: number of partitions and worker processes.  ``1`` runs the
            whole partition machinery inline (no subprocess) — useful for
            testing the seeding path deterministically.
        include_global_accesses_in_calls: forwarded to the MLI collection.
        need_probe: run the dynamic induction-variable probe (the caller
            skips it when the induction variable is already known).
        boundaries: explicit internal record-index cut points overriding the
            even ``workers``-way split (test hook for adversarial
            boundaries).
        timings: breakdown to record the ``scope_scan`` / ``parallel_walk``
            / ``merge`` stages into.
        decode: per-worker consumption strategy (``"columnar"`` decodes the
            partition as column blocks, ``"records"`` streams per-record
            objects); the merged report is identical either way.

    Returns:
        The merged pass states plus the walk shape — everything the report
        assembly needs, bit-identical to a serial fused walk.

    Raises:
        AnalysisError: when ``path`` is not a binary trace or no record
            falls inside the main loop range.
    """
    timings = timings if timings is not None else TimingBreakdown()
    if not is_binary_trace_file(path):
        raise AnalysisError(
            f"analysis_engine='parallel' needs a block-indexed binary trace; "
            f"{path!r} is not one (convert with trace_to_file(..., "
            f"fmt='binary') or use the serial 'fused' engine)")
    layout = read_layout(path)

    with timings.stage("scope_scan"):
        if boundaries is None:
            ranges = partition_records(layout.record_count, max(1, workers))
        else:
            ranges = _ranges_from_boundaries(layout.record_count, boundaries)
        ranges = [record_range for record_range in ranges
                  if record_range.count > 0]
        scan = scan_scope_snapshots(
            path, layout, spec,
            sorted({record_range.start for record_range in ranges}))
    walk = scan.walk
    timings.add_count("scope_scan", walk.record_count)

    seeds = [PartitionSeed(index=record_range.index,
                           start=record_range.start, end=record_range.end,
                           varmap=scan.snapshots[record_range.start][0],
                           pending_activation=(
                               scan.snapshots[record_range.start][1]))
             for record_range in ranges]

    with timings.stage("parallel_walk"):
        if len(seeds) <= 1 or workers <= 1:
            outcomes = [
                analyze_partition(path, spec, seed, walk.first_index,
                                  walk.last_index,
                                  include_global_accesses_in_calls, need_probe,
                                  decode)
                for seed in seeds]
        else:
            with ProcessPoolExecutor(
                    max_workers=min(workers, len(seeds))) as executor:
                futures = [
                    executor.submit(analyze_partition, path, spec, seed,
                                    walk.first_index, walk.last_index,
                                    include_global_accesses_in_calls,
                                    need_probe, decode)
                    for seed in seeds]
                outcomes = [future.result() for future in futures]
    timings.add_count("parallel_walk", walk.record_count)

    with timings.stage("merge"):
        from repro.core.pipeline import InductionProbePass

        varmap = scan.varmap
        mli = MLICollectionPass(
            varmap, spec,
            include_global_accesses_in_calls=include_global_accesses_in_calls)
        dep = DependencyPass(varmap, before_vars=mli.before_vars,
                             inside_vars=mli.inside_vars)
        rw = RWExtractionPass(varmap)
        probe = InductionProbePass(varmap, spec) if need_probe else None
        processed = 0
        for outcome in outcomes:  # submit order == partition order
            processed += outcome.processed
            mli.merge(outcome.mli)
            rw.merge(outcome.rw)
            if probe is not None and outcome.probe is not None:
                probe.merge(outcome.probe)
        # The MLI sets are fully merged before the dependency replay, so
        # node-kind decisions see at least what the serial walk saw;
        # finalize() settles the rest identically in both pipelines.
        for outcome in outcomes:
            dep.merge(outcome.frontier)
        if processed != walk.record_count:
            raise AnalysisError(
                f"parallel fused walk lost records: partitions processed "
                f"{processed} of {walk.record_count}")
        mli.finalize()
        dep.finalize()

    return ParallelWalkResult(walk=walk, varmap=varmap, mli=mli, dep=dep,
                              rw=rw, probe=probe,
                              global_count=len(layout.globals))
