"""The AutoCheck pipeline: pre-processing → dependency analysis → identification.

This is the top-level orchestration of the paper's Fig. 2 workflow, with the
per-stage timing hooks used to regenerate Table III.  The pipeline accepts
either an in-memory :class:`repro.trace.records.Trace` or a path to a trace
file; in the latter case reading/parsing the file is part of the
pre-processing stage and can either use the parallel partitioned reader
(the OpenMP optimization of Sec. V-A) or — with
``AutoCheckConfig.streaming_preprocessing`` — a single-pass streaming mode
that never materializes the trace: region partitioning and variable
collection happen on the fly, and the later stages re-stream just the
inside/after regions they need through bounded-memory file-backed views.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

from repro.analysis.induction import find_induction_variable, find_main_loop
from repro.analysis.loops import find_loops
from repro.core.classify import classify_variables
from repro.core.config import AutoCheckConfig, MainLoopSpec
from repro.core.contraction import contract_ddg
from repro.core.dependency import DependencyAnalysis
from repro.core.errors import AnalysisError
from repro.core.preprocessing import (
    PreprocessingResult,
    identify_mli_variables,
    identify_mli_variables_streaming,
)
from repro.core.report import AutoCheckReport, TraceStats
from repro.core.rwdeps import extract_rw_dependencies
from repro.core.varmap import VariableInfo
from repro.ir.module import Module
from repro.trace.partition import read_trace_file_parallel
from repro.trace.records import Trace
from repro.trace.textio import read_trace_file
from repro.util.timing import TimingBreakdown


class AutoCheck:
    """Run the full AutoCheck analysis for one program trace."""

    def __init__(self, config: AutoCheckConfig,
                 trace: Optional[Trace] = None,
                 trace_path: Optional[str] = None,
                 module: Optional[Module] = None) -> None:
        if trace is None and trace_path is None:
            raise ValueError("AutoCheck needs either a Trace or a trace file path")
        self.config = config
        self._trace = trace
        self._trace_path = trace_path
        self._module = module

    # ------------------------------------------------------------------ #
    # Stages
    # ------------------------------------------------------------------ #
    def _load_trace(self) -> Trace:
        if self._trace is not None:
            return self._trace
        assert self._trace_path is not None
        if self.config.parallel_preprocessing:
            return read_trace_file_parallel(
                self._trace_path,
                num_workers=self.config.preprocessing_workers,
                use_processes=self.config.preprocessing_use_processes)
        return read_trace_file(self._trace_path)

    def _detect_induction(self, preprocessing: PreprocessingResult,
                          ) -> Tuple[Optional[str], Optional[VariableInfo]]:
        spec = self.config.main_loop
        if self.config.induction_variable is not None:
            name = self.config.induction_variable
            return name, preprocessing.variable_map.latest_by_name(name)

        # Preferred: static loop analysis over the IR (the paper's
        # llvm-pass-loop equivalent).
        if self._module is not None and spec.function in self._module.functions:
            function = self._module.function(spec.function)
            loops = find_loops(function)
            loop = find_main_loop(function, spec.start_line, spec.end_line,
                                  loop_info=loops)
            if loop is not None:
                induction = find_induction_variable(function, loop)
                if induction is not None:
                    info = preprocessing.variable_map.latest_by_name(induction.name)
                    return induction.name, info

        # Fallback: dynamic detection — the variable both read and written by
        # records at the loop's controlling source line.  Resolution goes
        # through the live interval store, so a controlling variable is found
        # for any accessed byte address, not just element boundaries.
        spec_line = spec.start_line
        read_names = {}
        written_names = {}
        for record in preprocessing.regions.inside:
            if record.function != spec.function or record.line != spec_line:
                continue
            operand = record.memory_operand()
            if operand is None or operand.address is None:
                continue
            info = preprocessing.variable_map.resolve(operand.address)
            if info is None:
                continue
            if record.is_load:
                read_names[info.name] = info
            elif record.is_store:
                written_names[info.name] = info
        for name, info in written_names.items():
            if name in read_names:
                return name, info
        return None, None

    # ------------------------------------------------------------------ #
    # Entry point
    # ------------------------------------------------------------------ #
    def run(self) -> AutoCheckReport:
        timings = TimingBreakdown()
        spec = self.config.main_loop

        use_streaming = (self.config.streaming_preprocessing
                         and self._trace is None
                         and self._trace_path is not None)
        with timings.stage("preprocessing"):
            if use_streaming:
                preprocessing = identify_mli_variables_streaming(
                    self._trace_path, spec,
                    include_global_accesses_in_calls=(
                        self.config.include_global_accesses_in_calls))
                record_count = preprocessing.regions.total_records
                global_count = len(preprocessing.variable_map.globals())
            else:
                trace = self._load_trace()
                preprocessing = identify_mli_variables(
                    trace, spec,
                    include_global_accesses_in_calls=(
                        self.config.include_global_accesses_in_calls))
                record_count = len(trace.records)
                global_count = len(trace.globals)

        with timings.stage("dependency_analysis"):
            dependency = DependencyAnalysis(preprocessing).run()
            contracted = contract_ddg(dependency.complete_ddg,
                                      preprocessing.mli_keys())

        with timings.stage("identify_variables"):
            rw = extract_rw_dependencies(preprocessing,
                                         variable_map=dependency.variable_map)
            induction_name, induction_info = self._detect_induction(preprocessing)
            critical = classify_variables(preprocessing, rw,
                                          induction=induction_name,
                                          induction_info=induction_info)

        stats = TraceStats(
            record_count=record_count,
            before_count=len(preprocessing.regions.before),
            inside_count=len(preprocessing.regions.inside),
            after_count=len(preprocessing.regions.after),
            global_count=global_count,
        )

        return AutoCheckReport(
            main_loop=spec,
            critical_variables=critical,
            mli_variable_names=preprocessing.mli_names(),
            induction_variable=induction_name,
            complete_ddg=dependency.complete_ddg,
            contracted_ddg=contracted,
            rw_sequence=rw,
            timings=timings,
            trace_stats=stats,
        )


def analyze_trace(trace: Union[Trace, str], main_loop: MainLoopSpec,
                  module: Optional[Module] = None,
                  **config_kwargs) -> AutoCheckReport:
    """One-call convenience API.

    ``trace`` may be an in-memory :class:`Trace` or a path to a trace file;
    extra keyword arguments are forwarded to :class:`AutoCheckConfig`.
    """
    config = AutoCheckConfig(main_loop=main_loop, **config_kwargs)
    if isinstance(trace, str):
        return AutoCheck(config, trace_path=trace, module=module).run()
    return AutoCheck(config, trace=trace, module=module).run()
