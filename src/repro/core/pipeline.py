"""The AutoCheck pipeline: pre-processing → dependency analysis → identification.

This is the top-level orchestration of the paper's Fig. 2 workflow, with the
per-stage timing hooks used to regenerate Table III.  The pipeline accepts
either an in-memory :class:`repro.trace.records.Trace` or a path to a trace
file, and comes in two shapes selected by
:attr:`repro.core.config.AutoCheckConfig.analysis_engine`:

* ``"fused"`` (default) — one single-pass
  :class:`repro.core.engine.AnalysisEngine` walk drives every stage as
  engine passes: region partitioning, MLI-variable collection, the
  dependency analysis, R/W extraction and the dynamic-induction probe all
  observe each record exactly once, sharing one live variable map so every
  access resolves against the allocation state at its own execution time.
  With ``streaming_preprocessing`` the trace file is streamed exactly once
  end to end and memory stays bounded; with the materialized readers the
  trace is loaded (serially or via the parallel partitioned reader of
  Sec. V-A) and then walked once in memory.
* ``"multipass"`` — the legacy staged pipeline: pre-processing, dependency
  analysis, R/W extraction and the induction fallback each re-iterate their
  region (in streaming mode: re-stream the file).  Kept as the benchmark
  baseline; its post-hoc address resolution also documents the temporal
  misattribution the fused engine fixes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.analysis.induction import find_induction_variable, find_main_loop
from repro.analysis.loops import find_loops
from repro.core.classify import classify_variables
from repro.core.config import AutoCheckConfig, MainLoopSpec
from repro.core.contraction import contract_ddg
from repro.core.dependency import DependencyAnalysis, DependencyPass
from repro.core.errors import AnalysisError
from repro.core.engine import (
    REGION_INSIDE,
    AnalysisEngine,
    AnalysisPass,
    RegionCounts,
)
from repro.core.preprocessing import (
    MLICollectionPass,
    PreprocessingResult,
    identify_mli_variables,
    identify_mli_variables_streaming,
)
from repro.core.report import (
    AutoCheckReport,
    CacheInfo,
    PrefilterInfo,
    TraceStats,
)
from repro.core.rwdeps import RWExtractionPass, extract_rw_dependencies
from repro.core.varmap import VariableInfo, VariableMap
from repro.ir.module import Module
from repro.ir.opcodes import Opcode
from repro.static.prefilter import StaticPrefilter, build_prefilter
from repro.static.summary import StaticModuleAnalysis, analyze_module
from repro.trace.binio import is_binary_trace_file
from repro.trace.columnar import TraceColumnarReader
from repro.trace.partition import read_trace_file_parallel
from repro.trace.records import TraceRecord, Trace
from repro.trace.textio import iter_trace_records, read_preamble, read_trace_file
from repro.util.timing import TimingBreakdown


_PROBE_LOAD = int(Opcode.LOAD)
_PROBE_STORE = int(Opcode.STORE)

#: How many records the fused engine's classic record walk consumes between
#: two :attr:`AutoCheckConfig.progress_callback` firings (the columnar walk
#: fires once per decoded block instead — blocks are already the natural
#: bulk unit there).
PROGRESS_STRIDE = 65536


def _with_record_progress(records, callback, stride: int = PROGRESS_STRIDE):
    """Tee a record iterable into ``callback(cumulative_count)`` firings."""
    count = 0
    for record in records:
        yield record
        count += 1
        if not count % stride:
            callback(count)
    callback(count)


def _with_block_progress(blocks, callback):
    """Tee a columnar block iterable into per-block progress firings."""
    total = 0
    for block in blocks:
        yield block
        total += block.count
        callback(total)


class InductionProbePass(AnalysisPass):
    """Engine pass behind the dynamic induction-variable fallback.

    Collects the variables read and written by records at the loop's
    controlling source line; the induction variable is the one that is both
    (it is read to test the condition and written to advance).  Resolution
    goes through the engine's shared live map at access time.
    """

    def __init__(self, varmap: VariableMap, spec: MainLoopSpec) -> None:
        self.varmap = varmap
        self.spec = spec
        self.read: Dict[str, VariableInfo] = {}
        self.written: Dict[str, VariableInfo] = {}

    def _probe(self, record: TraceRecord, region: int,
               operand_index: int, sink: Dict[str, VariableInfo]) -> None:
        if region != REGION_INSIDE:
            return
        if (record.function != self.spec.function
                or record.line != self.spec.start_line):
            return
        operands = record.operands
        if len(operands) <= operand_index:
            return
        info = self.varmap.resolve(operands[operand_index].address)
        if info is None:
            return
        if not (info.is_global or info.function == self.spec.function):
            # The legacy fallback resolved against the pre-processing map
            # (globals + main-loop-function allocations only); reject other
            # owners for identical answers when the loop lives in a nested
            # function.
            return
        sink[info.name] = info

    def on_load(self, record: TraceRecord, region: int) -> None:
        self._probe(record, region, 0, self.read)

    def on_store(self, record: TraceRecord, region: int) -> None:
        self._probe(record, region, 1, self.written)

    def consume_columns(self, block, start: int, stop: int, region: int,
                        rows=None) -> None:
        """Columnar :meth:`_probe`: same gates, straight off the columns."""
        if region != REGION_INSIDE:
            return
        spec = self.spec
        spec_fid = block.id_of.get(spec.function, -1)
        spec_line = spec.start_line
        line = block.line
        opcode = block.opcode
        function_id = block.function_id
        op_start = block.op_start
        has_result = block.has_result
        op_address = block.op_address
        resolve = self.varmap.resolve
        if rows is None:
            # Vectorized preselection: only the spec function's load/store
            # rows on the loop's start line can probe.
            rows = block.span_rows_matching(
                start, stop, _PROBE_LOAD, _PROBE_STORE,
                function_id=spec_fid, line=spec_line)
        for row in rows:
            if line[row] != spec_line or function_id[row] != spec_fid:
                continue
            op = opcode[row]
            if op == _PROBE_LOAD:
                operand_index = 0
                sink = self.read
            elif op == _PROBE_STORE:
                operand_index = 1
                sink = self.written
            else:
                continue
            lo_slot = op_start[row]
            if op_start[row + 1] - lo_slot - has_result[row] <= operand_index:
                continue
            info = resolve(op_address[lo_slot + operand_index])
            if info is None:
                continue
            if not (info.is_global or info.function == spec.function):
                continue
            sink[info.name] = info

    def pick(self) -> Tuple[Optional[str], Optional[VariableInfo]]:
        """The detected induction variable: both read and written at the
        loop's controlling line (``(None, None)`` when nothing matches)."""
        for name, info in self.written.items():
            if name in self.read:
                return name, info
        return None, None

    def merge(self, other: "InductionProbePass") -> None:
        """Absorb a partition's probe sets (parallel fused engine).

        Call once per partition, in partition order, so :meth:`pick`
        iterates candidates in first-occurrence stream order exactly as a
        serial walk would have.
        """
        for name, info in other.read.items():
            self.read.setdefault(name, info)
        for name, info in other.written.items():
            self.written.setdefault(name, info)


class AutoCheck:
    """Run the full AutoCheck analysis for one program trace."""

    def __init__(self, config: AutoCheckConfig,
                 trace: Optional[Trace] = None,
                 trace_path: Optional[str] = None,
                 module: Optional[Module] = None) -> None:
        if trace is None and trace_path is None:
            raise ValueError("AutoCheck needs either a Trace or a trace file path")
        self.config = config
        self._trace = trace
        self._trace_path = trace_path
        self._module = module
        self._static: Optional[StaticModuleAnalysis] = None

    # ------------------------------------------------------------------ #
    # Shared helpers
    # ------------------------------------------------------------------ #
    def _load_trace(self) -> Trace:
        if self._trace is not None:
            return self._trace
        assert self._trace_path is not None
        if self.config.parallel_preprocessing:
            return read_trace_file_parallel(
                self._trace_path,
                num_workers=self.config.preprocessing_workers,
                use_processes=self.config.preprocessing_use_processes)
        return read_trace_file(self._trace_path)

    def _use_streaming(self) -> bool:
        return (self.config.streaming_preprocessing
                and self._trace is None
                and self._trace_path is not None)

    def _use_columnar(self) -> bool:
        """True when the fused engine should consume columnar blocks.

        The columnar decoder serves block-indexed binary trace *files*
        only; in-memory traces, text traces and an explicitly requested
        parallel pre-processing read keep the classic record walk (the
        ``decode`` knob documents the silent fallback).
        """
        return (self.config.decode == "columnar"
                and self._trace is None
                and self._trace_path is not None
                and not self.config.parallel_preprocessing
                and is_binary_trace_file(self._trace_path))

    def _static_induction_name(self) -> Optional[str]:
        """The induction variable from the static loop analysis over the IR
        (the paper's llvm-pass-loop equivalent), if the module is at hand."""
        spec = self.config.main_loop
        if self._module is None or spec.function not in self._module.functions:
            return None
        function = self._module.function(spec.function)
        loops = find_loops(function)
        loop = find_main_loop(function, spec.start_line, spec.end_line,
                              loop_info=loops)
        if loop is None:
            return None
        induction = find_induction_variable(function, loop)
        return induction.name if induction is not None else None

    def _static_analysis(self) -> StaticModuleAnalysis:
        """The memoized spec-bearing static analysis (prefilter path).

        Raises:
            AnalysisError: when no module was supplied, or the main-loop
                function does not exist in it — the static prefilter has
                nothing sound to derive its skip tables from.
        """
        if self._static is None:
            spec = self.config.main_loop
            if self._module is None:
                raise AnalysisError(
                    "static_prefilter needs the compiled IR module: pass "
                    "module=... to AutoCheck (or --source on the CLI)")
            if spec.function not in self._module.functions:
                raise AnalysisError(
                    f"static_prefilter: main-loop function "
                    f"{spec.function!r} does not exist in the module")
            self._static = analyze_module(
                self._module, spec=spec,
                include_global_accesses_in_calls=(
                    self.config.include_global_accesses_in_calls))
        return self._static

    @staticmethod
    def _latest_main_loop_variable(varmap: VariableMap, spec: MainLoopSpec,
                                   name: str) -> Optional[VariableInfo]:
        """Latest registration of ``name`` among globals and the main-loop
        function's own allocations — the scope the pre-processing map of the
        multi-pass pipeline indexes (Challenge 2: a same-named callee local
        must not be mistaken for the loop's variable)."""
        latest: Optional[VariableInfo] = None
        for info in varmap.by_name(name):
            if info.is_global or info.function == spec.function:
                latest = info
        return latest

    # ------------------------------------------------------------------ #
    # Entry point
    # ------------------------------------------------------------------ #
    def run(self) -> AutoCheckReport:
        """Run the configured pipeline and return the full report.

        With :attr:`~repro.core.config.AutoCheckConfig.use_cache` set, the
        content-addressed artifact store is consulted first: a hit — same
        trace content digest, same semantic config fingerprint, same report
        schema — skips the record walk entirely and returns the stored
        report (its :attr:`~repro.core.report.AutoCheckReport.cache_info`
        says so); a miss runs the configured engine and publishes the
        result for the next run.
        """
        if not self.config.use_cache:
            return self._run_engine()
        return self._run_with_cache()

    def _run_engine(self) -> AutoCheckReport:
        """Dispatch to the configured analysis engine (no cache involved)."""
        if self.config.analysis_engine == "multipass":
            return self._run_multipass()
        if self.config.analysis_engine == "parallel":
            return self._run_parallel()
        return self._run_fused()

    def cache_key(self):
        """The artifact-store address of this run, without running it.

        Computing the address costs zero record decodes for file inputs
        (binary footers carry the digest precomputed; text files hash raw
        bytes); an in-memory trace is digested by streaming it through the
        binary encoder into a hash sink, which yields the same digest its
        on-disk binary form would carry.

        Shared by the cache lookup below and by the serve daemon, whose
        request-coalescing table keys on exactly this address — "N
        identical in-flight requests" and "a warm store hit" agree on what
        *identical* means by construction.

        Returns:
            :class:`repro.store.cache.ArtifactAddress`.
        """
        # Imported lazily: repro.store imports core modules, so a top-level
        # import here would be circular when repro.store is imported first.
        from repro.store.cache import (
            ArtifactAddress,
            artifact_key,
            config_fingerprint,
        )
        from repro.store.digest import compute_trace_digest, digest_trace

        if self._trace is not None:
            trace_digest = digest_trace(self._trace)
        else:
            assert self._trace_path is not None
            trace_digest = compute_trace_digest(self._trace_path)
        # The static induction name is an analysis input that lives outside
        # the config (it comes from the module's IR): a run that resolves it
        # and one that cannot (no module) must address different entries.
        static_induction = None
        if self.config.induction_variable is None:
            static_induction = self._static_induction_name()
        # A prefiltered run keys on the static analysis too: should the
        # skip tables ever be wrong, the bad entry stays quarantined from
        # unfiltered runs instead of poisoning them.
        static_fingerprint = None
        if self.config.static_prefilter:
            static_fingerprint = self._static_analysis().fingerprint()
        fingerprint = config_fingerprint(self.config,
                                         static_induction=static_induction,
                                         static_fingerprint=static_fingerprint)
        return ArtifactAddress(key=artifact_key(trace_digest, fingerprint),
                               trace_digest=trace_digest,
                               fingerprint=fingerprint)

    def _run_with_cache(self) -> AutoCheckReport:
        """Cache lookup → engine run on miss → publish."""
        from repro.store.cache import ArtifactStore

        address = self.cache_key()
        key = address.key
        store = ArtifactStore(self.config.cache_dir)
        cached = store.load(key)
        if cached is not None:
            cached.cache_info = CacheInfo(hit=True, key=key,
                                          trace_digest=address.trace_digest,
                                          path=store.entry_path(key))
            return cached
        report = self._run_engine()
        path = store.store(key, report, trace_digest=address.trace_digest,
                           fingerprint=address.fingerprint)
        report.cache_info = CacheInfo(hit=False, key=key,
                                      trace_digest=address.trace_digest,
                                      path=path)
        return report

    # ------------------------------------------------------------------ #
    # Fused single-pass pipeline
    # ------------------------------------------------------------------ #
    def _run_fused(self) -> AutoCheckReport:
        timings = TimingBreakdown()
        config = self.config
        spec = config.main_loop
        use_streaming = self._use_streaming()

        # Static analysis needs only the IR; resolving it before the walk
        # lets the engine skip the dynamic-induction probe entirely when the
        # answer is already known.
        induction_name = config.induction_variable
        if induction_name is None:
            induction_name = self._static_induction_name()

        trace: Optional[Trace] = None
        records = None
        reader: Optional[TraceColumnarReader] = None
        with timings.stage("preprocessing"):
            if self._use_columnar():
                # Columnar decode: the stage costs one footer parse; the
                # record blocks stream through the walk itself.
                assert self._trace_path is not None
                reader = TraceColumnarReader(self._trace_path)
                globals_ = reader.layout.globals
            elif use_streaming:
                assert self._trace_path is not None
                _, globals_ = read_preamble(self._trace_path)
                records = iter_trace_records(self._trace_path)
            else:
                trace = self._load_trace()
                globals_ = trace.globals
                records = trace.records
                if self._trace is None:
                    # Only a real file read processes records here; for an
                    # in-memory trace the stage is a no-op and a throughput
                    # number would be meaningless.
                    timings.add_count("preprocessing", len(trace.records))

        varmap = VariableMap()
        mli_pass = MLICollectionPass(
            varmap, spec,
            include_global_accesses_in_calls=(
                config.include_global_accesses_in_calls))
        dep_pass = DependencyPass(varmap,
                                  before_vars=mli_pass.before_vars,
                                  inside_vars=mli_pass.inside_vars)
        rw_pass = RWExtractionPass(varmap, candidates=mli_pass.before_vars)
        # Order matters: the MLI pass must update the variable sets before
        # the DDG / R/W passes consult them for the same record.
        passes: List[AnalysisPass] = [mli_pass, dep_pass, rw_pass]
        probe: Optional[InductionProbePass] = None
        if induction_name is None:
            probe = InductionProbePass(varmap, spec)
            passes.append(probe)

        prefilter: Optional[StaticPrefilter] = None
        if config.static_prefilter:
            prefilter = build_prefilter(self._static_analysis())

        engine = AnalysisEngine(spec, passes, variable_map=varmap,
                                prefilter=prefilter)
        engine.add_globals(globals_)
        progress = config.progress_callback
        with timings.stage("fused_analysis"):
            if reader is not None:
                blocks = reader.iter_blocks()
                if progress is not None:
                    blocks = _with_block_progress(blocks, progress)
                try:
                    walk = engine.run_columnar(blocks)
                finally:
                    reader.close()
            else:
                if progress is not None:
                    records = _with_record_progress(records, progress)
                walk = engine.run(records)
        timings.add_count("fused_analysis", walk.record_count)

        report = self._assemble_fused_report(
            timings, spec, varmap, walk, len(globals_), mli_pass, dep_pass,
            rw_pass, probe, induction_name)
        if prefilter is not None:
            report.prefilter_info = PrefilterInfo(
                skipped_records=engine.skipped_records,
                candidate_count=len(self._static_analysis().candidate_ids),
                static_fingerprint=prefilter.fingerprint)
        return report

    def _assemble_fused_report(self, timings: TimingBreakdown,
                               spec: MainLoopSpec, varmap: VariableMap,
                               walk, global_count: int,
                               mli_pass: MLICollectionPass,
                               dep_pass: DependencyPass,
                               rw_pass: RWExtractionPass,
                               probe: Optional[InductionProbePass],
                               induction_name: Optional[str],
                               ) -> AutoCheckReport:
        """The identify stage shared by the fused and parallel pipelines.

        Takes the finalized pass states (however the walk was driven —
        one serial pass or a partition merge) and packages the full report.
        """
        with timings.stage("identify_variables"):
            # The fused stages consumed the regions during the walk; the
            # result object only needs their shape (materializing slices
            # here would copy the whole trace for nothing).
            preprocessing = mli_pass.result(RegionCounts(spec, walk))
            dependency = dep_pass.result()
            mli_keys = set(preprocessing.mli_keys())
            contracted = contract_ddg(dependency.complete_ddg,
                                      preprocessing.mli_keys())
            mli_names = {var.key: var.name
                         for var in preprocessing.mli_variables}
            rw = rw_pass.build(mli_keys, mli_names)
            induction_info: Optional[VariableInfo] = None
            if induction_name is not None:
                induction_info = self._latest_main_loop_variable(
                    varmap, spec, induction_name)
            elif probe is not None:
                induction_name, induction_info = probe.pick()
            critical = classify_variables(preprocessing, rw,
                                          induction=induction_name,
                                          induction_info=induction_info)

        stats = TraceStats(
            record_count=walk.record_count,
            before_count=walk.before_count,
            inside_count=walk.inside_count,
            after_count=walk.after_count,
            global_count=global_count,
        )

        return AutoCheckReport(
            main_loop=spec,
            critical_variables=critical,
            mli_variable_names=preprocessing.mli_names(),
            induction_variable=induction_name,
            complete_ddg=dependency.complete_ddg,
            contracted_ddg=contracted,
            rw_sequence=rw,
            timings=timings,
            trace_stats=stats,
        )

    # ------------------------------------------------------------------ #
    # Parallel fused pipeline (sharded single-pass walk)
    # ------------------------------------------------------------------ #
    def _run_parallel(self) -> AutoCheckReport:
        """Shard the fused walk over trace partitions in worker processes.

        Requires a *block-indexed binary* trace file: the partitioning, the
        phase-1 scope scan and the per-worker seeks all come from its block
        index (see :mod:`repro.core.parallel`).  The report is identical to
        the serial fused engine's.
        """
        from repro.core.parallel import run_parallel_fused

        timings = TimingBreakdown()
        config = self.config
        spec = config.main_loop
        if self._trace_path is None:
            raise AnalysisError(
                "analysis_engine='parallel' needs a trace file path; "
                "in-memory traces are analysed by the serial 'fused' engine")

        induction_name = config.induction_variable
        if induction_name is None:
            induction_name = self._static_induction_name()

        result = run_parallel_fused(
            self._trace_path, spec,
            workers=config.workers,
            include_global_accesses_in_calls=(
                config.include_global_accesses_in_calls),
            need_probe=induction_name is None,
            timings=timings,
            decode=config.decode)

        return self._assemble_fused_report(
            timings, spec, result.varmap, result.walk, result.global_count,
            result.mli, result.dep, result.rw, result.probe, induction_name)

    # ------------------------------------------------------------------ #
    # Legacy multi-pass pipeline (benchmark baseline)
    # ------------------------------------------------------------------ #
    def _detect_induction(self, preprocessing: PreprocessingResult,
                          ) -> Tuple[Optional[str], Optional[VariableInfo]]:
        spec = self.config.main_loop
        if self.config.induction_variable is not None:
            name = self.config.induction_variable
            return name, preprocessing.variable_map.latest_by_name(name)

        # Preferred: static loop analysis over the IR.
        name = self._static_induction_name()
        if name is not None:
            return name, preprocessing.variable_map.latest_by_name(name)

        # Fallback: dynamic detection — the variable both read and written by
        # records at the loop's controlling source line.  Resolution goes
        # through the live interval store, so a controlling variable is found
        # for any accessed byte address, not just element boundaries.
        spec_line = spec.start_line
        read_names = {}
        written_names = {}
        for record in preprocessing.regions.inside:
            if record.function != spec.function or record.line != spec_line:
                continue
            operand = record.memory_operand()
            if operand is None or operand.address is None:
                continue
            info = preprocessing.variable_map.resolve(operand.address)
            if info is None:
                continue
            if record.is_load:
                read_names[info.name] = info
            elif record.is_store:
                written_names[info.name] = info
        for name, info in written_names.items():
            if name in read_names:
                return name, info
        return None, None

    def _run_multipass(self) -> AutoCheckReport:
        timings = TimingBreakdown()
        spec = self.config.main_loop

        use_streaming = self._use_streaming()
        with timings.stage("preprocessing"):
            if use_streaming:
                preprocessing = identify_mli_variables_streaming(
                    self._trace_path, spec,
                    include_global_accesses_in_calls=(
                        self.config.include_global_accesses_in_calls))
                record_count = preprocessing.regions.total_records
                global_count = len(preprocessing.variable_map.globals())
            else:
                trace = self._load_trace()
                preprocessing = identify_mli_variables(
                    trace, spec,
                    include_global_accesses_in_calls=(
                        self.config.include_global_accesses_in_calls))
                record_count = len(trace.records)
                global_count = len(trace.globals)
        timings.add_count("preprocessing", record_count)

        with timings.stage("dependency_analysis"):
            dependency = DependencyAnalysis(preprocessing).run()
            contracted = contract_ddg(dependency.complete_ddg,
                                      preprocessing.mli_keys())
        timings.add_count("dependency_analysis",
                          len(preprocessing.regions.inside))

        with timings.stage("identify_variables"):
            rw = extract_rw_dependencies(preprocessing,
                                         variable_map=dependency.variable_map)
            induction_name, induction_info = self._detect_induction(preprocessing)
            critical = classify_variables(preprocessing, rw,
                                          induction=induction_name,
                                          induction_info=induction_info)
        timings.add_count("identify_variables",
                          len(preprocessing.regions.inside)
                          + len(preprocessing.regions.after))

        stats = TraceStats(
            record_count=record_count,
            before_count=len(preprocessing.regions.before),
            inside_count=len(preprocessing.regions.inside),
            after_count=len(preprocessing.regions.after),
            global_count=global_count,
        )

        return AutoCheckReport(
            main_loop=spec,
            critical_variables=critical,
            mli_variable_names=preprocessing.mli_names(),
            induction_variable=induction_name,
            complete_ddg=dependency.complete_ddg,
            contracted_ddg=contracted,
            rw_sequence=rw,
            timings=timings,
            trace_stats=stats,
        )


def analyze_trace(trace: Union[Trace, str], main_loop: MainLoopSpec,
                  module: Optional[Module] = None,
                  **config_kwargs) -> AutoCheckReport:
    """One-call convenience API.

    ``trace`` may be an in-memory :class:`Trace` or a path to a trace file;
    extra keyword arguments are forwarded to :class:`AutoCheckConfig`.
    """
    config = AutoCheckConfig(main_loop=main_loop, **config_kwargs)
    if isinstance(trace, str):
        return AutoCheck(config, trace_path=trace, module=module).run()
    return AutoCheck(config, trace=trace, module=module).run()
