"""Pre-processing: trace partitioning and MLI-variable identification.

Implements the workflow of paper Fig. 3:

1. partition the dynamic trace into Part A (before the main computation
   loop), Part B (the main computation loop's dynamic extent) and Part C
   (after the loop), using the loop's source line range and containing
   function supplied by the user;
2. collect the variables accessed in Part A and in Part B — bypassing the
   intervals of function calls inside the loop (Challenge 1, Sec. V-B) and
   resolving every access to its owning allocation by memory address
   (Challenge 2, Sec. V-C);
3. match the two collections: variables accessed both before and inside the
   loop are the Main-Loop-Input (MLI) variables.

Note on "arithmetic variables": the paper collects variables *participating
in arithmetic operations*.  At ``-O0`` every interesting variable access goes
through ``Load``/``Store`` (array accesses additionally through
``GetElementPtr``), and plain definitions such as ``sum = 0`` must also be
collected for the matching to work (``sum``/``s``/``r`` in the paper's own
Fig. 4 example are initialised by constant stores).  We therefore collect the
memory operands of ``Load``/``Store``/``GetElementPtr`` records; this is the
superset interpretation that reproduces the paper's reported MLI sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import MainLoopSpec
from repro.core.errors import AnalysisError
from repro.core.varmap import VariableInfo, VariableMap, build_variable_map
from repro.trace.records import Trace, TraceRecord


@dataclass
class TraceRegions:
    """The trace split around the main computation loop's dynamic extent."""

    spec: MainLoopSpec
    before: List[TraceRecord] = field(default_factory=list)
    inside: List[TraceRecord] = field(default_factory=list)
    after: List[TraceRecord] = field(default_factory=list)
    first_loop_dyn_id: int = 0
    last_loop_dyn_id: int = 0

    @property
    def total_records(self) -> int:
        return len(self.before) + len(self.inside) + len(self.after)


@dataclass(frozen=True)
class MLIVariable:
    """One Main-Loop-Input variable."""

    info: VariableInfo

    @property
    def name(self) -> str:
        return self.info.name

    @property
    def base_address(self) -> int:
        return self.info.base_address

    @property
    def is_array(self) -> bool:
        return self.info.is_array

    @property
    def size_bytes(self) -> int:
        return self.info.size_bytes

    @property
    def key(self) -> str:
        return self.info.key


@dataclass
class PreprocessingResult:
    """Output of the pre-processing module."""

    regions: TraceRegions
    variable_map: VariableMap
    mli_variables: List[MLIVariable]
    before_variables: Dict[str, VariableInfo]
    inside_variables: Dict[str, VariableInfo]

    def mli_names(self) -> List[str]:
        return [var.name for var in self.mli_variables]

    def mli_keys(self) -> List[str]:
        return [var.key for var in self.mli_variables]

    def find(self, name: str) -> Optional[MLIVariable]:
        for var in self.mli_variables:
            if var.name == name:
                return var
        return None


# --------------------------------------------------------------------------- #
# Partitioning
# --------------------------------------------------------------------------- #
def partition_trace(trace: Trace, spec: MainLoopSpec) -> TraceRegions:
    """Split the trace into before / inside / after the main computation loop.

    The loop's *dynamic extent* spans from the first to the last record whose
    function is the main-loop function and whose source line lies within the
    declared range; records of functions called from inside the loop fall in
    between and are therefore part of the "inside" region.
    """
    first_idx: Optional[int] = None
    last_idx: Optional[int] = None
    for idx, record in enumerate(trace.records):
        if record.function == spec.function and spec.contains_line(record.line):
            if first_idx is None:
                first_idx = idx
            last_idx = idx
    if first_idx is None or last_idx is None:
        raise AnalysisError(
            f"no trace record falls inside the main computation loop range "
            f"{spec.mclr} of function {spec.function!r}")

    regions = TraceRegions(spec=spec)
    regions.before = trace.records[:first_idx]
    regions.inside = trace.records[first_idx:last_idx + 1]
    regions.after = trace.records[last_idx + 1:]
    regions.first_loop_dyn_id = trace.records[first_idx].dyn_id
    regions.last_loop_dyn_id = trace.records[last_idx].dyn_id
    return regions


# --------------------------------------------------------------------------- #
# Variable collection and matching
# --------------------------------------------------------------------------- #
def _collect_variables(records: List[TraceRecord], spec: MainLoopSpec,
                       varmap: VariableMap,
                       include_global_accesses_in_calls: bool) -> Dict[str, VariableInfo]:
    """Collect the variables accessed by ``records`` (keyed by identity).

    Records executing in functions other than the main-loop function are
    bypassed (Challenge 1) unless ``include_global_accesses_in_calls`` is set
    and the touched address belongs to a module global.
    """
    collected: Dict[str, VariableInfo] = {}
    for record in records:
        if not (record.is_load or record.is_store or record.is_gep):
            continue
        operand = record.memory_operand()
        if operand is None or operand.address is None:
            continue
        in_main_function = record.function == spec.function
        info = varmap.resolve(operand.address)
        if info is None:
            continue
        if not in_main_function:
            if not (include_global_accesses_in_calls and info.is_global):
                continue
        collected.setdefault(info.key, info)
    return collected


def identify_mli_variables(trace: Trace, spec: MainLoopSpec,
                           include_global_accesses_in_calls: bool = False,
                           regions: Optional[TraceRegions] = None,
                           ) -> PreprocessingResult:
    """Run the full pre-processing module (paper Fig. 3)."""
    regions = regions or partition_trace(trace, spec)

    # The address map for MLI identification indexes module globals plus the
    # allocations made by the main-loop function itself (its locals/arrays);
    # locals of other functions are deliberately absent so that a name
    # collision cannot be mistaken for a match (Challenge 2).
    varmap = build_variable_map(trace.globals, trace.records, function=spec.function)

    before_vars = _collect_variables(regions.before, spec, varmap,
                                     include_global_accesses_in_calls)
    inside_vars = _collect_variables(regions.inside, spec, varmap,
                                     include_global_accesses_in_calls)

    mli: List[MLIVariable] = []
    for key, info in inside_vars.items():
        if key in before_vars:
            mli.append(MLIVariable(info=info))
    # Stable, readable order: globals first, then by name.
    mli.sort(key=lambda var: (not var.info.is_global, var.name))

    return PreprocessingResult(
        regions=regions,
        variable_map=varmap,
        mli_variables=mli,
        before_variables=before_vars,
        inside_variables=inside_vars,
    )
