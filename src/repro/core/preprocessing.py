"""Pre-processing: trace partitioning and MLI-variable identification.

Implements the workflow of paper Fig. 3:

1. partition the dynamic trace into Part A (before the main computation
   loop), Part B (the main computation loop's dynamic extent) and Part C
   (after the loop), using the loop's source line range and containing
   function supplied by the user;
2. collect the variables accessed in Part A and in Part B — bypassing the
   intervals of function calls inside the loop (Challenge 1, Sec. V-B) and
   resolving every access to its owning allocation by memory address
   (Challenge 2, Sec. V-C) through the bisect-indexed live-interval store of
   :class:`repro.core.varmap.VariableMap` (O(log intervals) per access, no
   per-element index);
3. match the two collections: variables accessed both before and inside the
   loop are the Main-Loop-Input (MLI) variables.

Note on "arithmetic variables": the paper collects variables *participating
in arithmetic operations*.  At ``-O0`` every interesting variable access goes
through ``Load``/``Store`` (array accesses additionally through
``GetElementPtr``), and plain definitions such as ``sum = 0`` must also be
collected for the matching to work (``sum``/``s``/``r`` in the paper's own
Fig. 4 example are initialised by constant stores).  We therefore collect the
memory operands of ``Load``/``Store``/``GetElementPtr`` records; this is the
superset interpretation that reproduces the paper's reported MLI sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.core.config import MainLoopSpec
from repro.core.engine import (
    _COLUMNAR_POINTER_OPERAND,
    REGION_AFTER,
    AnalysisPass,
)
from repro.core.errors import AnalysisError
from repro.core.varmap import VariableInfo, VariableMap, build_variable_map
from repro.trace.records import Trace, TraceRecord
from repro.trace.textio import iter_trace_records, read_preamble

#: memo-miss sentinel (``None`` is a valid resolution outcome)
_MISS = object()

#: the opcodes that carry a pointer operand — what the columnar MLI sweep
#: preselects on
_POINTER_OPCODES = tuple(_COLUMNAR_POINTER_OPERAND)


@dataclass
class TraceRegions:
    """The trace split around the main computation loop's dynamic extent."""

    spec: MainLoopSpec
    before: List[TraceRecord] = field(default_factory=list)
    inside: List[TraceRecord] = field(default_factory=list)
    after: List[TraceRecord] = field(default_factory=list)
    first_loop_dyn_id: int = 0
    last_loop_dyn_id: int = 0

    @property
    def total_records(self) -> int:
        return len(self.before) + len(self.inside) + len(self.after)


class TraceRecordRegionView:
    """A re-iterable, bounded-memory view of ``records[start:start + count]``.

    Every iteration re-streams the trace file (binary traces seek straight
    to the region via their block index; text traces skip forward — prefer
    the binary format when streaming, since each iteration of a text view
    re-parses the file from the top), so the region is never resident in
    memory as a list.  Supports the operations the pipeline actually
    performs on a region: iteration and ``len``.
    """

    def __init__(self, path: str, start_record: int, count: int,
                 reader: Optional[object] = None) -> None:
        self.path = path
        self.start_record = start_record
        self.count = count
        #: cached :class:`repro.trace.binio.TraceBinaryReader` for binary
        #: traces, so repeated iterations do not re-decode the footer
        #: (globals + string table + block index)
        self._reader = reader

    def __len__(self) -> int:
        return self.count

    def _records(self) -> Iterator[TraceRecord]:
        if self._reader is not None:
            return self._reader.iter_records(start_record=self.start_record)
        return iter_trace_records(self.path, start_record=self.start_record)

    def __iter__(self) -> Iterator[TraceRecord]:
        remaining = self.count
        if remaining <= 0:
            return
        for record in self._records():
            yield record
            remaining -= 1
            if remaining == 0:
                return

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<TraceRecordRegionView {self.path!r} "
                f"[{self.start_record}:{self.start_record + self.count}]>")


class StreamingTraceRegions:
    """Trace regions backed by the trace *file* instead of record lists.

    Mirrors the :class:`TraceRegions` interface (``before`` / ``inside`` /
    ``after`` are iterable and sized, the loop's dynamic-id extent is
    recorded) but each region is a :class:`TraceRecordRegionView`, so a
    multi-hundred-MB trace never has to be materialized to run the pipeline.
    """

    def __init__(self, spec: MainLoopSpec, path: str, first_index: int,
                 last_index: int, record_count: int,
                 first_loop_dyn_id: int, last_loop_dyn_id: int) -> None:
        self.spec = spec
        self.path = path
        self.first_loop_dyn_id = first_loop_dyn_id
        self.last_loop_dyn_id = last_loop_dyn_id
        # Decode the binary footer once and share it across all region views
        # and iterations.
        from repro.trace.binio import TraceBinaryReader, is_binary_trace_file

        reader = TraceBinaryReader(path) if is_binary_trace_file(path) else None
        self.before = TraceRecordRegionView(path, 0, first_index, reader)
        self.inside = TraceRecordRegionView(path, first_index,
                                            last_index - first_index + 1,
                                            reader)
        self.after = TraceRecordRegionView(path, last_index + 1,
                                           record_count - last_index - 1,
                                           reader)

    @property
    def total_records(self) -> int:
        return len(self.before) + len(self.inside) + len(self.after)


@dataclass(frozen=True)
class MLIVariable:
    """One Main-Loop-Input variable."""

    info: VariableInfo

    @property
    def name(self) -> str:
        return self.info.name

    @property
    def base_address(self) -> int:
        return self.info.base_address

    @property
    def is_array(self) -> bool:
        return self.info.is_array

    @property
    def size_bytes(self) -> int:
        return self.info.size_bytes

    @property
    def key(self) -> str:
        return self.info.key


@dataclass
class PreprocessingResult:
    """Output of the pre-processing module."""

    regions: TraceRegions
    variable_map: VariableMap
    mli_variables: List[MLIVariable]
    before_variables: Dict[str, VariableInfo]
    inside_variables: Dict[str, VariableInfo]

    def mli_names(self) -> List[str]:
        return [var.name for var in self.mli_variables]

    def mli_keys(self) -> List[str]:
        return [var.key for var in self.mli_variables]

    def find(self, name: str) -> Optional[MLIVariable]:
        for var in self.mli_variables:
            if var.name == name:
                return var
        return None


# --------------------------------------------------------------------------- #
# Partitioning
# --------------------------------------------------------------------------- #
def partition_trace(trace: Trace, spec: MainLoopSpec) -> TraceRegions:
    """Split the trace into before / inside / after the main computation loop.

    The loop's *dynamic extent* spans from the first to the last record whose
    function is the main-loop function and whose source line lies within the
    declared range; records of functions called from inside the loop fall in
    between and are therefore part of the "inside" region.
    """
    first_idx: Optional[int] = None
    last_idx: Optional[int] = None
    for idx, record in enumerate(trace.records):
        if record.function == spec.function and spec.contains_line(record.line):
            if first_idx is None:
                first_idx = idx
            last_idx = idx
    if first_idx is None or last_idx is None:
        raise AnalysisError(
            f"no trace record falls inside the main computation loop range "
            f"{spec.mclr} of function {spec.function!r}")

    regions = TraceRegions(spec=spec)
    regions.before = trace.records[:first_idx]
    regions.inside = trace.records[first_idx:last_idx + 1]
    regions.after = trace.records[last_idx + 1:]
    regions.first_loop_dyn_id = trace.records[first_idx].dyn_id
    regions.last_loop_dyn_id = trace.records[last_idx].dyn_id
    return regions


# --------------------------------------------------------------------------- #
# Variable collection and matching
# --------------------------------------------------------------------------- #
def _accessed_variable(record: TraceRecord, spec: MainLoopSpec,
                       varmap: VariableMap,
                       include_global_accesses_in_calls: bool,
                       ) -> Optional[VariableInfo]:
    """The variable ``record`` accesses, if the collection rules admit it.

    Records executing in functions other than the main-loop function are
    bypassed (Challenge 1) unless ``include_global_accesses_in_calls`` is set
    and the touched address belongs to a module global.
    """
    if not (record.is_load or record.is_store or record.is_gep):
        return None
    operand = record.memory_operand()
    if operand is None or operand.address is None:
        return None
    info = varmap.resolve(operand.address)
    if info is None:
        return None
    if (record.function != spec.function
            and not (include_global_accesses_in_calls and info.is_global)):
        return None
    return info


def _collect_variables(records: List[TraceRecord], spec: MainLoopSpec,
                       varmap: VariableMap,
                       include_global_accesses_in_calls: bool) -> Dict[str, VariableInfo]:
    """Collect the variables accessed by ``records`` (keyed by identity)."""
    collected: Dict[str, VariableInfo] = {}
    for record in records:
        info = _accessed_variable(record, spec, varmap,
                                  include_global_accesses_in_calls)
        if info is not None:
            collected.setdefault(info.key, info)
    return collected


def identify_mli_variables(trace: Trace, spec: MainLoopSpec,
                           include_global_accesses_in_calls: bool = False,
                           regions: Optional[TraceRegions] = None,
                           ) -> PreprocessingResult:
    """Run the full pre-processing module (paper Fig. 3)."""
    regions = regions or partition_trace(trace, spec)

    # The address map for MLI identification indexes module globals plus the
    # allocations made by the main-loop function itself (its locals/arrays);
    # locals of other functions are deliberately absent so that a name
    # collision cannot be mistaken for a match (Challenge 2).  The map stays
    # unscoped (``scoped=False``): the main-loop function never returns
    # within the analysed extent, and collection resolves accesses against
    # the completed map, so its allocations must all stay live.
    varmap = build_variable_map(trace.globals, trace.records, function=spec.function)

    before_vars = _collect_variables(regions.before, spec, varmap,
                                     include_global_accesses_in_calls)
    inside_vars = _collect_variables(regions.inside, spec, varmap,
                                     include_global_accesses_in_calls)

    return PreprocessingResult(
        regions=regions,
        variable_map=varmap,
        mli_variables=_match_mli(before_vars, inside_vars),
        before_variables=before_vars,
        inside_variables=inside_vars,
    )


def _match_mli(before_vars: Dict[str, VariableInfo],
               inside_vars: Dict[str, VariableInfo]) -> List[MLIVariable]:
    """Variables accessed both before and inside the loop, stably ordered."""
    mli = [MLIVariable(info=info) for key, info in inside_vars.items()
           if key in before_vars]
    # Stable, readable order: globals first, then by name.
    mli.sort(key=lambda var: (not var.info.is_global, var.name))
    return mli


class MLICollectionPass(AnalysisPass):
    """Engine pass: collect the before/inside variable sets in one walk.

    The collection rules are those of :func:`_accessed_variable` — memory
    operands of ``Load``/``Store``/``GetElementPtr``, records of other
    functions bypassed (Challenge 1) unless the global-access switch admits
    them — but resolution goes through the engine's shared *live* map, i.e.
    against the allocations live at each access's own execution time.  Two
    guarantees keep the collected sets equal to the post-hoc ones (the
    equivalence tests assert this on every registered benchmark):

    * at ``-O0`` every allocation precedes its accesses, and stack
      addresses are only reused across dead frames (which the engine
      retires on ``Ret``);
    * the shared map indexes *every* function's allocations, whereas the
      legacy pre-processing map deliberately indexes only globals plus the
      main-loop function's own (Challenge 2) — so a resolved owner outside
      that population (e.g. a live ancestor frame's local, reachable
      through a pointer when the main loop lives in a nested function) is
      rejected here exactly as the restricted map would have left it
      unresolved.

    Register this pass *first*: later passes (DDG, R/W extraction) read
    ``before_vars``/``inside_vars`` to decide MLI candidacy and must observe
    the sets updated through the current record.
    """

    def __init__(self, varmap: VariableMap, spec: MainLoopSpec,
                 include_global_accesses_in_calls: bool = False) -> None:
        self.varmap = varmap
        self.spec = spec
        self.include_global_accesses_in_calls = include_global_accesses_in_calls
        self.before_vars: Dict[str, VariableInfo] = {}
        self.inside_vars: Dict[str, VariableInfo] = {}
        self.mli_variables: List[MLIVariable] = []
        #: columnar resolution memo + the map revision it is valid for
        self._col_memo: Dict = {}
        self._col_memo_rev = -1

    def _collect(self, record: TraceRecord, region: int,
                 operand_index: int) -> None:
        if region == REGION_AFTER:
            return
        operands = record.operands
        if len(operands) <= operand_index:
            return
        operand = operands[operand_index]
        address = operand.address
        if address is None:
            return
        info = self.varmap.resolve(address)
        if info is None:
            return
        if not (info.is_global or info.function == self.spec.function):
            # Owner outside the restricted map's population (Challenge 2).
            return
        if (record.function != self.spec.function
                and not (self.include_global_accesses_in_calls
                         and info.is_global)):
            return
        sink = self.inside_vars if region else self.before_vars
        if info.key not in sink:
            sink[info.key] = info

    def on_load(self, record: TraceRecord, region: int) -> None:
        self._collect(record, region, 0)

    def on_gep(self, record: TraceRecord, region: int) -> None:
        self._collect(record, region, 0)

    def on_store(self, record: TraceRecord, region: int) -> None:
        self._collect(record, region, 1)

    def consume_columns(self, block, start: int, stop: int, region: int,
                        rows: Optional[List[int]] = None) -> None:
        """Columnar :meth:`_collect`: same gates, straight off the columns."""
        if region == REGION_AFTER:
            return
        opcode = block.opcode
        function_id = block.function_id
        op_start = block.op_start
        has_result = block.has_result
        op_address = block.op_address
        resolve = self.varmap.resolve
        pointer_operand = _COLUMNAR_POINTER_OPERAND.get
        spec_function = self.spec.function
        spec_fid = block.id_of.get(spec_function, -1)
        include = self.include_global_accesses_in_calls
        sink = self.inside_vars if region else self.before_vars
        # Per-address resolutions memoize while the live map's revision is
        # unchanged (only scope records between segments can mutate it;
        # the revision check at segment entry catches exactly those).
        memo = self._col_memo
        if self._col_memo_rev != self.varmap.revision:
            self._col_memo_rev = self.varmap.revision
            memo.clear()
        memo_get = memo.get
        miss = _MISS
        if rows is None:
            # Vectorized preselection: only load/gep/store rows can
            # collect, and without the global-access switch only the spec
            # function's — the same pure filters the loop body applies.
            rows = block.span_rows_matching(
                start, stop, *_POINTER_OPCODES,
                function_id=None if include else spec_fid)
        for row in rows:
            operand_index = pointer_operand(opcode[row])
            if operand_index is None:
                continue
            fid = function_id[row]
            if fid != spec_fid and not include:
                # Gates reordered from _collect (pure filters — the sink
                # outcome is identical): a foreign-function record can only
                # survive through the global-access switch, so the common
                # case resolves nothing at all.
                continue
            lo_slot = op_start[row]
            if op_start[row + 1] - lo_slot - has_result[row] <= operand_index:
                continue
            address = op_address[lo_slot + operand_index]
            if address is None:
                continue
            info = memo_get(address, miss)
            if info is miss:
                info = resolve(address)
                memo[address] = info
            if info is None:
                continue
            if not (info.is_global or info.function == spec_function):
                continue
            if fid != spec_fid and not (include and info.is_global):
                continue
            if info.key not in sink:
                sink[info.key] = info

    def finalize(self) -> None:
        self.mli_variables = _match_mli(self.before_vars, self.inside_vars)

    def merge(self, other: "MLICollectionPass") -> None:
        """Absorb a partition's collected sets (parallel fused engine).

        Call once per partition, in partition order: first-seen wins, so
        the merged dicts carry the same first-occurrence insertion order a
        serial walk would have produced.  Run :meth:`finalize` after the
        last merge to compute the matched MLI set.
        """
        for key, info in other.before_vars.items():
            self.before_vars.setdefault(key, info)
        for key, info in other.inside_vars.items():
            self.inside_vars.setdefault(key, info)

    def result(self, regions) -> PreprocessingResult:
        """Package the collected sets as a :class:`PreprocessingResult`."""
        return PreprocessingResult(
            regions=regions,
            variable_map=self.varmap,
            mli_variables=self.mli_variables,
            before_variables=self.before_vars,
            inside_variables=self.inside_vars,
        )


def identify_mli_variables_streaming(path: str, spec: MainLoopSpec,
                                     include_global_accesses_in_calls: bool = False,
                                     ) -> PreprocessingResult:
    """Run the pre-processing module in a single streaming pass over a file.

    Functionally equivalent to reading the trace and calling
    :func:`identify_mli_variables`, but the trace is never materialized:
    one pass over the record stream simultaneously

    * builds the variable map (globals preamble + the main-loop function's
      ``Alloca`` records, registered in trace order exactly as
      :func:`repro.core.varmap.build_variable_map` would),
    * finds the main loop's dynamic extent (first/last record whose function
      and source line match the spec), and
    * collects the before/inside variable sets — records seen after the
      latest loop record are collected *tentatively* and committed to the
      inside set only when a later loop record proves they fall within the
      loop's extent; at end of stream the still-pending set is the after
      region and is discarded.

    Memory is bounded by the variable sets, not the trace length.  The
    returned regions are :class:`StreamingTraceRegions`, whose views
    re-stream the file on demand (the binary format's block index makes the
    seeks cheap), so the later pipeline stages run unchanged.

    One semantic note: accesses are resolved against the allocations seen
    *so far* rather than against the completed map.  At ``-O0`` every
    ``Alloca`` of the main-loop function precedes any access to it, and a
    new allocation shadows any stale overlap the moment it is registered
    (the interval store splits/evicts, see :mod:`repro.core.varmap`), so the
    two resolutions agree — the equivalence tests assert identical reports
    on every registered benchmark.
    """
    module_name, globals_ = read_preamble(path)
    del module_name
    varmap = VariableMap()
    for symbol in globals_:
        varmap.add_global_symbol(symbol)

    before_vars: Dict[str, VariableInfo] = {}
    inside_vars: Dict[str, VariableInfo] = {}
    pending_vars: Dict[str, VariableInfo] = {}
    first_index: Optional[int] = None
    last_index = -1
    first_dyn_id = last_dyn_id = 0
    index = -1

    for index, record in enumerate(iter_trace_records(path)):
        if record.is_alloca and record.function == spec.function:
            varmap.add_alloca_record(record)
        in_loop = (record.function == spec.function
                   and spec.contains_line(record.line))
        if in_loop:
            if first_index is None:
                first_index = index
                first_dyn_id = record.dyn_id
            last_index = index
            last_dyn_id = record.dyn_id
            # Everything seen since the previous loop record is now known to
            # lie inside the loop's dynamic extent: commit it (in stream
            # order, before this record's own access).
            for key, info in pending_vars.items():
                inside_vars.setdefault(key, info)
            pending_vars.clear()
        info = _accessed_variable(record, spec, varmap,
                                  include_global_accesses_in_calls)
        if info is not None:
            if first_index is None:
                before_vars.setdefault(info.key, info)
            elif in_loop:
                inside_vars.setdefault(info.key, info)
            else:
                pending_vars.setdefault(info.key, info)

    if first_index is None:
        raise AnalysisError(
            f"no trace record falls inside the main computation loop range "
            f"{spec.mclr} of function {spec.function!r}")
    # pending_vars now holds accesses after the last loop record — the after
    # region — which the matching deliberately ignores.

    regions = StreamingTraceRegions(
        spec=spec, path=path, first_index=first_index, last_index=last_index,
        record_count=index + 1, first_loop_dyn_id=first_dyn_id,
        last_loop_dyn_id=last_dyn_id)

    return PreprocessingResult(
        regions=regions,
        variable_map=varmap,
        mli_variables=_match_mli(before_vars, inside_vars),
        before_variables=before_vars,
        inside_variables=inside_vars,
    )
