"""The reg-var map and reg-reg map of the paper's dependency analysis.

* The **reg-var map** (paper Fig. 5a) associates a temporary register with
  the arithmetic variable it was loaded from / will be stored to.  It is
  updated on the fly in execution order, so SSA "reload on every use"
  guarantees the association is always current ("Mutable-register"
  challenge).
* The **reg-reg map** (paper Fig. 5b) links an arithmetic instruction's input
  registers to its output register.

Registers are keyed by ``(function, register name)`` because register
numbering restarts in every function.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

RegKey = Tuple[str, str]


@dataclass
class RegVarMap:
    """Active register -> variable associations (updated on the fly)."""

    entries: Dict[RegKey, str] = field(default_factory=dict)

    def associate(self, function: str, register: str, variable_key: str) -> None:
        self.entries[(function, register)] = variable_key

    def lookup(self, function: str, register: str) -> Optional[str]:
        return self.entries.get((function, register))

    def forget_function(self, function: str) -> None:
        """Drop associations of a function (on return, its registers die)."""
        stale = [key for key in self.entries if key[0] == function]
        for key in stale:
            del self.entries[key]

    def __len__(self) -> int:
        return len(self.entries)


@dataclass
class RegRegMap:
    """Input-register -> output-register links of arithmetic instructions."""

    entries: Dict[RegKey, Set[RegKey]] = field(default_factory=dict)

    def link(self, function: str, output_register: str,
             input_registers: List[str]) -> None:
        key = (function, output_register)
        targets = self.entries.setdefault(key, set())
        for register in input_registers:
            targets.add((function, register))

    def inputs_of(self, function: str, register: str) -> Set[RegKey]:
        return set(self.entries.get((function, register), set()))

    def __len__(self) -> int:
        return len(self.entries)
