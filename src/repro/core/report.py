"""Result objects of the AutoCheck pipeline."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.config import MainLoopSpec
from repro.util.formatting import format_bytes, render_table
from repro.util.timing import TimingBreakdown


class DependencyType(enum.Enum):
    """The four dependency classes of paper Fig. 7."""

    WAR = "WAR"
    OUTCOME = "Outcome"
    RAPO = "RAPO"
    INDEX = "Index"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class CriticalVariable:
    """One variable AutoCheck recommends checkpointing."""

    name: str
    dependency: DependencyType
    size_bytes: int = 0
    base_address: int = 0
    decl_line: int = 0
    is_array: bool = False
    is_global: bool = False

    def __str__(self) -> str:
        return f"{self.name} ({self.dependency.value})"


@dataclass
class TraceStats:
    """Shape of the analysed trace (Table II's size/record columns)."""

    record_count: int = 0
    before_count: int = 0
    inside_count: int = 0
    after_count: int = 0
    global_count: int = 0
    trace_bytes: Optional[int] = None


@dataclass(frozen=True)
class CacheInfo:
    """How the artifact store was involved in producing one report.

    Attached by the pipeline when caching is enabled
    (:attr:`repro.core.config.AutoCheckConfig.use_cache`): on a hit the
    report was deserialized from the store and the record walk was skipped
    entirely; on a miss it was computed and stored under ``key``.  This is
    *per-run provenance*, not analysis content — it is excluded from report
    equality and from the serialized form (a report loaded from the cache
    carries the hit's CacheInfo, not the original miss's).
    """

    #: True when the report came out of the store without a record walk.
    hit: bool
    #: Content-addressed store key (hex SHA-256 over trace digest, config
    #: fingerprint and schema version).
    key: str
    #: Digest of the analysed trace content.
    trace_digest: str
    #: On-disk entry path inside the store.
    path: Optional[str] = None


@dataclass(frozen=True)
class PrefilterInfo:
    """How the static engine prefilter shaped one run.

    Attached by the pipeline when
    :attr:`repro.core.config.AutoCheckConfig.static_prefilter` is on.
    Like :class:`CacheInfo` this is per-run provenance, not analysis
    content: the report with and without the prefilter is identical (the
    equality tests assert exactly that), so the skip counters are
    excluded from report equality and from the serialized form.
    """

    #: Records whose pass dispatch was skipped by the static filter.
    skipped_records: int
    #: Size of the static MLI-candidate set the filter was derived from.
    candidate_count: int
    #: Fingerprint of the static analysis (joins the cache key).
    static_fingerprint: str


@dataclass
class AutoCheckReport:
    """Everything AutoCheck produces for one benchmark run."""

    main_loop: MainLoopSpec
    critical_variables: List[CriticalVariable] = field(default_factory=list)
    mli_variable_names: List[str] = field(default_factory=list)
    induction_variable: Optional[str] = None
    complete_ddg: Optional[object] = None      # repro.core.ddg.DDG
    contracted_ddg: Optional[object] = None    # repro.core.ddg.DDG
    rw_sequence: Optional[object] = None       # repro.core.rwdeps.RWDependencies
    timings: TimingBreakdown = field(default_factory=TimingBreakdown)
    trace_stats: TraceStats = field(default_factory=TraceStats)
    #: Artifact-store provenance (hit/miss, key) — per-run metadata, hence
    #: excluded from equality and from the serialized form.
    cache_info: Optional[CacheInfo] = field(default=None, compare=False,
                                            repr=False)
    #: Static-prefilter provenance (skip counters) — per-run metadata,
    #: excluded from equality and serialization like ``cache_info``.
    prefilter_info: Optional[PrefilterInfo] = field(default=None,
                                                    compare=False, repr=False)

    # ------------------------------------------------------------------ #
    # Convenience accessors
    # ------------------------------------------------------------------ #
    def names(self) -> List[str]:
        return [variable.name for variable in self.critical_variables]

    def find(self, name: str) -> Optional[CriticalVariable]:
        for variable in self.critical_variables:
            if variable.name == name:
                return variable
        return None

    def by_type(self) -> Dict[DependencyType, List[CriticalVariable]]:
        grouped: Dict[DependencyType, List[CriticalVariable]] = {}
        for variable in self.critical_variables:
            grouped.setdefault(variable.dependency, []).append(variable)
        return grouped

    def checkpoint_bytes(self) -> int:
        """Total bytes to checkpoint = sum of critical-variable sizes.

        This is the quantity compared against the BLCR whole-process image in
        paper Table IV.
        """
        return sum(variable.size_bytes for variable in self.critical_variables)

    def dependency_string(self) -> str:
        """Table II style listing, e.g. ``x (WAR), it (Index)``."""
        return ", ".join(f"{v.name} ({v.dependency.value})"
                         for v in self.critical_variables)

    def summary(self) -> str:
        """Human readable multi-line report."""
        lines = [
            f"Main computation loop: {self.main_loop.function} "
            f"lines {self.main_loop.mclr}",
            f"MLI variables ({len(self.mli_variable_names)}): "
            + ", ".join(self.mli_variable_names),
            f"Critical variables ({len(self.critical_variables)}):",
        ]
        rows = [(v.name, v.dependency.value, format_bytes(v.size_bytes),
                 v.decl_line or "-") for v in self.critical_variables]
        lines.append(render_table(("variable", "dependency", "size", "decl line"),
                                  rows))
        lines.append(f"Checkpoint size: {format_bytes(self.checkpoint_bytes())}")
        parts = []
        for name, seconds in self.timings.stages.items():
            part = f"{name}={seconds:.4f}s"
            rate = self.timings.records_per_second(name)
            if rate is not None:
                part += f" ({rate / 1000:.0f} krec/s)"
            parts.append(part)
        lines.append("Analysis time: " + ", ".join(parts)
                     + f", total={self.timings.total:.4f}s")
        if self.cache_info is not None:
            status = ("hit (record walk skipped; timings are the original "
                      "run's)" if self.cache_info.hit else "miss (stored)")
            lines.append(f"Artifact cache: {status}, "
                         f"key={self.cache_info.key[:16]}…, "
                         f"trace={self.cache_info.trace_digest[:16]}…")
        if self.prefilter_info is not None:
            lines.append(
                f"Static prefilter: "
                f"{self.prefilter_info.skipped_records} records skipped "
                f"pass dispatch "
                f"({self.prefilter_info.candidate_count} static candidates)")
        return "\n".join(lines)
