"""Extraction of execution-time-ordered Read/Write dependencies.

The identification module converts the dependency information into a
sequence of read and write events on each MLI variable, ordered by dynamic
instruction id (paper Fig. 5e), plus the post-loop reads needed for the
*Outcome* heuristic.  Array accesses also record the element offset touched,
which is what the *RAPO* (Read-After-Partially-Overwritten) heuristic
inspects.

Offsets come from :meth:`repro.core.varmap.VariableMap.resolve_access`: the
owning allocation and the element index are produced by one bisect lookup
against the live interval store, and the index is always relative to the
owner's base address — stable even when later allocations have shadowed part
of the owner's range.

Two implementations live here:

* :class:`RWExtractionPass` — the engine pass used by the fused pipeline.
  Every access resolves against the shared live map *at its own execution
  time*, so an access to an MLI byte range that a later callee ``Alloca``
  shadows still attributes to the MLI variable.
* :func:`extract_rw_dependencies` — the legacy post-hoc extraction used by
  the multi-pass pipeline: it re-walks the regions and resolves against the
  dependency analysis' *end-of-region* map, whose shadowing state reflects
  the end of the loop rather than the moment of each access.  Kept as the
  benchmark baseline and to document the temporal bug the engine fixes
  (``tests/test_engine_fused.py::TestTemporalAttribution`` pins it down).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Container, Dict, List, Optional, Set

from repro.core.engine import REGION_AFTER, REGION_INSIDE, AnalysisPass
from repro.core.preprocessing import PreprocessingResult
from repro.core.varmap import VariableMap
from repro.ir.opcodes import Opcode
from repro.trace.records import TraceRecord

_LOAD = int(Opcode.LOAD)
_STORE = int(Opcode.STORE)

#: memo-miss sentinel (``None`` is a valid resolution outcome)
_MISS = object()


class AccessKind(enum.Enum):
    READ = "Read"
    WRITE = "Write"


@dataclass(frozen=True)
class AccessEvent:
    """One dynamic access to an MLI variable."""

    dyn_id: int
    variable: str          # MLI variable key
    name: str              # source-level name
    kind: AccessKind
    line: int
    function: str
    element_offset: int = 0

    def __str__(self) -> str:
        return f"{self.name}-{self.kind.value}"


@dataclass
class RWDependencies:
    """All loop-region and post-loop access events, per MLI variable."""

    loop_events: List[AccessEvent] = field(default_factory=list)
    post_loop_events: List[AccessEvent] = field(default_factory=list)
    by_variable: Dict[str, List[AccessEvent]] = field(default_factory=dict)
    post_by_variable: Dict[str, List[AccessEvent]] = field(default_factory=dict)

    def events_for(self, variable_key: str) -> List[AccessEvent]:
        return self.by_variable.get(variable_key, [])

    def post_events_for(self, variable_key: str) -> List[AccessEvent]:
        return self.post_by_variable.get(variable_key, [])

    def sequence_string(self, limit: Optional[int] = None) -> str:
        """Human readable R/W sequence like the paper's Fig. 5(e)."""
        events = self.loop_events[:limit] if limit else self.loop_events
        return "; ".join(f"{i + 1}: {event}" for i, event in enumerate(events))


class RWExtractionPass(AnalysisPass):
    """Engine pass: collect loop-region and post-loop access events.

    ``candidates`` is the live ``before_vars`` dict of the MLI-collection
    pass sharing the engine: the MLI set is its subset (a variable must be
    accessed before *and* inside the loop), and it is complete before the
    first inside record is dispatched, so filtering on it at event time
    bounds the tentative event lists without losing any MLI event.  The
    final filter to the matched MLI set happens in :meth:`build`.

    A parallel-partition worker cannot use ``candidates`` (the before set
    is only complete after the cross-partition merge), so it passes
    ``owner_filter`` instead: a predicate over the resolved
    :class:`~repro.core.varmap.VariableInfo` that must admit every possible
    MLI owner (e.g. "global or owned by the main-loop function" — the
    population MLI collection draws from).  Events it rejects could never
    survive :meth:`build`, so the filter only bounds the tentative lists.
    """

    def __init__(self, varmap: VariableMap,
                 candidates: Optional[Container[str]] = None,
                 owner_filter: Optional[Callable[..., bool]] = None) -> None:
        self.varmap = varmap
        self._candidates = candidates
        self._owner_filter = owner_filter
        self._loop: List[AccessEvent] = []
        self._post: List[AccessEvent] = []
        #: columnar per-address decision memo + the map revision it is
        #: valid for
        self._col_memo: Dict = {}
        self._col_memo_rev = -1

    def _record(self, record: TraceRecord, region: int,
                kind: "AccessKind", operand_index: int) -> None:
        if region == REGION_INSIDE:
            sink = self._loop
        elif region == REGION_AFTER:
            sink = self._post
        else:
            return
        operands = record.operands
        if len(operands) <= operand_index:
            return
        resolved = self.varmap.resolve_access(operands[operand_index].address)
        if resolved is None:
            return
        info, element_offset = resolved
        candidates = self._candidates
        if candidates is not None and info.key not in candidates:
            return
        owner_filter = self._owner_filter
        if owner_filter is not None and not owner_filter(info):
            return
        sink.append(AccessEvent(
            dyn_id=record.dyn_id,
            variable=info.key,
            name=info.name,
            kind=kind,
            line=record.line,
            function=record.function,
            element_offset=element_offset,
        ))

    def on_load(self, record: TraceRecord, region: int) -> None:
        self._record(record, region, AccessKind.READ, 0)

    def on_store(self, record: TraceRecord, region: int) -> None:
        self._record(record, region, AccessKind.WRITE, 1)

    def consume_columns(self, block, start: int, stop: int, region: int,
                        rows: Optional[List[int]] = None) -> None:
        """Columnar :meth:`_record`: same gates, straight off the columns."""
        if region == REGION_INSIDE:
            sink = self._loop
        elif region == REGION_AFTER:
            sink = self._post
        else:
            return
        strings = block.strings
        # numpy-backed when the list was never materialized; every emitted
        # event wraps its element in int() either way (a no-op for ints).
        dyn_id = block.dyn_id_col()
        opcode = block.opcode
        line = block.line
        function_id = block.function_id
        op_start = block.op_start
        has_result = block.has_result
        op_address = block.op_address
        resolve_access = self.varmap.resolve_access
        candidates = self._candidates
        owner_filter = self._owner_filter
        append = sink.append
        load = _LOAD
        store = _STORE
        # The *whole* per-address decision memoizes: the candidate set is
        # complete before the first inside record and the owner filter is
        # a pure predicate of the resolved info, so skip-or-emit is a
        # function of the address alone — valid while the live map's
        # revision is unchanged (only scope records between segments can
        # mutate it; the revision check catches exactly those).
        memo = self._col_memo
        if self._col_memo_rev != self.varmap.revision:
            self._col_memo_rev = self.varmap.revision
            memo.clear()
        memo_get = memo.get
        miss = _MISS
        if rows is None:
            # Vectorized preselection: only load/store rows matter here,
            # so sweep just those instead of testing every record.
            rows = block.span_rows_matching(start, stop, load, store)
        for row in rows:
            op = opcode[row]
            if op == load:
                kind = AccessKind.READ
                operand_index = 0
            elif op == store:
                kind = AccessKind.WRITE
                operand_index = 1
            else:
                continue
            lo_slot = op_start[row]
            if op_start[row + 1] - lo_slot - has_result[row] <= operand_index:
                continue
            address = op_address[lo_slot + operand_index]
            hit = memo_get(address, miss)
            if hit is miss:
                resolved = resolve_access(address)
                hit = None
                if resolved is not None:
                    info, element_offset = resolved
                    if ((candidates is None or info.key in candidates)
                            and (owner_filter is None
                                 or owner_filter(info))):
                        hit = (info.key, info.name, element_offset)
                memo[address] = hit
            if hit is None:
                continue
            variable, name, element_offset = hit
            append(AccessEvent(
                dyn_id=int(dyn_id[row]),
                variable=variable,
                name=name,
                kind=kind,
                line=line[row],
                function=strings[function_id[row]],
                element_offset=element_offset,
            ))

    def merge(self, other: "RWExtractionPass") -> None:
        """Append a partition's tentative events (parallel fused engine).

        Call once per partition, in partition order — the concatenated
        lists are then in stream order, exactly as a serial walk would have
        appended them.
        """
        self._loop.extend(other._loop)
        self._post.extend(other._post)

    def build(self, mli_keys: Set[str],
              mli_names: Optional[Dict[str, str]] = None) -> RWDependencies:
        """Filter the tentative events down to the matched MLI variables."""
        mli_names = mli_names or {}
        result = RWDependencies()
        for tentative, sink, by_variable in (
                (self._loop, result.loop_events, result.by_variable),
                (self._post, result.post_loop_events, result.post_by_variable)):
            for event in tentative:
                if event.variable not in mli_keys:
                    continue
                name = mli_names.get(event.variable, event.name)
                if name != event.name:
                    event = AccessEvent(
                        dyn_id=event.dyn_id, variable=event.variable,
                        name=name, kind=event.kind, line=event.line,
                        function=event.function,
                        element_offset=event.element_offset)
                sink.append(event)
                by_variable.setdefault(event.variable, []).append(event)
        return result


def _record_events(records: List[TraceRecord], varmap: VariableMap,
                   mli_keys: Set[str], mli_names: Dict[str, str],
                   sink: List[AccessEvent],
                   by_variable: Dict[str, List[AccessEvent]]) -> None:
    for record in records:
        if record.is_load:
            operand = record.memory_operand()
            kind = AccessKind.READ
        elif record.is_store:
            operand = record.memory_operand()
            kind = AccessKind.WRITE
        else:
            continue
        if operand is None or operand.address is None:
            continue
        resolved = varmap.resolve_access(operand.address)
        if resolved is None:
            continue
        info, element_offset = resolved
        if info.key not in mli_keys:
            continue
        event = AccessEvent(
            dyn_id=record.dyn_id,
            variable=info.key,
            name=mli_names.get(info.key, info.name),
            kind=kind,
            line=record.line,
            function=record.function,
            element_offset=element_offset,
        )
        sink.append(event)
        by_variable.setdefault(info.key, []).append(event)


def extract_rw_dependencies(preprocessing: PreprocessingResult,
                            variable_map: Optional[VariableMap] = None,
                            ) -> RWDependencies:
    """Extract the ordered R/W events on MLI variables (post-hoc, legacy).

    ``variable_map`` should be the dependency analysis' map (which knows
    about every allocation); when omitted the pre-processing map is used.

    This re-walks the regions and resolves every access against the given
    map's *final* state, so shadowing that happened after an access can
    steal or drop its attribution; the fused pipeline's
    :class:`RWExtractionPass` resolves at execution time instead.  Kept as
    the multi-pass baseline.
    """
    varmap = variable_map or preprocessing.variable_map
    mli_keys = set(preprocessing.mli_keys())
    mli_names = {var.key: var.name for var in preprocessing.mli_variables}

    result = RWDependencies()
    _record_events(preprocessing.regions.inside, varmap, mli_keys, mli_names,
                   result.loop_events, result.by_variable)
    _record_events(preprocessing.regions.after, varmap, mli_keys, mli_names,
                   result.post_loop_events, result.post_by_variable)
    return result
