"""Extraction of execution-time-ordered Read/Write dependencies.

The identification module converts the dependency information into a
sequence of read and write events on each MLI variable, ordered by dynamic
instruction id (paper Fig. 5e), plus the post-loop reads needed for the
*Outcome* heuristic.  Array accesses also record the element offset touched,
which is what the *RAPO* (Read-After-Partially-Overwritten) heuristic
inspects.

Offsets come from :meth:`repro.core.varmap.VariableMap.resolve_access`: the
owning allocation and the element index are produced by one bisect lookup
against the live interval store, and the index is always relative to the
owner's base address — stable even when later allocations have shadowed part
of the owner's range.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.core.preprocessing import MLIVariable, PreprocessingResult
from repro.core.varmap import VariableMap
from repro.trace.records import TraceRecord


class AccessKind(enum.Enum):
    READ = "Read"
    WRITE = "Write"


@dataclass(frozen=True)
class AccessEvent:
    """One dynamic access to an MLI variable."""

    dyn_id: int
    variable: str          # MLI variable key
    name: str              # source-level name
    kind: AccessKind
    line: int
    function: str
    element_offset: int = 0

    def __str__(self) -> str:
        return f"{self.name}-{self.kind.value}"


@dataclass
class RWDependencies:
    """All loop-region and post-loop access events, per MLI variable."""

    loop_events: List[AccessEvent] = field(default_factory=list)
    post_loop_events: List[AccessEvent] = field(default_factory=list)
    by_variable: Dict[str, List[AccessEvent]] = field(default_factory=dict)
    post_by_variable: Dict[str, List[AccessEvent]] = field(default_factory=dict)

    def events_for(self, variable_key: str) -> List[AccessEvent]:
        return self.by_variable.get(variable_key, [])

    def post_events_for(self, variable_key: str) -> List[AccessEvent]:
        return self.post_by_variable.get(variable_key, [])

    def sequence_string(self, limit: Optional[int] = None) -> str:
        """Human readable R/W sequence like the paper's Fig. 5(e)."""
        events = self.loop_events[:limit] if limit else self.loop_events
        return "; ".join(f"{i + 1}: {event}" for i, event in enumerate(events))


def _record_events(records: List[TraceRecord], varmap: VariableMap,
                   mli_keys: Set[str], mli_names: Dict[str, str],
                   sink: List[AccessEvent],
                   by_variable: Dict[str, List[AccessEvent]]) -> None:
    for record in records:
        if record.is_load:
            operand = record.memory_operand()
            kind = AccessKind.READ
        elif record.is_store:
            operand = record.memory_operand()
            kind = AccessKind.WRITE
        else:
            continue
        if operand is None or operand.address is None:
            continue
        resolved = varmap.resolve_access(operand.address)
        if resolved is None:
            continue
        info, element_offset = resolved
        if info.key not in mli_keys:
            continue
        event = AccessEvent(
            dyn_id=record.dyn_id,
            variable=info.key,
            name=mli_names.get(info.key, info.name),
            kind=kind,
            line=record.line,
            function=record.function,
            element_offset=element_offset,
        )
        sink.append(event)
        by_variable.setdefault(info.key, []).append(event)


def extract_rw_dependencies(preprocessing: PreprocessingResult,
                            variable_map: Optional[VariableMap] = None,
                            ) -> RWDependencies:
    """Extract the ordered R/W events on MLI variables.

    ``variable_map`` should be the dependency analysis' map (which knows
    about every allocation); when omitted the pre-processing map is used.
    """
    varmap = variable_map or preprocessing.variable_map
    mli_keys = set(preprocessing.mli_keys())
    mli_names = {var.key: var.name for var in preprocessing.mli_variables}

    result = RWDependencies()
    _record_events(preprocessing.regions.inside, varmap, mli_keys, mli_names,
                   result.loop_events, result.by_variable)
    _record_events(preprocessing.regions.after, varmap, mli_keys, mli_names,
                   result.post_loop_events, result.post_by_variable)
    return result
