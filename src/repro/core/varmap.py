"""Address-interval map from memory addresses to the variables owning them.

The paper resolves two hard cases by looking at memory addresses:

* Challenge 2 (Sec. V-C): local variables of called functions may share their
  name with an MLI variable; the ``Alloca`` records give every local its
  address, so a variable is recognised as "the" MLI variable only when its
  address matches.
* Accesses made through pointer parameters inside callees (the trace shows
  the parameter name, e.g. ``p``) fall inside the address range of the
  caller's array, so interval lookup attributes them to the right variable.

:class:`VariableMap` is built from the globals preamble plus the ``Alloca``
records seen in the trace, and answers "which variable owns address X?".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.trace.records import GlobalSymbol, TraceRecord


@dataclass(frozen=True)
class VariableInfo:
    """A named storage interval (global or stack allocation)."""

    name: str
    base_address: int
    size_bytes: int
    element_bits: int
    is_array: bool
    is_global: bool
    function: str = ""
    decl_line: int = 0

    @property
    def end_address(self) -> int:
        return self.base_address + self.size_bytes

    @property
    def element_bytes(self) -> int:
        return max(1, self.element_bits // 8)

    @property
    def element_count(self) -> int:
        return max(1, self.size_bytes // self.element_bytes)

    def contains(self, address: int) -> bool:
        return self.base_address <= address < self.end_address

    def element_offset(self, address: int) -> int:
        """Element index of ``address`` within this variable."""
        return (address - self.base_address) // self.element_bytes

    @property
    def key(self) -> str:
        """Stable identity used as a DDG node key."""
        return f"{self.name}@{self.base_address:#x}"


class VariableMap:
    """Map ``address -> VariableInfo`` with last-registered-wins semantics.

    Stack addresses may be reused by successive calls; registering a new
    allocation that overlaps an old one shadows it for subsequent lookups,
    which matches the "on-the-fly, active state only" semantics the paper
    describes for its maps.

    Lookups are O(1): every element address of a registered variable is
    indexed (the mini benchmarks keep arrays small, so the index stays tiny).
    Addresses not on an element boundary fall back to an interval scan.
    """

    def __init__(self) -> None:
        self._by_name: Dict[str, List[VariableInfo]] = {}
        self._intervals: List[VariableInfo] = []
        self._address_index: Dict[int, VariableInfo] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add(self, info: VariableInfo) -> VariableInfo:
        self._by_name.setdefault(info.name, []).append(info)
        self._intervals.append(info)
        step = info.element_bytes
        for offset in range(0, max(info.size_bytes, step), step):
            self._address_index[info.base_address + offset] = info
        return info

    def add_global_symbol(self, symbol: GlobalSymbol, decl_line: int = 0) -> VariableInfo:
        return self.add(VariableInfo(
            name=symbol.name, base_address=symbol.address,
            size_bytes=symbol.size_bytes, element_bits=symbol.element_bits,
            is_array=symbol.is_array, is_global=True, decl_line=decl_line))

    def add_alloca_record(self, record: TraceRecord) -> Optional[VariableInfo]:
        """Register a stack variable from an ``Alloca`` trace record."""
        if not record.is_alloca or record.result is None:
            return None
        count = 1
        for operand in record.operands:
            if operand.name == "count":
                count = int(operand.value)
                break
        element_bits = record.result.bits or 32
        size_bytes = count * (element_bits // 8)
        return self.add(VariableInfo(
            name=record.result.name,
            base_address=record.result.address or 0,
            size_bytes=size_bytes,
            element_bits=element_bits,
            is_array=count > 1,
            is_global=False,
            function=record.function,
            decl_line=record.line,
        ))

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def resolve(self, address: Optional[int]) -> Optional[VariableInfo]:
        """Return the most recently registered variable containing ``address``."""
        if address is None:
            return None
        info = self._address_index.get(address)
        if info is not None:
            return info
        for candidate in reversed(self._intervals):
            if candidate.contains(address):
                return candidate
        return None

    def by_name(self, name: str) -> List[VariableInfo]:
        return list(self._by_name.get(name, []))

    def latest_by_name(self, name: str) -> Optional[VariableInfo]:
        infos = self._by_name.get(name)
        return infos[-1] if infos else None

    def globals(self) -> List[VariableInfo]:
        return [info for info in self._intervals if info.is_global]

    def __len__(self) -> int:
        return len(self._intervals)

    def __iter__(self) -> Iterable[VariableInfo]:
        return iter(self._intervals)


def build_variable_map(globals_: Iterable[GlobalSymbol],
                       records: Iterable[TraceRecord],
                       function: Optional[str] = None) -> VariableMap:
    """Build a variable map from the preamble plus (optionally filtered) Allocas.

    When ``function`` is given only that function's allocations are indexed —
    this is the map used to decide whether an accessed address belongs to an
    MLI variable owned by the main-loop function (Challenge 2); passing
    ``None`` indexes every allocation (used by the dependency analysis to
    recognise locals of callees).
    """
    varmap = VariableMap()
    for symbol in globals_:
        varmap.add_global_symbol(symbol)
    for record in records:
        if not record.is_alloca:
            continue
        if function is not None and record.function != function:
            continue
        varmap.add_alloca_record(record)
    return varmap
