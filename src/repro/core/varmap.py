"""Address-interval map from memory addresses to the variables owning them.

The paper resolves two hard cases by looking at memory addresses:

* Challenge 2 (Sec. V-C): local variables of called functions may share their
  name with an MLI variable; the ``Alloca`` records give every local its
  address, so a variable is recognised as "the" MLI variable only when its
  address matches.
* Accesses made through pointer parameters inside callees (the trace shows
  the parameter name, e.g. ``p``) fall inside the address range of the
  caller's array, so interval lookup attributes them to the right variable.

:class:`VariableMap` is built from the globals preamble plus the ``Alloca``
records seen in the trace, and answers "which variable owns address X?".

Resolution semantics
--------------------

The map keeps a **sorted list of non-overlapping live address segments**:

* registering an allocation that overlaps existing segments *splits or
  evicts* them, so the newest registration always wins for the addresses it
  covers while the non-overlapped remainders of older allocations stay
  resolvable — true last-registered-wins shadowing for the stack-address
  re-use patterns of successive calls;
* :meth:`VariableMap.resolve` is a ``bisect`` lookup — O(log segments) for
  *any* byte address inside a live interval, not just element boundaries;
* index memory is O(live segments), independent of array element counts
  (a million-element array costs one segment, not a million index entries);
* allocations can be grouped into **scopes** (one per traced function
  activation): :meth:`enter_scope` / :meth:`exit_scope` let the analyses
  retire a callee's allocas when the tracer records the function's ``Ret``,
  so a dead frame can never shadow or absorb later accesses;
* retiring a registration **restores** the byte ranges it had shadowed to
  their previous owners (skipping owners that retired in the meantime), so
  a variable that outlives a shadowing allocation resolves over its full
  extent again — scope-nested shadowing unwinds exactly.

Retirement and shadowing only affect *address resolution*; the registration
history (:meth:`by_name`, :meth:`latest_by_name`, iteration, ``len``) keeps
every allocation ever registered, which is what the reporting layers need.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from functools import cached_property
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.ir.opcodes import Opcode
from repro.trace.records import GlobalSymbol, TraceRecord


@dataclass(frozen=True)
class VariableInfo:
    """A named storage interval (global or stack allocation)."""

    name: str
    base_address: int
    size_bytes: int
    element_bits: int
    is_array: bool
    is_global: bool
    function: str = ""
    decl_line: int = 0

    @property
    def end_address(self) -> int:
        return self.base_address + self.size_bytes

    @property
    def element_bytes(self) -> int:
        return max(1, self.element_bits // 8)

    @property
    def element_count(self) -> int:
        return max(1, self.size_bytes // self.element_bytes)

    def contains(self, address: int) -> bool:
        return self.base_address <= address < self.end_address

    def element_offset(self, address: int) -> int:
        """Element index of ``address`` within this variable."""
        return (address - self.base_address) // self.element_bytes

    @cached_property
    def key(self) -> str:
        """Stable identity used as a DDG node key.

        Cached: the analysis passes read it per resolved access (hundreds of
        thousands of times per trace), and both ``name`` and
        ``base_address`` are frozen.  ``cached_property`` writes the
        instance ``__dict__`` directly, which a frozen dataclass permits.
        """
        return f"{self.name}@{self.base_address:#x}"


class _Scope:
    """One open allocation scope (a traced function activation)."""

    __slots__ = ("function", "infos")

    def __init__(self, function: str) -> None:
        self.function = function
        self.infos: List[VariableInfo] = []


class VariableMap:
    """Map ``address -> VariableInfo`` with last-registered-wins semantics.

    Stack addresses may be reused by successive calls; registering a new
    allocation that overlaps an old one shadows it for subsequent lookups,
    which matches the "on-the-fly, active state only" semantics the paper
    describes for its maps.  See the module docstring for the full
    resolution semantics (segment store, scoping, complexity).
    """

    def __init__(self) -> None:
        self._by_name: Dict[str, List[VariableInfo]] = {}
        self._intervals: List[VariableInfo] = []
        # Live, sorted, pairwise-disjoint address segments.  A segment is a
        # sub-range of its owner's [base_address, end_address) — shadowing
        # can trim an owner down to one or two remainder segments.
        self._seg_starts: List[int] = []
        self._seg_ends: List[int] = []
        self._seg_owners: List[VariableInfo] = []
        self._scopes: List[_Scope] = []
        # What each registration shadowed: id(new owner) -> the (start, end,
        # old owner) pieces its insertion trimmed or evicted.  Retiring the
        # registration re-inserts the pieces whose owner is still live, so a
        # variable that outlives a shadowing allocation regains resolution of
        # the shadowed byte range (identity keys are stable: every
        # registration is kept alive in ``_intervals``).
        self._shadow_undo: Dict[int, List[Tuple[int, int, VariableInfo]]] = {}
        self._retired_ids: set = set()
        #: bumped on every change that can alter address resolution — the
        #: columnar passes key their cross-segment resolution memos on it
        self.revision = 0

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add(self, info: VariableInfo) -> VariableInfo:
        self._by_name.setdefault(info.name, []).append(info)
        self._intervals.append(info)
        if info.size_bytes > 0:
            self._insert_segment(info.base_address, info.end_address, info)
        if not info.is_global:
            scope = self._innermost_scope(info.function)
            if scope is not None:
                scope.infos.append(info)
        return info

    def add_global_symbol(self, symbol: GlobalSymbol, decl_line: int = 0) -> VariableInfo:
        return self.add(VariableInfo(
            name=symbol.name, base_address=symbol.address,
            size_bytes=symbol.size_bytes, element_bits=symbol.element_bits,
            is_array=symbol.is_array, is_global=True, decl_line=decl_line))

    def add_alloca_record(self, record: TraceRecord) -> Optional[VariableInfo]:
        """Register a stack variable from an ``Alloca`` trace record."""
        if not record.is_alloca or record.result is None:
            return None
        count = 1
        for operand in record.operands:
            if operand.name == "count":
                count = int(operand.value)
                break
        element_bits = record.result.bits or 32
        # Ceil division: sub-byte element types (i1 booleans) still occupy a
        # whole addressable byte each — floor division would produce a
        # zero-byte, unresolvable interval.
        size_bytes = count * max(1, (element_bits + 7) // 8)
        return self.add(VariableInfo(
            name=record.result.name,
            base_address=record.result.address or 0,
            size_bytes=size_bytes,
            element_bits=element_bits,
            is_array=count > 1,
            is_global=False,
            function=record.function,
            decl_line=record.line,
        ))

    # ------------------------------------------------------------------ #
    # Scopes
    # ------------------------------------------------------------------ #
    def enter_scope(self, function: str) -> None:
        """Open an allocation scope for one activation of ``function``.

        Subsequent non-global registrations whose ``function`` matches are
        attached to the innermost such scope and retired by
        :meth:`exit_scope`.
        """
        self._scopes.append(_Scope(function))

    def exit_scope(self, function: str) -> None:
        """Close the innermost open scope of ``function``, retiring its
        allocations (plus those of any unbalanced scopes opened above it).

        A ``function`` with no open scope is a no-op, so feeding ``Ret``
        records of untracked functions (e.g. the main-loop function itself)
        is harmless.
        """
        for index in range(len(self._scopes) - 1, -1, -1):
            if self._scopes[index].function == function:
                # Innermost scope first, newest allocation first: retirement
                # must unwind shadowing in LIFO order so that each restore
                # hands ranges back to the owner directly underneath.
                for scope in reversed(self._scopes[index:]):
                    for info in reversed(scope.infos):
                        self.retire(info)
                del self._scopes[index:]
                return

    @property
    def open_scope_count(self) -> int:
        return len(self._scopes)

    def _innermost_scope(self, function: str) -> Optional[_Scope]:
        for scope in reversed(self._scopes):
            if scope.function == function:
                return scope
        return None

    def retire(self, info: VariableInfo) -> None:
        """Drop ``info``'s live segments; its registration history remains.

        The byte ranges ``info``'s registration had shadowed are restored to
        their previous owners (unless those have been retired themselves in
        the meantime), so a variable that outlives a shadowing allocation —
        e.g. an MLI array partially covered by a callee's ``Alloca`` —
        resolves over its full extent again once the shadower's scope
        closes.
        """
        self.revision += 1
        self._retired_ids.add(id(info))
        index = bisect_left(self._seg_starts, info.base_address)
        while (index < len(self._seg_starts)
               and self._seg_starts[index] < info.end_address):
            if self._seg_owners[index] is info:
                del self._seg_starts[index]
                del self._seg_ends[index]
                del self._seg_owners[index]
            else:
                index += 1
        for start, end, owner in self._shadow_undo.pop(id(info), ()):
            if id(owner) not in self._retired_ids:
                self._restore_range(start, end, owner)

    # ------------------------------------------------------------------ #
    # Snapshots and transport (the parallel fused engine's seeding path)
    # ------------------------------------------------------------------ #
    def clone(self) -> "VariableMap":
        """Return an independent copy of the map's full state.

        The copy shares the (immutable) :class:`VariableInfo` objects but
        owns its containers: registering, retiring or scoping on the clone
        never affects the original.  Used by the parallel fused engine to
        snapshot the live map at each partition boundary.

        Returns:
            A new :class:`VariableMap` equal in resolution behaviour,
            registration history, open scopes and shadow-undo state.
        """
        clone = VariableMap.__new__(VariableMap)
        clone._by_name = {name: list(infos)
                         for name, infos in self._by_name.items()}
        clone._intervals = list(self._intervals)
        clone._seg_starts = list(self._seg_starts)
        clone._seg_ends = list(self._seg_ends)
        clone._seg_owners = list(self._seg_owners)
        clone._scopes = []
        for scope in self._scopes:
            copied = _Scope(scope.function)
            copied.infos = list(scope.infos)
            clone._scopes.append(copied)
        clone._shadow_undo = {owner_id: list(pieces)
                              for owner_id, pieces in self._shadow_undo.items()}
        clone._retired_ids = set(self._retired_ids)
        clone.revision = self.revision
        return clone

    def __getstate__(self) -> Dict[str, Any]:
        """Pickle support: encode identity-keyed state positionally.

        ``_shadow_undo`` and ``_retired_ids`` are keyed by ``id(info)``,
        which does not survive a process boundary; the state replaces every
        identity key/reference with the owner's index in the registration
        history so :meth:`__setstate__` can rebuild them with the new
        object identities.  This is what lets a boundary snapshot be shipped
        to a :mod:`multiprocessing` worker.
        """
        index_of = {id(info): index
                    for index, info in enumerate(self._intervals)}
        return {
            "intervals": self._intervals,
            "by_name": {name: [index_of[id(info)] for info in infos]
                        for name, infos in self._by_name.items()},
            "seg_starts": self._seg_starts,
            "seg_ends": self._seg_ends,
            "seg_owners": [index_of[id(owner)] for owner in self._seg_owners],
            "scopes": [(scope.function,
                        [index_of[id(info)] for info in scope.infos])
                       for scope in self._scopes],
            "shadow_undo": {
                index_of[owner_id]: [(start, end, index_of[id(owner)])
                                     for start, end, owner in pieces]
                for owner_id, pieces in self._shadow_undo.items()},
            "retired": [index_of[retired_id]
                        for retired_id in self._retired_ids],
        }

    def __setstate__(self, state: Dict[str, Any]) -> None:
        infos: List[VariableInfo] = state["intervals"]
        self._intervals = infos
        self._by_name = {name: [infos[index] for index in indices]
                         for name, indices in state["by_name"].items()}
        self._seg_starts = state["seg_starts"]
        self._seg_ends = state["seg_ends"]
        self._seg_owners = [infos[index] for index in state["seg_owners"]]
        self._scopes = []
        for function, indices in state["scopes"]:
            scope = _Scope(function)
            scope.infos = [infos[index] for index in indices]
            self._scopes.append(scope)
        self._shadow_undo = {
            id(infos[owner_index]): [
                (start, end, infos[piece_index])
                for start, end, piece_index in pieces]
            for owner_index, pieces in state["shadow_undo"].items()}
        self._retired_ids = {id(infos[index]) for index in state["retired"]}
        self.revision = 0

    # ------------------------------------------------------------------ #
    # Segment store
    # ------------------------------------------------------------------ #
    def _insert_segment(self, start: int, end: int, owner: VariableInfo) -> None:
        self.revision += 1
        starts, ends, owners = self._seg_starts, self._seg_ends, self._seg_owners
        shadowed: List[Tuple[int, int, VariableInfo]] = []
        index = bisect_left(starts, start)
        # A predecessor reaching past `start` is split: its left remainder is
        # trimmed in place and, when it spans past `end`, its right remainder
        # re-inserted after the new segment.
        if index > 0 and ends[index - 1] > start:
            old_end = ends[index - 1]
            old_owner = owners[index - 1]
            ends[index - 1] = start
            shadowed.append((start, min(old_end, end), old_owner))
            if old_end > end:
                starts.insert(index, end)
                ends.insert(index, old_end)
                owners.insert(index, old_owner)
        # Segments starting inside [start, end) are evicted; one reaching
        # past `end` keeps its right remainder.
        cursor = index
        while cursor < len(starts) and starts[cursor] < end:
            shadowed.append((starts[cursor], min(ends[cursor], end),
                             owners[cursor]))
            if ends[cursor] > end:
                starts[cursor] = end
                break
            cursor += 1
        if cursor > index:
            del starts[index:cursor]
            del ends[index:cursor]
            del owners[index:cursor]
        starts.insert(index, start)
        ends.insert(index, end)
        owners.insert(index, owner)
        if shadowed:
            self._shadow_undo[id(owner)] = shadowed

    def _restore_range(self, start: int, end: int,
                       owner: VariableInfo) -> None:
        """Give ``owner`` back every currently-uncovered gap in
        ``[start, end)`` — the inverse of the shadowing done by
        :meth:`_insert_segment`, applied when the shadower retires.  Parts
        of the range covered by still-live segments (a later shadower whose
        scope is still open) are left untouched."""
        starts, ends, owners = self._seg_starts, self._seg_ends, self._seg_owners
        cursor = start
        index = bisect_right(starts, start) - 1
        if index >= 0 and ends[index] > start:
            cursor = min(ends[index], end)
        index += 1
        while cursor < end:
            next_start = starts[index] if index < len(starts) else None
            if next_start is not None and next_start < end:
                if next_start > cursor:
                    starts.insert(index, cursor)
                    ends.insert(index, next_start)
                    owners.insert(index, owner)
                    index += 1
                cursor = min(ends[index], end)
                index += 1
            else:
                starts.insert(index, cursor)
                ends.insert(index, end)
                owners.insert(index, owner)
                return

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def resolve(self, address: Optional[int]) -> Optional[VariableInfo]:
        """Return the live variable owning ``address`` (None if unmapped)."""
        if address is None:
            return None
        index = bisect_right(self._seg_starts, address) - 1
        if index >= 0 and self._seg_ends[index] > address:
            return self._seg_owners[index]
        return None

    def resolve_access(self, address: Optional[int],
                       ) -> Optional[Tuple[VariableInfo, int]]:
        """Resolve ``address`` to ``(owner, element_offset)`` in one lookup.

        The offset is relative to the owner's *base address* (not the live
        segment's start), so element indices are stable even when shadowing
        has trimmed the owner to a remainder segment.
        """
        info = self.resolve(address)
        if info is None:
            return None
        return info, info.element_offset(address)

    def live_intervals(self) -> List[Tuple[int, int, VariableInfo]]:
        """The current live segments as ``(start, end, owner)`` triples."""
        return list(zip(self._seg_starts, self._seg_ends, self._seg_owners))

    @property
    def index_entry_count(self) -> int:
        """Number of live segments — the index's memory footprint is
        O(this), never O(array elements)."""
        return len(self._seg_starts)

    def by_name(self, name: str) -> List[VariableInfo]:
        return list(self._by_name.get(name, []))

    def latest_by_name(self, name: str) -> Optional[VariableInfo]:
        infos = self._by_name.get(name)
        return infos[-1] if infos else None

    def globals(self) -> List[VariableInfo]:
        return [info for info in self._intervals if info.is_global]

    def __len__(self) -> int:
        return len(self._intervals)

    def __iter__(self) -> Iterator[VariableInfo]:
        return iter(self._intervals)


def build_variable_map(globals_: Iterable[GlobalSymbol],
                       records: Iterable[TraceRecord],
                       function: Optional[str] = None,
                       scoped: bool = False) -> VariableMap:
    """Build a variable map from the preamble plus (optionally filtered) Allocas.

    When ``function`` is given only that function's allocations are indexed —
    this is the map used to decide whether an accessed address belongs to an
    MLI variable owned by the main-loop function (Challenge 2); passing
    ``None`` indexes every allocation (used by the dependency analysis to
    recognise locals of callees).

    With ``scoped=True`` the builder additionally replays the trace's
    ``Call``/``Ret`` structure through :meth:`VariableMap.enter_scope` /
    :meth:`VariableMap.exit_scope`, so allocations of returned activations
    are retired from address resolution exactly as the dependency analysis
    would retire them on the fly.  The default keeps the full history live,
    which the materialized MLI-identification path relies on (it resolves
    accesses against the completed map).
    """
    varmap = VariableMap()
    for symbol in globals_:
        varmap.add_global_symbol(symbol)
    pending_callee: Optional[str] = None
    for record in records:
        if scoped:
            # A Call only opens a scope once the next record proves a traced
            # body follows (it executes in the callee) — this covers
            # zero-parameter user functions while builtins, whose next record
            # stays in the caller, open nothing.
            if pending_callee is not None:
                if record.function == pending_callee:
                    varmap.enter_scope(pending_callee)
                pending_callee = None
            if record.is_call and record.callee:
                pending_callee = record.callee
            elif record.opcode == Opcode.RET:
                varmap.exit_scope(record.function)
        if not record.is_alloca:
            continue
        if function is not None and record.function != function:
            continue
        varmap.add_alloca_record(record)
    return varmap
