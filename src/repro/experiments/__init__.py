"""``repro.experiments`` — harnesses regenerating the paper's evaluation.

Each module regenerates one table or study of the paper's Sec. VI:

* :mod:`repro.experiments.table2` — Table II: identified critical variables,
  dependency types, trace sizes, trace generation times and MCLR for the 14
  benchmarks (plus a column checking the result against the paper's).
* :mod:`repro.experiments.table3` — Table III: analysis-time breakdown
  (pre-processing / dependency analysis / identify variables) with and
  without the parallel pre-processing optimization.
* :mod:`repro.experiments.table4` — Table IV: checkpoint storage cost of
  AutoCheck-selected variables vs. a BLCR-style whole-process image, on the
  larger inputs.
* :mod:`repro.experiments.validation` — Sec. VI-B: fail-stop injection +
  restart with the detected variables (sufficiency) and the per-variable
  ablation (false-positive/necessity) study.
* :mod:`repro.experiments.figure5` — the worked example of Fig. 4/5:
  complete DDG, contracted DDG and the R/W dependency sequence.
* :mod:`repro.experiments.runner` — run everything and write a combined
  report.
"""

from repro.experiments.common import AppAnalysis, analyze_app, variable_sizes
from repro.experiments.table2 import Table2Row, run_table2, format_table2
from repro.experiments.table3 import Table3Row, run_table3, format_table3
from repro.experiments.table4 import Table4Row, run_table4, format_table4
from repro.experiments.validation import ValidationRow, run_validation, format_validation
from repro.experiments.figure5 import run_figure5
from repro.experiments.runner import run_all

__all__ = [
    "AppAnalysis",
    "analyze_app",
    "variable_sizes",
    "Table2Row",
    "run_table2",
    "format_table2",
    "Table3Row",
    "run_table3",
    "format_table3",
    "Table4Row",
    "run_table4",
    "format_table4",
    "ValidationRow",
    "run_validation",
    "format_validation",
    "run_figure5",
    "run_all",
]
