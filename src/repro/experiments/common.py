"""Shared helpers for the experiment harnesses."""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.apps.base import AppDefinition
from repro.codegen.lowering import compile_source
from repro.core.config import AutoCheckConfig
from repro.core.pipeline import AutoCheck
from repro.core.report import AutoCheckReport
from repro.ir.module import Module
from repro.tracer.driver import compile_and_run, run_and_trace, trace_to_file
from repro.tracer.interpreter import ExecutionResult


@dataclass
class AppAnalysis:
    """Everything produced when analysing one application."""

    app: AppDefinition
    report: AutoCheckReport
    source: str
    module: Module
    execution: ExecutionResult
    source_loc: int = 0
    trace_bytes: Optional[int] = None
    trace_generation_seconds: float = 0.0
    trace_path: Optional[str] = None

    @property
    def matches_expected(self) -> bool:
        got = {v.name: v.dependency.value for v in self.report.critical_variables}
        return got == dict(self.app.expected_critical)

    def mismatch_description(self) -> str:
        got = {v.name: v.dependency.value for v in self.report.critical_variables}
        expected = dict(self.app.expected_critical)
        missing = sorted(set(expected) - set(got))
        extra = sorted(set(got) - set(expected))
        retyped = sorted(name for name in set(got) & set(expected)
                         if got[name] != expected[name])
        parts = []
        if missing:
            parts.append("missing: " + ", ".join(missing))
        if extra:
            parts.append("extra: " + ", ".join(extra))
        if retyped:
            parts.append("retyped: " + ", ".join(retyped))
        return "; ".join(parts) if parts else "exact match"


def analyze_app(app: AppDefinition, params: Optional[Dict[str, int]] = None,
                trace_dir: Optional[str] = None,
                parallel_preprocessing: bool = False,
                preprocessing_workers: int = 4,
                seed: int = 314159) -> AppAnalysis:
    """Trace one application and run the AutoCheck pipeline on it.

    When ``trace_dir`` is given the dynamic trace is written to a file there
    (mirroring the paper's LLVM-Tracer setup and enabling the parallel
    pre-processing path); otherwise the trace stays in memory.
    """
    params = params or {}
    source = app.source(**params)
    module = compile_source(source, module_name=app.name)
    spec = app.main_loop(source)
    source_loc = len([line for line in source.splitlines() if line.strip()])

    options = dict(app.autocheck_options)
    options.setdefault("parallel_preprocessing", parallel_preprocessing)
    options.setdefault("preprocessing_workers", preprocessing_workers)
    config = AutoCheckConfig(main_loop=spec, **options)

    if trace_dir is not None:
        os.makedirs(trace_dir, exist_ok=True)
        trace_path = os.path.join(trace_dir, f"{app.name}.trace")
        start = time.perf_counter()
        trace_bytes, execution = trace_to_file(module, trace_path,
                                               module_name=app.name, seed=seed)
        generation = time.perf_counter() - start
        report = AutoCheck(config, trace_path=trace_path, module=module).run()
        report.trace_stats.trace_bytes = trace_bytes
        return AppAnalysis(app=app, report=report, source=source, module=module,
                           execution=execution, source_loc=source_loc,
                           trace_bytes=trace_bytes,
                           trace_generation_seconds=generation,
                           trace_path=trace_path)

    start = time.perf_counter()
    trace, execution = run_and_trace(module, module_name=app.name, seed=seed)
    generation = time.perf_counter() - start
    report = AutoCheck(config, trace=trace, module=module).run()
    return AppAnalysis(app=app, report=report, source=source, module=module,
                       execution=execution, source_loc=source_loc,
                       trace_generation_seconds=generation)


def variable_sizes(module: Module, execution: ExecutionResult, names: List[str],
                   function: str = "main") -> Dict[str, int]:
    """Byte sizes of ``names`` as allocated by ``execution`` (globals or
    ``function``-local allocations).  Used by the Table IV storage study to
    size checkpoints on larger inputs without re-running the analysis."""
    sizes: Dict[str, int] = {}
    memory = execution.memory
    if memory is None:
        return sizes
    global_by_name = {alloc.name: alloc for alloc in memory.global_allocations}
    local_by_name: Dict[str, int] = {}
    for alloc in memory.stack_allocations:
        if alloc.function == function:
            local_by_name[alloc.name] = alloc.size_bytes
    for name in names:
        if name in global_by_name:
            sizes[name] = global_by_name[name].size_bytes
        elif name in local_by_name:
            sizes[name] = local_by_name[name]
        else:
            sizes[name] = 0
    return sizes


def run_untraced(app: AppDefinition, params: Optional[Dict[str, int]] = None,
                 seed: int = 314159) -> ExecutionResult:
    """Execute an application without tracing (used for large-input studies)."""
    params = params or {}
    return compile_and_run(app.source(**params), module_name=app.name, seed=seed)
