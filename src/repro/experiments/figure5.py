"""Fig. 4/5 — the worked example's DDG artefacts.

Regenerates, for the paper's example code (Fig. 4):

* the MLI variable set (``a``, ``b``, ``sum``, ``s``, ``r``),
* the complete DDG (Fig. 5c) statistics,
* the contracted DDG (Fig. 5d) — only MLI vertices, with the dependency edges
  ``r -> a``, ``s -> a``, ``a -> sum``, ``b -> sum`` (and ``a -> b`` through
  ``foo``),
* the execution-ordered R/W dependency sequence (Fig. 5e), and
* the resulting critical variables (``r`` WAR, ``a`` RAPO, ``sum`` Outcome,
  ``it`` Index).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.api import autocheck_source
from repro.apps.example import EXAMPLE_APP
from repro.core.report import AutoCheckReport


@dataclass
class Figure5Result:
    """Artefacts of the regenerated worked example."""

    report: AutoCheckReport
    mli_variables: List[str]
    complete_nodes: int
    complete_edges: int
    contracted_nodes: List[str]
    contracted_edges: List[Tuple[str, str]]
    rw_sequence: str
    critical_variables: Dict[str, str]

    def summary(self) -> str:
        lines = [
            "Paper Fig. 4 example — AutoCheck reproduction",
            f"MLI variables: {', '.join(self.mli_variables)}",
            f"Complete DDG: {self.complete_nodes} vertices, "
            f"{self.complete_edges} edges",
            "Contracted DDG (Fig. 5d): "
            + ", ".join(f"{p} -> {c}" for p, c in sorted(self.contracted_edges)),
            f"R/W sequence head (Fig. 5e): {self.rw_sequence}",
            "Critical variables: "
            + ", ".join(f"{name} ({dep})" for name, dep in
                        self.critical_variables.items()),
        ]
        return "\n".join(lines)


def run_figure5() -> Figure5Result:
    """Run AutoCheck on the Fig. 4 example and collect the Fig. 5 artefacts."""
    app = EXAMPLE_APP
    source = app.source()
    report = autocheck_source(source, app.main_loop(source), module_name=app.name)

    contracted = report.contracted_ddg
    contracted_edges = [(contracted.node(parent).label, contracted.node(child).label)
                        for parent, child in contracted.edges()]
    complete = report.complete_ddg
    return Figure5Result(
        report=report,
        mli_variables=list(report.mli_variable_names),
        complete_nodes=complete.node_count,
        complete_edges=complete.edge_count,
        contracted_nodes=[node.label for node in contracted.nodes()],
        contracted_edges=contracted_edges,
        rw_sequence=report.rw_sequence.sequence_string(limit=12),
        critical_variables={v.name: v.dependency.value
                            for v in report.critical_variables},
    )


def main() -> None:  # pragma: no cover - thin CLI wrapper
    print(run_figure5().summary())


if __name__ == "__main__":  # pragma: no cover
    main()
