"""Run every experiment and produce one combined report.

``python -m repro.experiments.runner`` (or ``autocheck run-all``) regenerates
the Fig. 5 example, Table II, Table III, Table IV and the validation study,
printing each in turn and optionally writing the combined text to a file.
"""

from __future__ import annotations

import argparse
import time
from typing import List, Optional, Sequence

from repro.experiments.figure5 import run_figure5
from repro.experiments.table2 import format_table2, run_table2
from repro.experiments.table3 import format_table3, run_table3
from repro.experiments.table4 import format_table4, run_table4
from repro.experiments.validation import format_validation, run_validation


def run_all(apps: Optional[Sequence[str]] = None,
            output_path: Optional[str] = None,
            include_validation: bool = True) -> str:
    """Run all experiments and return the combined textual report."""
    sections: List[str] = []
    start = time.perf_counter()

    sections.append("=" * 78)
    sections.append("Worked example (paper Fig. 4 / Fig. 5)")
    sections.append("=" * 78)
    sections.append(run_figure5().summary())

    sections.append("")
    sections.append("=" * 78)
    sections.append("Table II — identified critical variables")
    sections.append("=" * 78)
    sections.append(format_table2(run_table2(apps=apps)))

    sections.append("")
    sections.append("=" * 78)
    sections.append("Table III — efficiency study (seconds)")
    sections.append("=" * 78)
    sections.append(format_table3(run_table3(apps=apps)))

    sections.append("")
    sections.append("=" * 78)
    sections.append("Table IV — checkpoint storage cost")
    sections.append("=" * 78)
    sections.append(format_table4(run_table4(apps=apps)))

    if include_validation:
        sections.append("")
        sections.append("=" * 78)
        sections.append("Validation (Sec. VI-B) — restart sufficiency and necessity")
        sections.append("=" * 78)
        sections.append(format_validation(run_validation(apps=apps)))

    sections.append("")
    sections.append(f"Total experiment wall time: {time.perf_counter() - start:.1f} s")
    report = "\n".join(sections)

    if output_path is not None:
        with open(output_path, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
    return report


def main(argv: Optional[Sequence[str]] = None) -> None:  # pragma: no cover
    parser = argparse.ArgumentParser(description="Run all AutoCheck experiments")
    parser.add_argument("--apps", nargs="*", default=None,
                        help="subset of benchmark names (default: all 14)")
    parser.add_argument("--output", default=None, help="write the report here")
    parser.add_argument("--skip-validation", action="store_true")
    args = parser.parse_args(argv)
    report = run_all(apps=args.apps, output_path=args.output,
                     include_validation=not args.skip_validation)
    print(report)


if __name__ == "__main__":  # pragma: no cover
    main()
