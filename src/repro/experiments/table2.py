"""Table II — benchmarks, trace sizes and identified critical variables.

For every benchmark the harness generates the dynamic trace (to a file, like
the paper's LLVM-Tracer setup), runs AutoCheck, and reports: lines of code,
trace size, trace generation time, the identified critical variables with
their dependency types, the MCLR, and whether the result matches the paper's
Table II row (on the scaled mini-app).
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.apps.base import AppDefinition
from repro.apps.registry import all_apps, get_app
from repro.experiments.common import AppAnalysis, analyze_app
from repro.util.formatting import format_bytes, format_seconds, render_table


@dataclass
class Table2Row:
    """One row of the regenerated Table II."""

    name: str
    description: str
    loc: int
    trace_bytes: int
    trace_generation_seconds: float
    critical_variables: str
    mclr: str
    matches_paper: bool
    mismatch: str
    analysis: AppAnalysis


def run_table2(apps: Optional[Sequence[str]] = None,
               trace_dir: Optional[str] = None,
               params_override: Optional[Dict[str, Dict[str, int]]] = None,
               ) -> List[Table2Row]:
    """Regenerate Table II for the selected benchmarks (default: all 14)."""
    selected: List[AppDefinition]
    if apps is None:
        selected = all_apps()
    else:
        selected = [get_app(name) for name in apps]

    own_dir: Optional[tempfile.TemporaryDirectory] = None
    if trace_dir is None:
        own_dir = tempfile.TemporaryDirectory(prefix="autocheck-traces-")
        trace_dir = own_dir.name

    rows: List[Table2Row] = []
    try:
        for app in selected:
            params = (params_override or {}).get(app.name)
            analysis = analyze_app(app, params=params, trace_dir=trace_dir)
            spec = analysis.report.main_loop
            rows.append(Table2Row(
                name=app.title,
                description=app.description,
                loc=analysis.source_loc,
                trace_bytes=analysis.trace_bytes or 0,
                trace_generation_seconds=analysis.trace_generation_seconds,
                critical_variables=analysis.report.dependency_string(),
                mclr=spec.mclr,
                matches_paper=analysis.matches_expected,
                mismatch=analysis.mismatch_description(),
                analysis=analysis,
            ))
    finally:
        if own_dir is not None:
            own_dir.cleanup()
    return rows


def format_table2(rows: Sequence[Table2Row]) -> str:
    """Render the regenerated Table II as ASCII."""
    table_rows = []
    for row in rows:
        table_rows.append((
            row.name,
            row.loc,
            format_bytes(row.trace_bytes),
            format_seconds(row.trace_generation_seconds),
            row.critical_variables,
            row.mclr,
            "yes" if row.matches_paper else f"no ({row.mismatch})",
        ))
    return render_table(
        ("Name", "LOC", "Trace size", "Trace gen time",
         "Critical variables (dependency type)", "MCLR", "Matches paper"),
        table_rows)


def main() -> None:  # pragma: no cover - thin CLI wrapper
    rows = run_table2()
    print(format_table2(rows))


if __name__ == "__main__":  # pragma: no cover
    main()
