"""Table III — efficiency study (analysis-time breakdown).

The paper reports, per benchmark, the time spent in pre-processing (with and
without the OpenMP parallel trace reading), dependency analysis and critical
variable identification.  The harness reproduces the same breakdown with the
staged multi-pass pipeline — traces are written to files, then analysed once
with the serial reader and once with the parallel block-partitioned reader —
and adds the fused single-pass engine as a third configuration: one streamed
walk of the trace file producing the full report, with its record throughput
(krec/s) and its end-to-end speedup over the serial multi-pass run, so the
single-pass win is visible in the same table.

A fourth configuration measures the parallel fused engine
(``analysis_engine="parallel"``): the same single-pass walk sharded across
worker processes over partitions of the binary trace, reported with its
speedup over the serial fused engine *on the same binary trace* (the fair
baseline — the text-trace columns pay text-parsing costs the sharded walk
never sees).  On a single-core host that column shows the sharding
overhead rather than a speedup.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.apps.base import AppDefinition
from repro.apps.registry import all_apps, get_app
from repro.codegen.lowering import compile_source
from repro.core.config import AutoCheckConfig
from repro.core.pipeline import AutoCheck
from repro.tracer.driver import trace_to_file
from repro.util.formatting import render_table


@dataclass
class Table3Row:
    """One row of the regenerated Table III (times in seconds)."""

    name: str
    trace_bytes: int
    preprocessing_serial: float
    preprocessing_parallel: float
    dependency_analysis: float
    identify_variables: float
    #: end-to-end time of the fused single-pass engine (streaming walk)
    fused_total: float = 0.0
    #: records walked by the fused engine
    record_count: int = 0
    #: end-to-end fused time on the *binary* trace (the parallel engine's
    #: input format — the fair baseline for the parallel speedup)
    fused_binary_total: float = 0.0
    #: end-to-end time of the parallel fused engine (sharded walk)
    parallel_total: float = 0.0
    #: worker count used by the parallel engine run
    parallel_workers: int = 0

    @property
    def total_serial(self) -> float:
        return (self.preprocessing_serial + self.dependency_analysis
                + self.identify_variables)

    @property
    def total_parallel(self) -> float:
        return (self.preprocessing_parallel + self.dependency_analysis
                + self.identify_variables)

    @property
    def preprocessing_speedup(self) -> float:
        if self.preprocessing_parallel <= 0:
            return 0.0
        return self.preprocessing_serial / self.preprocessing_parallel

    @property
    def fused_records_per_second(self) -> float:
        if self.fused_total <= 0:
            return 0.0
        return self.record_count / self.fused_total

    @property
    def fused_speedup(self) -> float:
        """End-to-end gain of the single-pass engine over the serial
        multi-pass pipeline."""
        if self.fused_total <= 0:
            return 0.0
        return self.total_serial / self.fused_total

    @property
    def parallel_speedup(self) -> float:
        """Gain of the sharded walk over the serial fused engine on the
        same (binary) trace.  Bounded by the machine's core count — on a
        single-core host this is the sharding overhead, not a speedup."""
        if self.parallel_total <= 0:
            return 0.0
        return self.fused_binary_total / self.parallel_total


def _analyse(trace_path: str, module, spec, options: Dict[str, object],
             parallel: bool, workers: int, engine: str = "multipass",
             streaming: bool = False):
    config = AutoCheckConfig(main_loop=spec, parallel_preprocessing=parallel,
                             preprocessing_workers=workers,
                             streaming_preprocessing=streaming,
                             analysis_engine=engine,
                             workers=workers,
                             **{k: v for k, v in options.items()
                                if k not in ("parallel_preprocessing",
                                             "preprocessing_workers",
                                             "streaming_preprocessing",
                                             "analysis_engine",
                                             "workers")})
    return AutoCheck(config, trace_path=trace_path, module=module).run()


def run_table3(apps: Optional[Sequence[str]] = None,
               trace_dir: Optional[str] = None,
               workers: int = 4,
               params_override: Optional[Dict[str, Dict[str, int]]] = None,
               ) -> List[Table3Row]:
    """Regenerate Table III for the selected benchmarks (default: all 14)."""
    selected: List[AppDefinition]
    if apps is None:
        selected = all_apps()
    else:
        selected = [get_app(name) for name in apps]

    own_dir: Optional[tempfile.TemporaryDirectory] = None
    if trace_dir is None:
        own_dir = tempfile.TemporaryDirectory(prefix="autocheck-table3-")
        trace_dir = own_dir.name

    rows: List[Table3Row] = []
    try:
        for app in selected:
            params = (params_override or {}).get(app.name, {})
            source = app.source(**params)
            module = compile_source(source, module_name=app.name)
            spec = app.main_loop(source)
            trace_path = os.path.join(trace_dir, f"{app.name}.trace")
            trace_bytes, _ = trace_to_file(module, trace_path, module_name=app.name)
            binary_path = os.path.join(trace_dir, f"{app.name}.btrace")
            trace_to_file(module, binary_path, module_name=app.name,
                          fmt="binary")

            serial_report = _analyse(trace_path, module, spec,
                                     app.autocheck_options, parallel=False,
                                     workers=workers)
            parallel_report = _analyse(trace_path, module, spec,
                                       app.autocheck_options, parallel=True,
                                       workers=workers)
            fused_report = _analyse(trace_path, module, spec,
                                    app.autocheck_options, parallel=False,
                                    workers=workers, engine="fused",
                                    streaming=True)
            fused_binary_report = _analyse(binary_path, module, spec,
                                           app.autocheck_options,
                                           parallel=False, workers=workers,
                                           engine="fused", streaming=True)
            sharded_report = _analyse(binary_path, module, spec,
                                      app.autocheck_options, parallel=False,
                                      workers=workers, engine="parallel")
            rows.append(Table3Row(
                name=app.title,
                trace_bytes=trace_bytes,
                preprocessing_serial=serial_report.timings.get("preprocessing"),
                preprocessing_parallel=parallel_report.timings.get("preprocessing"),
                dependency_analysis=serial_report.timings.get("dependency_analysis"),
                identify_variables=serial_report.timings.get("identify_variables"),
                fused_total=fused_report.timings.total,
                record_count=fused_report.trace_stats.record_count,
                fused_binary_total=fused_binary_report.timings.total,
                parallel_total=sharded_report.timings.total,
                parallel_workers=workers,
            ))
    finally:
        if own_dir is not None:
            own_dir.cleanup()
    return rows


def format_table3(rows: Sequence[Table3Row]) -> str:
    table_rows = []
    for row in rows:
        table_rows.append((
            row.name,
            f"{row.preprocessing_serial:.3f} ({row.preprocessing_parallel:.3f})",
            f"{row.dependency_analysis:.3f}",
            f"{row.identify_variables:.4f}",
            f"{row.total_serial:.3f} ({row.total_parallel:.3f})",
            f"{row.fused_total:.3f} "
            f"[{row.fused_records_per_second / 1000:.0f} krec/s]",
            f"{row.fused_speedup:.2f}x",
            f"{row.parallel_total:.3f} ({row.parallel_speedup:.2f}x "
            f"@{row.parallel_workers}w)",
        ))
    return render_table(
        ("Name", "Pre-processing (with optimization) (s)",
         "Dependency Analysis (s)", "Identify Variables (s)",
         "Total Time (with optimization) (s)",
         "Fused single pass (s) [krec/s]", "Fused speedup",
         "Parallel engine (s) (vs fused, binary)"),
        table_rows)


def main() -> None:  # pragma: no cover - thin CLI wrapper
    rows = run_table3()
    print(format_table3(rows))


if __name__ == "__main__":  # pragma: no cover
    main()
