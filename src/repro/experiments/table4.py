"""Table IV — checkpoint storage cost: AutoCheck vs. BLCR.

For every benchmark the harness:

1. analyses the *small* input to obtain the critical variable set (the paper
   observes — and Sec. VII argues — that the variables to checkpoint do not
   change with the input size);
2. executes the *larger* input (paper Table IV uses bigger problems than the
   analysis runs) and measures
   - the AutoCheck checkpoint size: the bytes occupied by the critical
     variables at that input size, and
   - the BLCR-style whole-process image size (globals + peak stack + process
     overhead).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.apps.base import AppDefinition
from repro.apps.registry import all_apps, get_app
from repro.checkpoint.blcr import BLCRModel
from repro.experiments.common import analyze_app, run_untraced, variable_sizes
from repro.util.formatting import format_bytes, render_table


@dataclass
class Table4Row:
    """One row of the regenerated Table IV."""

    name: str
    input_description: str
    blcr_bytes: int
    autocheck_bytes: int
    critical_variables: List[str]

    @property
    def ratio(self) -> float:
        if self.autocheck_bytes == 0:
            return float("inf")
        return self.blcr_bytes / self.autocheck_bytes


def run_table4(apps: Optional[Sequence[str]] = None,
               model: Optional[BLCRModel] = None,
               use_large_inputs: bool = True) -> List[Table4Row]:
    """Regenerate Table IV for the selected benchmarks (default: all 14)."""
    selected: List[AppDefinition]
    if apps is None:
        selected = all_apps()
    else:
        selected = [get_app(name) for name in apps]
    model = model or BLCRModel()

    rows: List[Table4Row] = []
    for app in selected:
        # 1. Critical variables from the small (analysis) input.
        analysis = analyze_app(app)
        names = analysis.report.names()

        # 2. Measure storage on the larger input.
        params = app.large_params if (use_large_inputs and app.large_params) else {}
        execution = run_untraced(app, params=params)
        sizes = variable_sizes(analysis.module if not params else
                               _large_module(app, params),
                               execution, names,
                               function=app.main_loop_function)
        autocheck_bytes = sum(sizes.values())
        blcr_bytes = model.checkpoint_bytes_from_result(execution)
        rows.append(Table4Row(
            name=app.title,
            input_description=", ".join(f"{k}={v}" for k, v in
                                        (params or app.default_params).items()),
            blcr_bytes=blcr_bytes,
            autocheck_bytes=autocheck_bytes,
            critical_variables=names,
        ))
    return rows


def _large_module(app: AppDefinition, params: Dict[str, int]):
    from repro.codegen.lowering import compile_source

    return compile_source(app.source(**params), module_name=app.name)


def format_table4(rows: Sequence[Table4Row]) -> str:
    table_rows = []
    for row in rows:
        table_rows.append((
            row.name,
            row.input_description,
            format_bytes(row.blcr_bytes),
            format_bytes(row.autocheck_bytes),
            f"{row.ratio:.0f}x",
        ))
    return render_table(
        ("Name", "Input size", "BLCR", "AutoCheck", "Reduction"),
        table_rows)


def main() -> None:  # pragma: no cover - thin CLI wrapper
    rows = run_table4()
    print(format_table4(rows))


if __name__ == "__main__":  # pragma: no cover
    main()
