"""Sec. VI-B — validation and characterization of the variables to checkpoint.

Two studies per benchmark, exactly as the paper describes:

* **Sufficiency**: protect the AutoCheck-detected variables with the FTI-like
  library, inject a fail-stop failure mid-loop, restart, and check the
  combined program output (failed run followed by restarted run) matches the
  failure-free output.
* **Necessity / false positives**: drop one detected variable at a time from
  the recovery and check the output is corrupted — i.e. none of the detected
  variables is unnecessary.  Only the variables the benchmark's registry
  marks output-sensitive are ablated (some checkpointed state, e.g. an
  Outcome overwritten every iteration, is required for state consistency but
  cannot corrupt this particular program's printed output).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.apps.base import AppDefinition
from repro.apps.registry import all_apps, get_app
from repro.checkpoint.validate import RestartValidator
from repro.experiments.common import analyze_app
from repro.util.formatting import render_table


@dataclass
class ValidationRow:
    """Validation outcome for one benchmark."""

    name: str
    protected_variables: List[str]
    restart_successful: bool
    fail_at_iteration: int
    necessary: Dict[str, bool] = field(default_factory=dict)

    @property
    def false_positives(self) -> List[str]:
        return [variable for variable, needed in self.necessary.items() if not needed]


def run_validation(apps: Optional[Sequence[str]] = None,
                   fail_at_iteration: int = 3,
                   run_necessity: bool = True) -> List[ValidationRow]:
    """Run the sufficiency (and optionally necessity) study."""
    selected: List[AppDefinition]
    if apps is None:
        selected = all_apps()
    else:
        selected = [get_app(name) for name in apps]

    rows: List[ValidationRow] = []
    for app in selected:
        analysis = analyze_app(app)
        names = analysis.report.names()
        module = analysis.module
        spec = analysis.report.main_loop
        with RestartValidator(module, spec, benchmark=app.name) as validator:
            outcome = validator.validate(names, fail_at_iteration=fail_at_iteration)
            row = ValidationRow(
                name=app.title,
                protected_variables=names,
                restart_successful=outcome.restart_successful,
                fail_at_iteration=fail_at_iteration,
            )
            if run_necessity:
                check = [name for name in app.necessity_variables() if name in names]
                necessity = validator.necessity_study(
                    names, check_variables=check,
                    fail_at_iteration=fail_at_iteration)
                row.necessary = necessity.necessary
            rows.append(row)
    return rows


def format_validation(rows: Sequence[ValidationRow]) -> str:
    table_rows = []
    for row in rows:
        ablation = ", ".join(f"{name}:{'needed' if needed else 'UNNEEDED'}"
                             for name, needed in row.necessary.items())
        table_rows.append((
            row.name,
            ", ".join(row.protected_variables),
            "success" if row.restart_successful else "FAILED",
            ablation or "-",
        ))
    return render_table(
        ("Name", "Protected variables", "Restart", "Ablation (necessity)"),
        table_rows)


def main() -> None:  # pragma: no cover - thin CLI wrapper
    rows = run_validation()
    print(format_validation(rows))


if __name__ == "__main__":  # pragma: no cover
    main()
