"""``repro.ir`` — an LLVM-like intermediate representation.

The paper's analysis is defined over dynamic *LLVM IR* instruction traces
(paper Table I lists the instruction classes it inspects: ``Load``,
``Store``, ``BitCast``, ``GetElementPtr``, the arithmetic family, ``Alloca``
and ``Call``).  This package provides a small, self-contained IR with exactly
those instruction classes plus the control-flow instructions needed to run
real programs (``Br``, ``ICmp``/``FCmp``, ``Ret``).

Design notes
------------

* Code is kept in ``clang -O0`` style: every source variable lives in an
  ``Alloca`` (or a module-level :class:`GlobalVariable`) and every use is a
  fresh ``Load`` into a new virtual register — this is precisely the SSA
  "reload per use" behaviour the paper's reg-var map relies on.
* Opcode numbers follow LLVM 3.4 so traces look like the paper's Fig. 1/6
  (``Alloca=26``, ``Load=27``, ``Store=28``, ``GetElementPtr=29``,
  ``Call=49``, ...).
* Comparison results are modelled as ``i32`` (no ``i1`` type) to keep the
  interpreter and the trace format simple.
"""

from repro.ir.opcodes import Opcode, ARITHMETIC_OPCODES, MEMORY_OPCODES
from repro.ir.types import (
    IRType,
    IntType,
    FloatType,
    PointerType,
    ArrayType,
    VoidType,
    I32,
    I64,
    F64,
    VOID,
)
from repro.ir.values import Value, Constant, Register, GlobalVariable, Argument
from repro.ir.instructions import (
    Instruction,
    AllocaInst,
    LoadInst,
    StoreInst,
    BinaryInst,
    GEPInst,
    BitCastInst,
    CastInst,
    CmpInst,
    BranchInst,
    CallInst,
    PrintInst,
    RetInst,
)
from repro.ir.module import Module, Function, BasicBlock
from repro.ir.builder import IRBuilder
from repro.ir.printer import print_module, print_function
from repro.ir.verifier import verify_module, VerificationError

__all__ = [
    "Opcode",
    "ARITHMETIC_OPCODES",
    "MEMORY_OPCODES",
    "IRType",
    "IntType",
    "FloatType",
    "PointerType",
    "ArrayType",
    "VoidType",
    "I32",
    "I64",
    "F64",
    "VOID",
    "Value",
    "Constant",
    "Register",
    "GlobalVariable",
    "Argument",
    "Instruction",
    "AllocaInst",
    "LoadInst",
    "StoreInst",
    "BinaryInst",
    "GEPInst",
    "BitCastInst",
    "CastInst",
    "CmpInst",
    "BranchInst",
    "CallInst",
    "PrintInst",
    "RetInst",
    "Module",
    "Function",
    "BasicBlock",
    "IRBuilder",
    "print_module",
    "print_function",
    "verify_module",
    "VerificationError",
]
