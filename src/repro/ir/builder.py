"""A convenience builder for constructing IR, used by the code generator.

The builder keeps track of the current insertion block and hands out
per-function virtual register ids in creation order — mirroring the
temporary-register numbering LLVM-Tracer shows in the paper's figures.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from repro.ir.instructions import (
    AllocaInst,
    BinaryInst,
    BitCastInst,
    BranchInst,
    CallInst,
    CastInst,
    CmpInst,
    GEPInst,
    Instruction,
    LoadInst,
    PrintInst,
    RetInst,
    StoreInst,
)
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.opcodes import Opcode
from repro.ir.types import F64, I32, IRType, PointerType
from repro.ir.values import Constant, Register, Value


class IRBuilder:
    """Append instructions to a function under construction."""

    def __init__(self, module: Module, function: Function) -> None:
        self.module = module
        self.function = function
        self._register_counter = 0
        self.block: Optional[BasicBlock] = None

    # ------------------------------------------------------------------ #
    # Positioning helpers
    # ------------------------------------------------------------------ #
    def new_block(self, name: Optional[str] = None) -> BasicBlock:
        return self.function.add_block(name)

    def set_block(self, block: BasicBlock) -> None:
        self.block = block

    def new_register(self, rtype: IRType) -> Register:
        self._register_counter += 1
        return Register(type=rtype, rid=self._register_counter)

    @property
    def current_block_terminated(self) -> bool:
        return self.block is not None and self.block.is_terminated

    def _insert(self, inst: Instruction) -> Instruction:
        if self.block is None:
            raise RuntimeError("no insertion block selected")
        if self.block.is_terminated:
            # Dead code after return/branch (e.g. code after `return`): drop
            # it — the verifier checks every block has exactly one terminator.
            return inst
        return self.block.append(inst)

    # ------------------------------------------------------------------ #
    # Instruction constructors
    # ------------------------------------------------------------------ #
    def alloca(self, allocated_type: IRType, var_name: str,
               line: int = 0, column: int = 0) -> Register:
        result = self.new_register(PointerType(allocated_type))
        inst = AllocaInst(opcode=Opcode.ALLOCA, operands=[], result=result,
                          line=line, column=column,
                          allocated_type=allocated_type, var_name=var_name)
        self._insert(inst)
        return result

    def load(self, pointer: Value, value_type: IRType,
             line: int = 0, column: int = 0) -> Register:
        result = self.new_register(value_type)
        inst = LoadInst(opcode=Opcode.LOAD, operands=[pointer], result=result,
                        line=line, column=column)
        self._insert(inst)
        return result

    def store(self, value: Value, pointer: Value,
              line: int = 0, column: int = 0) -> None:
        inst = StoreInst(opcode=Opcode.STORE, operands=[value, pointer],
                         result=None, line=line, column=column)
        self._insert(inst)

    def binary(self, opcode: Opcode, lhs: Value, rhs: Value, rtype: IRType,
               line: int = 0, column: int = 0) -> Register:
        result = self.new_register(rtype)
        inst = BinaryInst(opcode=opcode, operands=[lhs, rhs], result=result,
                          line=line, column=column)
        self._insert(inst)
        return result

    def gep(self, base: Value, index: Value, element_type: IRType,
            line: int = 0, column: int = 0) -> Register:
        result = self.new_register(PointerType(element_type))
        inst = GEPInst(opcode=Opcode.GETELEMENTPTR, operands=[base, index],
                       result=result, line=line, column=column,
                       element_type=element_type)
        self._insert(inst)
        return result

    def bitcast(self, value: Value, rtype: IRType,
                line: int = 0, column: int = 0) -> Register:
        result = self.new_register(rtype)
        inst = BitCastInst(opcode=Opcode.BITCAST, operands=[value], result=result,
                           line=line, column=column)
        self._insert(inst)
        return result

    def cast(self, opcode: Opcode, value: Value, rtype: IRType,
             line: int = 0, column: int = 0) -> Register:
        result = self.new_register(rtype)
        inst = CastInst(opcode=opcode, operands=[value], result=result,
                        line=line, column=column)
        self._insert(inst)
        return result

    def icmp(self, predicate: str, lhs: Value, rhs: Value,
             line: int = 0, column: int = 0) -> Register:
        result = self.new_register(I32)
        inst = CmpInst(opcode=Opcode.ICMP, operands=[lhs, rhs], result=result,
                       line=line, column=column, predicate=predicate)
        self._insert(inst)
        return result

    def fcmp(self, predicate: str, lhs: Value, rhs: Value,
             line: int = 0, column: int = 0) -> Register:
        result = self.new_register(I32)
        inst = CmpInst(opcode=Opcode.FCMP, operands=[lhs, rhs], result=result,
                       line=line, column=column, predicate=predicate)
        self._insert(inst)
        return result

    def br(self, target: BasicBlock, line: int = 0, column: int = 0) -> None:
        inst = BranchInst(opcode=Opcode.BR, operands=[], result=None,
                          line=line, column=column, targets=[target])
        self._insert(inst)

    def cond_br(self, cond: Value, true_block: BasicBlock, false_block: BasicBlock,
                line: int = 0, column: int = 0) -> None:
        inst = BranchInst(opcode=Opcode.BR, operands=[cond], result=None,
                          line=line, column=column,
                          targets=[true_block, false_block])
        self._insert(inst)

    def call(self, callee: str, args: Sequence[Value], return_type: IRType,
             is_builtin: bool, param_names: Tuple[str, ...] = (),
             line: int = 0, column: int = 0) -> Optional[Register]:
        result = None
        if return_type.size_in_bits() > 0:
            result = self.new_register(return_type)
        inst = CallInst(opcode=Opcode.CALL, operands=list(args), result=result,
                        line=line, column=column, callee=callee,
                        is_builtin=is_builtin, param_names=param_names)
        self._insert(inst)
        return result

    def print_(self, values: Sequence[Value], labels: Sequence[Optional[str]],
               line: int = 0, column: int = 0) -> None:
        inst = PrintInst(opcode=Opcode.CALL, operands=list(values), result=None,
                         line=line, column=column, labels=list(labels))
        self._insert(inst)

    def ret(self, value: Optional[Value] = None,
            line: int = 0, column: int = 0) -> None:
        operands: List[Value] = [value] if value is not None else []
        inst = RetInst(opcode=Opcode.RET, operands=operands, result=None,
                       line=line, column=column)
        self._insert(inst)

    # ------------------------------------------------------------------ #
    # Constants
    # ------------------------------------------------------------------ #
    @staticmethod
    def const_int(value: int) -> Constant:
        return Constant(type=I32, value=int(value))

    @staticmethod
    def const_float(value: float) -> Constant:
        return Constant(type=F64, value=float(value))

    @staticmethod
    def const(value: Union[int, float]) -> Constant:
        if isinstance(value, int):
            return IRBuilder.const_int(value)
        return IRBuilder.const_float(value)
