"""IR instruction classes.

Each instruction records the source line/column it was lowered from so the
dynamic trace can be partitioned around the main computation loop's source
range, exactly as AutoCheck's inputs require.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.ir.opcodes import ARITHMETIC_OPCODES, Opcode
from repro.ir.types import IRType
from repro.ir.values import Register, Value


@dataclass(eq=False)
class Instruction:
    """Base class for all instructions."""

    opcode: Opcode
    operands: List[Value] = field(default_factory=list)
    result: Optional[Register] = None
    line: int = 0
    column: int = 0
    parent: Optional["object"] = None  # BasicBlock; untyped to avoid import cycle

    @property
    def mnemonic(self) -> str:
        return self.opcode.mnemonic

    @property
    def is_terminator(self) -> bool:
        return self.opcode in (Opcode.BR, Opcode.RET)

    @property
    def is_arithmetic(self) -> bool:
        return self.opcode in ARITHMETIC_OPCODES

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        res = f"%{self.result.rid} = " if self.result is not None else ""
        ops = ", ".join(op.display_name() for op in self.operands)
        return f"{res}{self.mnemonic.lower()} {ops} (line {self.line})"


@dataclass(eq=False)
class AllocaInst(Instruction):
    """Stack allocation of a named local variable (paper Fig. 6c)."""

    allocated_type: IRType = None  # type: ignore[assignment]
    var_name: str = ""

    def __post_init__(self) -> None:
        self.opcode = Opcode.ALLOCA


@dataclass(eq=False)
class LoadInst(Instruction):
    """Load a scalar from memory: ``operands = [pointer]``."""

    def __post_init__(self) -> None:
        self.opcode = Opcode.LOAD

    @property
    def pointer(self) -> Value:
        return self.operands[0]


@dataclass(eq=False)
class StoreInst(Instruction):
    """Store a scalar to memory: ``operands = [value, pointer]``."""

    def __post_init__(self) -> None:
        self.opcode = Opcode.STORE

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def pointer(self) -> Value:
        return self.operands[1]


@dataclass(eq=False)
class BinaryInst(Instruction):
    """Arithmetic / bitwise binary operation: ``operands = [lhs, rhs]``."""

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]


@dataclass(eq=False)
class GEPInst(Instruction):
    """``getelementptr``: compute an element address.

    ``operands = [base_pointer, flat_index]``; ``element_type`` is the scalar
    element addressed (used for byte offsets).
    """

    element_type: IRType = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.opcode = Opcode.GETELEMENTPTR

    @property
    def base(self) -> Value:
        return self.operands[0]

    @property
    def index(self) -> Value:
        return self.operands[1]


@dataclass(eq=False)
class BitCastInst(Instruction):
    """Pointer-preserving cast (paper Table I lists BitCast as a complement
    instruction used for the reg-var map)."""

    def __post_init__(self) -> None:
        self.opcode = Opcode.BITCAST


@dataclass(eq=False)
class CastInst(Instruction):
    """Numeric conversions (``sitofp``, ``fptosi``, ``sext``, ...)."""


_CMP_PREDICATES = ("eq", "ne", "lt", "le", "gt", "ge")


@dataclass(eq=False)
class CmpInst(Instruction):
    """Integer or floating comparison producing an ``i32`` 0/1 value."""

    predicate: str = "eq"

    def __post_init__(self) -> None:
        if self.predicate not in _CMP_PREDICATES:
            raise ValueError(f"unknown comparison predicate {self.predicate!r}")


@dataclass(eq=False)
class BranchInst(Instruction):
    """Conditional or unconditional branch.

    ``operands`` holds the condition when conditional; the targets are kept
    as block references in ``targets`` (true target first).
    """

    targets: List["object"] = field(default_factory=list)  # List[BasicBlock]

    def __post_init__(self) -> None:
        self.opcode = Opcode.BR

    @property
    def is_conditional(self) -> bool:
        return len(self.operands) == 1


@dataclass(eq=False)
class CallInst(Instruction):
    """A call to a user function or a runtime builtin.

    For user functions the interpreter pushes a new frame and the trace
    contains the callee body ("Call followed by its function body",
    paper Fig. 6b).  For builtins (``sqrt``, ``pow``, ...) only a single
    ``Call`` record is produced ("Call instruction only", Fig. 6a).
    """

    callee: str = ""
    is_builtin: bool = False
    #: formal parameter names of the callee (user functions only) — emitted in
    #: the trace record so the analysis can correlate arguments and parameters.
    param_names: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        self.opcode = Opcode.CALL


@dataclass(eq=False)
class PrintInst(Instruction):
    """The ``print`` builtin: produces observable program output.

    ``labels[i]`` (possibly ``None``) is a string literal printed before the
    ``i``-th numeric operand; trailing labels are allowed.  Modelled as a
    call in the trace (callee ``print``).
    """

    labels: List[Optional[str]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.opcode = Opcode.CALL


@dataclass(eq=False)
class RetInst(Instruction):
    """Function return; ``operands = [value]`` or empty for ``void``."""

    def __post_init__(self) -> None:
        self.opcode = Opcode.RET


def binary_opcode(op: str, is_float: bool) -> Opcode:
    """Map a mini-C operator to the matching IR opcode."""
    table = {
        "+": (Opcode.ADD, Opcode.FADD),
        "-": (Opcode.SUB, Opcode.FSUB),
        "*": (Opcode.MUL, Opcode.FMUL),
        "/": (Opcode.SDIV, Opcode.FDIV),
        "%": (Opcode.SREM, Opcode.FREM),
        "&&": (Opcode.AND, Opcode.AND),
        "||": (Opcode.OR, Opcode.OR),
    }
    if op not in table:
        raise ValueError(f"unsupported binary operator {op!r}")
    int_op, float_op = table[op]
    return float_op if is_float else int_op
