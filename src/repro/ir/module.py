"""Module / function / basic-block containers for the LLVM-like IR."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.ir.instructions import Instruction
from repro.ir.types import IRType, VOID
from repro.ir.values import Argument, GlobalVariable


@dataclass(eq=False)
class BasicBlock:
    """A straight-line sequence of instructions ending in a terminator."""

    name: str
    label: int = 0
    instructions: List[Instruction] = field(default_factory=list)
    parent: Optional["Function"] = None

    def append(self, inst: Instruction) -> Instruction:
        inst.parent = self
        self.instructions.append(inst)
        return inst

    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    @property
    def is_terminated(self) -> bool:
        return self.terminator is not None

    def successors(self) -> List["BasicBlock"]:
        term = self.terminator
        if term is None:
            return []
        targets = getattr(term, "targets", [])
        return list(targets)

    @property
    def first_line(self) -> int:
        for inst in self.instructions:
            if inst.line:
                return inst.line
        return 0

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<BasicBlock {self.name} ({len(self.instructions)} insts)>"


@dataclass(eq=False)
class Function:
    """An IR function: named arguments plus an ordered list of basic blocks."""

    name: str
    return_type: IRType = VOID
    args: List[Argument] = field(default_factory=list)
    blocks: List[BasicBlock] = field(default_factory=list)
    #: 1-based source line of the ``{`` opening the function body.
    line: int = 0

    def add_block(self, name: Optional[str] = None) -> BasicBlock:
        label = len(self.blocks)
        block = BasicBlock(name=name or f"bb{label}", label=label, parent=self)
        self.blocks.append(block)
        return block

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"function {self.name!r} has no blocks")
        return self.blocks[0]

    def block_by_name(self, name: str) -> BasicBlock:
        for block in self.blocks:
            if block.name == name:
                return block
        raise KeyError(name)

    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from block.instructions

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Function {self.name} ({len(self.blocks)} blocks)>"


@dataclass(eq=False)
class Module:
    """A compiled mini-C translation unit."""

    name: str = "module"
    globals: List[GlobalVariable] = field(default_factory=list)
    functions: Dict[str, Function] = field(default_factory=dict)
    #: The original mini-C source text (used by error messages and reports).
    source: str = ""

    def add_global(self, gvar: GlobalVariable) -> GlobalVariable:
        self.globals.append(gvar)
        return gvar

    def add_function(self, function: Function) -> Function:
        if function.name in self.functions:
            raise ValueError(f"duplicate function {function.name!r}")
        self.functions[function.name] = function
        return function

    def function(self, name: str) -> Function:
        return self.functions[name]

    def global_variable(self, name: str) -> GlobalVariable:
        for gvar in self.globals:
            if gvar.name == name:
                return gvar
        raise KeyError(name)

    def instruction_count(self) -> int:
        return sum(
            len(block.instructions)
            for function in self.functions.values()
            for block in function.blocks
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Module {self.name}: {len(self.globals)} globals, "
                f"{len(self.functions)} functions>")
