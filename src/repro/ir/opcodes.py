"""Opcode numbering for the LLVM-like IR.

The numbers follow LLVM 3.4 (the LLVM version used with LLVM-Tracer 1.2 in
the paper) so that trace records look like the paper's examples: Fig. 1 shows
``27`` for ``Load`` and Fig. 6 shows ``49`` for ``Call`` and ``26`` for
``Alloca``.
"""

from __future__ import annotations

import enum
from typing import FrozenSet


class Opcode(enum.IntEnum):
    """Instruction opcodes (values match LLVM 3.4's ``Instruction.def``)."""

    RET = 1
    BR = 2

    ADD = 8
    FADD = 9
    SUB = 10
    FSUB = 11
    MUL = 12
    FMUL = 13
    UDIV = 14
    SDIV = 15
    FDIV = 16
    UREM = 17
    SREM = 18
    FREM = 19

    AND = 23
    OR = 24
    XOR = 25

    ALLOCA = 26
    LOAD = 27
    STORE = 28
    GETELEMENTPTR = 29

    TRUNC = 33
    ZEXT = 34
    SEXT = 35
    FPTOUI = 36
    FPTOSI = 37
    UITOFP = 38
    SITOFP = 39
    FPTRUNC = 40
    FPEXT = 41
    PTRTOINT = 42
    INTTOPTR = 43
    BITCAST = 44

    ICMP = 46
    FCMP = 47
    PHI = 48
    CALL = 49
    SELECT = 50

    @property
    def mnemonic(self) -> str:
        return _MNEMONICS[self]


_MNEMONICS = {
    Opcode.RET: "Ret",
    Opcode.BR: "Br",
    Opcode.ADD: "Add",
    Opcode.FADD: "FAdd",
    Opcode.SUB: "Sub",
    Opcode.FSUB: "FSub",
    Opcode.MUL: "Mul",
    Opcode.FMUL: "FMul",
    Opcode.UDIV: "UDiv",
    Opcode.SDIV: "SDiv",
    Opcode.FDIV: "FDiv",
    Opcode.UREM: "URem",
    Opcode.SREM: "SRem",
    Opcode.FREM: "FRem",
    Opcode.AND: "And",
    Opcode.OR: "Or",
    Opcode.XOR: "Xor",
    Opcode.ALLOCA: "Alloca",
    Opcode.LOAD: "Load",
    Opcode.STORE: "Store",
    Opcode.GETELEMENTPTR: "GetElementPtr",
    Opcode.TRUNC: "Trunc",
    Opcode.ZEXT: "ZExt",
    Opcode.SEXT: "SExt",
    Opcode.FPTOUI: "FPToUI",
    Opcode.FPTOSI: "FPToSI",
    Opcode.UITOFP: "UIToFP",
    Opcode.SITOFP: "SIToFP",
    Opcode.FPTRUNC: "FPTrunc",
    Opcode.FPEXT: "FPExt",
    Opcode.PTRTOINT: "PtrToInt",
    Opcode.INTTOPTR: "IntToPtr",
    Opcode.BITCAST: "BitCast",
    Opcode.ICMP: "ICmp",
    Opcode.FCMP: "FCmp",
    Opcode.PHI: "Phi",
    Opcode.CALL: "Call",
    Opcode.SELECT: "Select",
}

#: Opcodes treated as "arithmetic instructions" by the analysis
#: (paper Table I: Add, FAdd, Sub, FSub, Mul, FMul, UDiv, SDiv, FDiv —
#: we include the remainder/logical family for completeness).
ARITHMETIC_OPCODES: FrozenSet[Opcode] = frozenset(
    {
        Opcode.ADD,
        Opcode.FADD,
        Opcode.SUB,
        Opcode.FSUB,
        Opcode.MUL,
        Opcode.FMUL,
        Opcode.UDIV,
        Opcode.SDIV,
        Opcode.FDIV,
        Opcode.UREM,
        Opcode.SREM,
        Opcode.FREM,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
    }
)

#: Opcodes that touch memory through a named variable operand.
MEMORY_OPCODES: FrozenSet[Opcode] = frozenset(
    {Opcode.LOAD, Opcode.STORE, Opcode.GETELEMENTPTR, Opcode.ALLOCA}
)

#: Opcodes that simply forward a pointer/value to a new register
#: ("pointer assignment" in the paper's pre-processing description).
FORWARDING_OPCODES: FrozenSet[Opcode] = frozenset(
    {
        Opcode.BITCAST,
        Opcode.TRUNC,
        Opcode.ZEXT,
        Opcode.SEXT,
        Opcode.FPTOSI,
        Opcode.FPTOUI,
        Opcode.SITOFP,
        Opcode.UITOFP,
        Opcode.FPTRUNC,
        Opcode.FPEXT,
        Opcode.PTRTOINT,
        Opcode.INTTOPTR,
    }
)

#: Raw-integer mirrors of the opcode sets above, for per-record hot paths.
#: ``record.opcode in ARITHMETIC_OPCODE_VALUES`` is a plain int hash probe;
#: the enum-typed form (``Opcode(record.opcode) in ARITHMETIC_OPCODES``) pays
#: an ``Opcode.__call__`` lookup per record, which dominates when millions of
#: records are classified (~20x slower per check, see bench_engine_fused.py).
ARITHMETIC_OPCODE_VALUES: FrozenSet[int] = frozenset(
    int(op) for op in ARITHMETIC_OPCODES)
MEMORY_OPCODE_VALUES: FrozenSet[int] = frozenset(
    int(op) for op in MEMORY_OPCODES)
FORWARDING_OPCODE_VALUES: FrozenSet[int] = frozenset(
    int(op) for op in FORWARDING_OPCODES)
