"""Textual (LLVM-assembly-flavoured) printer for the IR.

Used for debugging, for golden tests of the code generator, and by the
examples when showing what the lowered benchmark looks like.
"""

from __future__ import annotations

from typing import List

from repro.ir.instructions import (
    AllocaInst,
    BranchInst,
    CallInst,
    CmpInst,
    GEPInst,
    Instruction,
    PrintInst,
)
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.values import Constant, GlobalVariable, Register, Value


def _value_str(value: Value) -> str:
    if isinstance(value, Register):
        return f"%{value.rid}"
    if isinstance(value, Constant):
        return str(value.value)
    if isinstance(value, GlobalVariable):
        return f"@{value.name}"
    return value.display_name()


def _inst_str(inst: Instruction) -> str:
    prefix = f"%{inst.result.rid} = " if inst.result is not None else ""
    suffix = f"  ; line {inst.line}" if inst.line else ""
    if isinstance(inst, AllocaInst):
        body = f"alloca {inst.allocated_type}, name \"{inst.var_name}\""
    elif isinstance(inst, GEPInst):
        body = (f"getelementptr {inst.element_type}, "
                f"{_value_str(inst.base)}, {_value_str(inst.index)}")
    elif isinstance(inst, CmpInst):
        kind = "icmp" if inst.opcode.name == "ICMP" else "fcmp"
        body = (f"{kind} {inst.predicate} {_value_str(inst.operands[0])}, "
                f"{_value_str(inst.operands[1])}")
    elif isinstance(inst, BranchInst):
        if inst.is_conditional:
            body = (f"br {_value_str(inst.operands[0])}, "
                    f"label %{inst.targets[0].name}, label %{inst.targets[1].name}")
        else:
            body = f"br label %{inst.targets[0].name}"
    elif isinstance(inst, PrintInst):
        args = ", ".join(_value_str(op) for op in inst.operands)
        body = f"call void @print({args})"
    elif isinstance(inst, CallInst):
        args = ", ".join(_value_str(op) for op in inst.operands)
        body = f"call @{inst.callee}({args})"
    else:
        args = ", ".join(_value_str(op) for op in inst.operands)
        body = f"{inst.mnemonic.lower()} {args}"
    return f"  {prefix}{body}{suffix}"


def print_block(block: BasicBlock) -> str:
    lines: List[str] = [f"{block.name}:"]
    lines.extend(_inst_str(inst) for inst in block.instructions)
    return "\n".join(lines)


def print_function(function: Function) -> str:
    params = ", ".join(f"{arg.type} %{arg.name}" for arg in function.args)
    lines = [f"define {function.return_type} @{function.name}({params}) {{"]
    for block in function.blocks:
        lines.append(print_block(block))
    lines.append("}")
    return "\n".join(lines)


def print_module(module: Module) -> str:
    lines: List[str] = [f"; module {module.name}"]
    for gvar in module.globals:
        init = f" = {gvar.initializer}" if gvar.initializer is not None else ""
        lines.append(f"@{gvar.name} : {gvar.value_type}{init}")
    if module.globals:
        lines.append("")
    for function in module.functions.values():
        lines.append(print_function(function))
        lines.append("")
    return "\n".join(lines)
