"""IR-level types.

Only the types needed by mini-C are modelled: 32-bit integers, 64-bit
doubles, pointers, fixed-size (flattened) arrays and ``void``.  Sizes in
bits/bytes are used both by the memory model (element addressing) and by the
checkpoint storage-cost study (Table IV).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class IRType:
    """Base class of all IR types."""

    def size_in_bits(self) -> int:
        raise NotImplementedError

    def size_in_bytes(self) -> int:
        return self.size_in_bits() // 8

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_float(self) -> bool:
        return isinstance(self, FloatType)

    @property
    def is_int(self) -> bool:
        return isinstance(self, IntType)


@dataclass(frozen=True)
class IntType(IRType):
    bits: int = 32

    def size_in_bits(self) -> int:
        return self.bits

    def __str__(self) -> str:
        return f"i{self.bits}"


@dataclass(frozen=True)
class FloatType(IRType):
    bits: int = 64

    def size_in_bits(self) -> int:
        return self.bits

    def __str__(self) -> str:
        return "double" if self.bits == 64 else f"f{self.bits}"


@dataclass(frozen=True)
class VoidType(IRType):
    def size_in_bits(self) -> int:
        return 0

    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class PointerType(IRType):
    pointee: IRType = None  # type: ignore[assignment]

    def size_in_bits(self) -> int:
        return 64

    def __str__(self) -> str:
        return f"{self.pointee}*"


@dataclass(frozen=True)
class ArrayType(IRType):
    """A flattened fixed-size array; ``dims`` keeps the source-level shape."""

    element: IRType = None  # type: ignore[assignment]
    dims: Tuple[int, ...] = ()

    @property
    def count(self) -> int:
        total = 1
        for dim in self.dims:
            total *= dim
        return total

    def size_in_bits(self) -> int:
        return self.count * self.element.size_in_bits()

    def __str__(self) -> str:
        return f"[{ ' x '.join(str(d) for d in self.dims) } x {self.element}]"


I32 = IntType(32)
I64 = IntType(64)
F64 = FloatType(64)
VOID = VoidType()


def scalar_size_bits(ty: IRType) -> int:
    """Size of a scalar value of type ``ty`` as reported in trace operands."""
    if isinstance(ty, ArrayType):
        return ty.element.size_in_bits()
    return ty.size_in_bits()
