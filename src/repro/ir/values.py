"""IR value hierarchy: constants, virtual registers, globals and arguments."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.ir.types import ArrayType, IRType, PointerType


@dataclass(eq=False)
class Value:
    """Base class of everything that can appear as an instruction operand."""

    type: IRType

    @property
    def is_register(self) -> bool:
        return isinstance(self, Register)

    def display_name(self) -> str:
        raise NotImplementedError


@dataclass(eq=False)
class Constant(Value):
    """An immediate integer/float constant."""

    value: Union[int, float] = 0

    def display_name(self) -> str:
        return str(self.value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Constant({self.type}, {self.value})"


@dataclass(eq=False)
class Register(Value):
    """A virtual (SSA temporary) register.

    Registers are numbered per function in creation order — the same integer
    naming LLVM-Tracer shows (e.g. temporary register ``8`` in the paper's
    Fig. 1).
    """

    rid: int = 0

    def display_name(self) -> str:
        return str(self.rid)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"%{self.rid}:{self.type}"


@dataclass(eq=False)
class GlobalVariable(Value):
    """A module-level variable.

    ``type`` is the *pointer* type (like LLVM globals); ``value_type`` is the
    stored scalar/array type, and ``initializer`` an optional constant.
    """

    name: str = ""
    value_type: IRType = None  # type: ignore[assignment]
    initializer: Optional[Union[int, float]] = None

    def display_name(self) -> str:
        return self.name

    @property
    def size_in_bytes(self) -> int:
        return self.value_type.size_in_bytes()

    @property
    def is_array(self) -> bool:
        return isinstance(self.value_type, ArrayType)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"@{self.name}:{self.value_type}"


@dataclass(eq=False)
class Argument(Value):
    """A formal function parameter."""

    name: str = ""
    index: int = 0

    def display_name(self) -> str:
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"arg {self.name}:{self.type}"


def pointer_to(value: Value) -> PointerType:
    """Return the pointer type addressing ``value``'s stored data."""
    if isinstance(value, GlobalVariable):
        return PointerType(value.value_type)
    return PointerType(value.type)
