"""Structural verifier for the LLVM-like IR.

The verifier is run on every module the code generator produces (it is cheap)
and is also exercised directly by the test suite.  It catches the classes of
mistakes that would otherwise surface as confusing interpreter failures:
missing terminators, uses of undefined registers, branches to foreign blocks,
stores through non-pointer operands, and calls to unknown functions.
"""

from __future__ import annotations

from typing import Set

from repro.ir.instructions import (
    AllocaInst,
    BranchInst,
    CallInst,
    GEPInst,
    LoadInst,
    PrintInst,
    StoreInst,
)
from repro.ir.module import Function, Module
from repro.ir.types import PointerType
from repro.ir.values import Argument, Constant, GlobalVariable, Register, Value
from repro.minicc.sema import BUILTIN_FUNCTIONS


class VerificationError(Exception):
    """Raised when a module violates a structural invariant."""


def verify_module(module: Module) -> None:
    """Verify every function in ``module``; raise on the first violation."""
    if not module.functions:
        raise VerificationError("module has no functions")
    if "main" not in module.functions:
        raise VerificationError("module has no 'main' function")
    global_names = {gvar.name for gvar in module.globals}
    if len(global_names) != len(module.globals):
        raise VerificationError("duplicate global variable names")
    for function in module.functions.values():
        _verify_function(module, function)


def _verify_function(module: Module, function: Function) -> None:
    if not function.blocks:
        raise VerificationError(f"function {function.name!r} has no blocks")

    block_set = set(function.blocks)
    defined: Set[int] = set()

    # First pass: collect register definitions (registers are assigned once
    # by construction; codegen allocates a fresh id per instruction).
    for inst in function.instructions():
        if inst.result is not None:
            if inst.result.rid in defined:
                raise VerificationError(
                    f"{function.name}: register %{inst.result.rid} defined twice")
            defined.add(inst.result.rid)

    for block in function.blocks:
        if not block.instructions:
            raise VerificationError(
                f"{function.name}/{block.name}: empty basic block")
        terminator = block.instructions[-1]
        if not terminator.is_terminator:
            raise VerificationError(
                f"{function.name}/{block.name}: block does not end in a terminator")
        for idx, inst in enumerate(block.instructions):
            if inst.is_terminator and idx != len(block.instructions) - 1:
                raise VerificationError(
                    f"{function.name}/{block.name}: terminator in the middle of a block")
            _verify_instruction(module, function, block.name, inst, defined, block_set)


def _verify_instruction(module: Module, function: Function, block_name: str,
                        inst, defined: Set[int], block_set) -> None:
    where = f"{function.name}/{block_name}"

    for operand in inst.operands:
        _verify_operand(where, operand, defined)

    if isinstance(inst, BranchInst):
        for target in inst.targets:
            if target not in block_set:
                raise VerificationError(
                    f"{where}: branch target {target.name!r} not in function")
        if inst.is_conditional and len(inst.targets) != 2:
            raise VerificationError(f"{where}: conditional branch needs two targets")
        if not inst.is_conditional and len(inst.targets) != 1:
            raise VerificationError(f"{where}: unconditional branch needs one target")
    elif isinstance(inst, LoadInst):
        _require_pointer(where, inst.pointer)
    elif isinstance(inst, StoreInst):
        if len(inst.operands) != 2:
            raise VerificationError(f"{where}: store needs exactly two operands")
        _require_pointer(where, inst.pointer)
    elif isinstance(inst, GEPInst):
        _require_pointer(where, inst.base)
    elif isinstance(inst, AllocaInst):
        if not inst.var_name:
            raise VerificationError(f"{where}: alloca without a variable name")
    elif isinstance(inst, PrintInst):
        pass
    elif isinstance(inst, CallInst):
        if inst.is_builtin:
            if inst.callee not in BUILTIN_FUNCTIONS:
                raise VerificationError(f"{where}: unknown builtin {inst.callee!r}")
        elif inst.callee not in module.functions:
            raise VerificationError(f"{where}: call to undefined function {inst.callee!r}")


def _verify_operand(where: str, operand: Value, defined: Set[int]) -> None:
    if isinstance(operand, Register):
        if operand.rid not in defined:
            raise VerificationError(f"{where}: use of undefined register %{operand.rid}")
    elif isinstance(operand, (Constant, GlobalVariable, Argument)):
        return
    else:
        raise VerificationError(f"{where}: unsupported operand kind {type(operand).__name__}")


def _require_pointer(where: str, operand: Value) -> None:
    ptype = operand.type
    if isinstance(operand, GlobalVariable):
        return
    if not isinstance(ptype, PointerType):
        raise VerificationError(f"{where}: expected a pointer operand, got {ptype}")
