"""Structural verifier for the LLVM-like IR.

The verifier is run on every module the code generator produces (it is cheap)
and is also exercised directly by the test suite.  It catches the classes of
mistakes that would otherwise surface as confusing interpreter failures:
missing terminators, uses of undefined registers, branches to foreign blocks,
stores through non-pointer operands, calls to unknown functions, blocks the
entry can never reach, and register uses their definition does not dominate.

Errors carry **structured context** — :attr:`VerificationError.function`,
:attr:`~VerificationError.block` and
:attr:`~VerificationError.instruction_index` — alongside the formatted
message, so tooling (and tests) can pinpoint the offending site without
parsing strings.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set, Tuple

from repro.ir.instructions import (
    AllocaInst,
    BranchInst,
    CallInst,
    GEPInst,
    Instruction,
    LoadInst,
    PrintInst,
    StoreInst,
)
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.types import PointerType
from repro.ir.values import Argument, Constant, GlobalVariable, Register, Value
from repro.minicc.sema import BUILTIN_FUNCTIONS


class VerificationError(Exception):
    """Raised when a module violates a structural invariant.

    Attributes:
        function: name of the offending function, when known.
        block: name of the offending basic block, when known.
        instruction_index: position of the offending instruction inside
            its block, when the violation is instruction-level.
    """

    def __init__(self, message: str, *, function: Optional[str] = None,
                 block: Optional[str] = None,
                 instruction_index: Optional[int] = None) -> None:
        super().__init__(message)
        self.function = function
        self.block = block
        self.instruction_index = instruction_index


def verify_module(module: Module) -> None:
    """Verify every function in ``module``; raise on the first violation."""
    if not module.functions:
        raise VerificationError("module has no functions")
    if "main" not in module.functions:
        raise VerificationError("module has no 'main' function")
    global_names = {gvar.name for gvar in module.globals}
    if len(global_names) != len(module.globals):
        raise VerificationError("duplicate global variable names")
    for function in module.functions.values():
        _verify_function(module, function)


def _verify_function(module: Module, function: Function) -> None:
    if not function.blocks:
        raise VerificationError(f"function {function.name!r} has no blocks",
                                function=function.name)

    block_set = set(function.blocks)
    defined: Set[int] = set()
    def_sites: Dict[int, Tuple[BasicBlock, int]] = {}

    # First pass: collect register definitions (registers are assigned once
    # by construction; codegen allocates a fresh id per instruction).
    for block in function.blocks:
        for index, inst in enumerate(block.instructions):
            if inst.result is not None:
                if inst.result.rid in defined:
                    raise VerificationError(
                        f"{function.name}: register %{inst.result.rid} "
                        f"defined twice",
                        function=function.name, block=block.name,
                        instruction_index=index)
                defined.add(inst.result.rid)
                def_sites[inst.result.rid] = (block, index)

    for block in function.blocks:
        if not block.instructions:
            raise VerificationError(
                f"{function.name}/{block.name}: empty basic block",
                function=function.name, block=block.name)
        terminator = block.instructions[-1]
        if not terminator.is_terminator:
            raise VerificationError(
                f"{function.name}/{block.name}: block does not end in a "
                f"terminator",
                function=function.name, block=block.name)
        for idx, inst in enumerate(block.instructions):
            if inst.is_terminator and idx != len(block.instructions) - 1:
                raise VerificationError(
                    f"{function.name}/{block.name}: terminator in the middle "
                    f"of a block",
                    function=function.name, block=block.name,
                    instruction_index=idx)
            _verify_instruction(module, function, block, idx, inst,
                                defined, block_set)

    # Flow-sensitive checks run only once the structure is sound: they need
    # every block non-empty and every branch target in-function.
    _verify_reachability_and_dominance(function, def_sites)


def _verify_reachability_and_dominance(
        function: Function,
        def_sites: Dict[int, Tuple[BasicBlock, int]]) -> None:
    """Reject unreachable blocks and register uses not dominated by
    their definition.

    Codegen never emits either, so both indicate a broken transformation
    (or a hand-built module): an unreachable block is dead weight the
    interpreter can never validate, and a use the definition does not
    dominate can read an undefined value along some path.
    """
    # Deferred import: repro.analysis depends on repro.ir at module load.
    from repro.analysis.cfg import build_cfg
    from repro.analysis.dominators import compute_dominators

    cfg = build_cfg(function)
    reachable = cfg.reachable_blocks()
    for block in function.blocks:
        if block not in reachable:
            raise VerificationError(
                f"{function.name}/{block.name}: unreachable block "
                f"(no path from entry)",
                function=function.name, block=block.name)

    dom = compute_dominators(cfg)
    for block in function.blocks:
        for idx, inst in enumerate(block.instructions):
            for operand in inst.operands:
                if not isinstance(operand, Register):
                    continue
                def_block, def_index = def_sites[operand.rid]
                if def_block is block:
                    dominated = def_index < idx
                else:
                    dominated = dom.strictly_dominates(def_block, block)
                if not dominated:
                    raise VerificationError(
                        f"{function.name}/{block.name}: use of register "
                        f"%{operand.rid} at instruction {idx} is not "
                        f"dominated by its definition "
                        f"({def_block.name}[{def_index}])",
                        function=function.name, block=block.name,
                        instruction_index=idx)


def _verify_instruction(module: Module, function: Function, block: BasicBlock,
                        index: int, inst: Instruction, defined: Set[int],
                        block_set: Set[BasicBlock]) -> None:
    where = f"{function.name}/{block.name}"

    def fail(message: str) -> VerificationError:
        return VerificationError(message, function=function.name,
                                 block=block.name, instruction_index=index)

    for operand in inst.operands:
        _verify_operand(where, operand, defined, fail)

    if isinstance(inst, BranchInst):
        for target in inst.targets:
            if target not in block_set:
                raise fail(
                    f"{where}: branch target {target.name!r} not in function")
        if inst.is_conditional and len(inst.targets) != 2:
            raise fail(f"{where}: conditional branch needs two targets")
        if not inst.is_conditional and len(inst.targets) != 1:
            raise fail(f"{where}: unconditional branch needs one target")
    elif isinstance(inst, LoadInst):
        _require_pointer(where, inst.pointer, fail)
    elif isinstance(inst, StoreInst):
        if len(inst.operands) != 2:
            raise fail(f"{where}: store needs exactly two operands")
        _require_pointer(where, inst.pointer, fail)
    elif isinstance(inst, GEPInst):
        _require_pointer(where, inst.base, fail)
    elif isinstance(inst, AllocaInst):
        if not inst.var_name:
            raise fail(f"{where}: alloca without a variable name")
    elif isinstance(inst, PrintInst):
        pass
    elif isinstance(inst, CallInst):
        if inst.is_builtin:
            if inst.callee not in BUILTIN_FUNCTIONS:
                raise fail(f"{where}: unknown builtin {inst.callee!r}")
        elif inst.callee not in module.functions:
            raise fail(f"{where}: call to undefined function {inst.callee!r}")


def _verify_operand(where: str, operand: Value, defined: Set[int],
                    fail: Callable[[str], VerificationError]) -> None:
    if isinstance(operand, Register):
        if operand.rid not in defined:
            raise fail(f"{where}: use of undefined register %{operand.rid}")
    elif isinstance(operand, (Constant, GlobalVariable, Argument)):
        return
    else:
        raise fail(
            f"{where}: unsupported operand kind {type(operand).__name__}")


def _require_pointer(where: str, operand: Value,
                     fail: Callable[[str], VerificationError]) -> None:
    ptype = operand.type
    if isinstance(operand, GlobalVariable):
        return
    if not isinstance(ptype, PointerType):
        raise fail(f"{where}: expected a pointer operand, got {ptype}")
