"""``repro.minicc`` — a small C-like front end.

The paper evaluates AutoCheck on C/C++ HPC benchmarks compiled with Clang and
traced with LLVM-Tracer.  Neither toolchain is available in this environment,
so the benchmarks are written in *mini-C*: a deliberately small C subset with
``int``/``double`` scalars, multi-dimensional arrays, pointer parameters,
``for``/``while``/``if`` control flow, function calls and a ``print`` builtin.

The front end is a classic three stage design:

* :mod:`repro.minicc.lexer` — hand written scanner producing
  :class:`repro.minicc.tokens.Token` objects with line/column positions
  (source line numbers matter: AutoCheck's input includes the main
  computation loop's start and end lines).
* :mod:`repro.minicc.parser` — recursive descent parser producing the AST in
  :mod:`repro.minicc.ast_nodes`.
* :mod:`repro.minicc.sema` — symbol resolution and type checking, annotating
  the AST so that :mod:`repro.codegen` can lower it to the LLVM-like IR.
"""

from repro.minicc.errors import MiniCError, LexError, ParseError, SemanticError
from repro.minicc.tokens import Token, TokenKind
from repro.minicc.lexer import Lexer, tokenize
from repro.minicc import ast_nodes as ast
from repro.minicc.parser import Parser, parse_program
from repro.minicc.sema import SemanticAnalyzer, analyze

__all__ = [
    "MiniCError",
    "LexError",
    "ParseError",
    "SemanticError",
    "Token",
    "TokenKind",
    "Lexer",
    "tokenize",
    "ast",
    "Parser",
    "parse_program",
    "SemanticAnalyzer",
    "analyze",
]
