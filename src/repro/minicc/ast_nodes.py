"""Abstract syntax tree node definitions for mini-C.

Every node records its 1-based source ``line`` and ``column``; line numbers
flow all the way to the dynamic trace so AutoCheck can partition the trace
around the main computation loop's source range.

Type annotations (the ``ctype`` attribute on expressions and declarations)
are filled in by :mod:`repro.minicc.sema`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


# --------------------------------------------------------------------------- #
# Source-level types
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class CType:
    """Base class for mini-C types."""

    def is_numeric(self) -> bool:
        return isinstance(self, (IntType, DoubleType))

    def is_array(self) -> bool:
        return isinstance(self, ArrayType)

    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)


@dataclass(frozen=True)
class IntType(CType):
    """32-bit signed integer."""

    def __str__(self) -> str:
        return "int"


@dataclass(frozen=True)
class DoubleType(CType):
    """64-bit IEEE double."""

    def __str__(self) -> str:
        return "double"


@dataclass(frozen=True)
class VoidType(CType):
    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class ArrayType(CType):
    """A (possibly multi-dimensional) array of a scalar element type."""

    element: CType
    dims: Tuple[int, ...]

    def __str__(self) -> str:
        return str(self.element) + "".join(f"[{d}]" for d in self.dims)

    @property
    def count(self) -> int:
        total = 1
        for dim in self.dims:
            total *= dim
        return total


@dataclass(frozen=True)
class PointerType(CType):
    """Pointer to a scalar element type (array-decayed function parameters).

    ``dims`` optionally records the declared trailing dimensions for
    multi-dimensional array parameters (e.g. ``double u[8][8]``) so indexing
    inside the callee can compute flat offsets.  The leading dimension is not
    needed for address computation and may be present or not.
    """

    element: CType
    dims: Tuple[int, ...] = ()

    def __str__(self) -> str:
        suffix = "".join(f"[{d}]" for d in self.dims)
        return f"{self.element}*{suffix}"


INT = IntType()
DOUBLE = DoubleType()
VOID = VoidType()


# --------------------------------------------------------------------------- #
# Base node
# --------------------------------------------------------------------------- #
@dataclass
class Node:
    line: int
    column: int


# --------------------------------------------------------------------------- #
# Expressions
# --------------------------------------------------------------------------- #
@dataclass
class Expr(Node):
    """Base class for expressions.  ``ctype`` is set by semantic analysis."""

    ctype: Optional[CType] = field(default=None, init=False)


@dataclass
class IntLiteral(Expr):
    value: int = 0


@dataclass
class FloatLiteral(Expr):
    value: float = 0.0


@dataclass
class StringLiteral(Expr):
    value: str = ""


@dataclass
class Identifier(Expr):
    name: str = ""


@dataclass
class ArrayIndex(Expr):
    """``base[i][j]...`` where base is an identifier naming an array/pointer."""

    base: Identifier = None  # type: ignore[assignment]
    indices: List[Expr] = field(default_factory=list)


@dataclass
class UnaryOp(Expr):
    op: str = ""
    operand: Expr = None  # type: ignore[assignment]


@dataclass
class BinaryOp(Expr):
    op: str = ""
    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]


@dataclass
class Assignment(Expr):
    """``target op target-expression``; ``op`` is '=', '+=', '-=', '*=', '/='."""

    op: str = "="
    target: Expr = None  # type: ignore[assignment]
    value: Expr = None  # type: ignore[assignment]


@dataclass
class IncDec(Expr):
    """Prefix or postfix ``++`` / ``--`` applied to an lvalue."""

    op: str = "++"
    target: Expr = None  # type: ignore[assignment]
    is_prefix: bool = False


@dataclass
class Call(Expr):
    callee: str = ""
    args: List[Expr] = field(default_factory=list)


# --------------------------------------------------------------------------- #
# Statements
# --------------------------------------------------------------------------- #
@dataclass
class Stmt(Node):
    pass


@dataclass
class VarDecl(Stmt):
    """A single declared variable (either global or local)."""

    name: str = ""
    ctype: CType = INT
    init: Optional[Expr] = None
    is_global: bool = False


@dataclass
class DeclStmt(Stmt):
    """One declaration statement possibly declaring several variables."""

    decls: List[VarDecl] = field(default_factory=list)


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None  # type: ignore[assignment]


@dataclass
class Block(Stmt):
    statements: List[Stmt] = field(default_factory=list)


@dataclass
class If(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    then_body: Stmt = None  # type: ignore[assignment]
    else_body: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    body: Stmt = None  # type: ignore[assignment]


@dataclass
class For(Stmt):
    init: Optional[Union[DeclStmt, ExprStmt]] = None
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Stmt = None  # type: ignore[assignment]


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Print(Stmt):
    """The ``print(...)`` builtin — stands in for ``printf`` in the paper's
    example code and produces the program output used by restart validation."""

    args: List[Expr] = field(default_factory=list)


# --------------------------------------------------------------------------- #
# Top level
# --------------------------------------------------------------------------- #
@dataclass
class Param(Node):
    name: str = ""
    ctype: CType = INT


@dataclass
class FuncDef(Node):
    name: str = ""
    return_type: CType = VOID
    params: List[Param] = field(default_factory=list)
    body: Block = None  # type: ignore[assignment]


@dataclass
class Program(Node):
    globals: List[VarDecl] = field(default_factory=list)
    functions: List[FuncDef] = field(default_factory=list)
    source: str = ""

    def function(self, name: str) -> FuncDef:
        for func in self.functions:
            if func.name == name:
                return func
        raise KeyError(name)

    def global_names(self) -> List[str]:
        return [decl.name for decl in self.globals]


def walk(node: Node):
    """Yield ``node`` and all of its descendant AST nodes (pre-order)."""
    yield node
    for value in vars(node).values():
        if isinstance(value, Node):
            yield from walk(value)
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, Node):
                    yield from walk(item)
