"""Error types raised by the mini-C front end."""

from __future__ import annotations


class MiniCError(Exception):
    """Base class for all front-end errors.

    Carries the source position (1-based line and column) so error messages
    can point back at the offending mini-C source text.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.message = message
        self.line = line
        self.column = column
        location = f" (line {line}, col {column})" if line else ""
        super().__init__(f"{message}{location}")


class LexError(MiniCError):
    """Raised when the scanner meets an unexpected character."""


class ParseError(MiniCError):
    """Raised when the parser meets an unexpected token."""


class SemanticError(MiniCError):
    """Raised by semantic analysis (undeclared names, type errors, ...)."""
