"""Hand-written scanner for mini-C.

Line and column numbers are tracked carefully: the AutoCheck pipeline takes
the *source line range* of the main computation loop as input (paper
Sec. VII, "Use of AutoCheck"), and every IR instruction — and therefore every
dynamic trace record — carries the line number it was lowered from.
"""

from __future__ import annotations

from typing import List, Optional

from repro.minicc.errors import LexError
from repro.minicc.tokens import KEYWORDS, Token, TokenKind

_TWO_CHAR_OPERATORS = {
    "==": TokenKind.EQ,
    "!=": TokenKind.NE,
    "<=": TokenKind.LE,
    ">=": TokenKind.GE,
    "&&": TokenKind.AND_AND,
    "||": TokenKind.OR_OR,
    "++": TokenKind.PLUS_PLUS,
    "--": TokenKind.MINUS_MINUS,
    "+=": TokenKind.PLUS_ASSIGN,
    "-=": TokenKind.MINUS_ASSIGN,
    "*=": TokenKind.STAR_ASSIGN,
    "/=": TokenKind.SLASH_ASSIGN,
}

_ONE_CHAR_OPERATORS = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    ",": TokenKind.COMMA,
    ";": TokenKind.SEMICOLON,
    "=": TokenKind.ASSIGN,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "%": TokenKind.PERCENT,
    "<": TokenKind.LT,
    ">": TokenKind.GT,
    "!": TokenKind.NOT,
    "&": TokenKind.AMP,
}


class Lexer:
    """Convert mini-C source text into a list of :class:`Token` objects."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    # ------------------------------------------------------------------ #
    # Character-level helpers
    # ------------------------------------------------------------------ #
    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        if index < len(self.source):
            return self.source[index]
        return ""

    def _advance(self) -> str:
        ch = self.source[self.pos]
        self.pos += 1
        if ch == "\n":
            self.line += 1
            self.column = 1
        else:
            self.column += 1
        return ch

    def _at_end(self) -> bool:
        return self.pos >= len(self.source)

    # ------------------------------------------------------------------ #
    # Scanning
    # ------------------------------------------------------------------ #
    def tokenize(self) -> List[Token]:
        tokens: List[Token] = []
        while True:
            token = self.next_token()
            tokens.append(token)
            if token.kind is TokenKind.EOF:
                break
        return tokens

    def next_token(self) -> Token:
        self._skip_whitespace_and_comments()
        if self._at_end():
            return Token(TokenKind.EOF, "", self.line, self.column)

        line, column = self.line, self.column
        ch = self._peek()

        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            return self._scan_number(line, column)
        if ch.isalpha() or ch == "_":
            return self._scan_identifier(line, column)
        if ch == '"':
            return self._scan_string(line, column)

        two = ch + self._peek(1)
        if two in _TWO_CHAR_OPERATORS:
            self._advance()
            self._advance()
            return Token(_TWO_CHAR_OPERATORS[two], two, line, column)
        if ch in _ONE_CHAR_OPERATORS:
            self._advance()
            return Token(_ONE_CHAR_OPERATORS[ch], ch, line, column)

        raise LexError(f"unexpected character {ch!r}", line, column)

    def _skip_whitespace_and_comments(self) -> None:
        while not self._at_end():
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while not self._at_end() and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance()
                self._advance()
                while not self._at_end() and not (
                    self._peek() == "*" and self._peek(1) == "/"
                ):
                    self._advance()
                if self._at_end():
                    raise LexError("unterminated block comment", self.line, self.column)
                self._advance()
                self._advance()
            else:
                return

    def _scan_number(self, line: int, column: int) -> Token:
        start = self.pos
        is_float = False
        while not self._at_end() and self._peek().isdigit():
            self._advance()
        if not self._at_end() and self._peek() == "." and self._peek(1) != ".":
            is_float = True
            self._advance()
            while not self._at_end() and self._peek().isdigit():
                self._advance()
        if not self._at_end() and self._peek() in "eE":
            nxt = self._peek(1)
            nxt2 = self._peek(2)
            if nxt.isdigit() or (nxt in "+-" and nxt2.isdigit()):
                is_float = True
                self._advance()
                if self._peek() in "+-":
                    self._advance()
                while not self._at_end() and self._peek().isdigit():
                    self._advance()
        text = self.source[start : self.pos]
        if is_float:
            return Token(TokenKind.FLOAT_LIT, text, line, column, float(text))
        return Token(TokenKind.INT_LIT, text, line, column, int(text))

    def _scan_identifier(self, line: int, column: int) -> Token:
        start = self.pos
        while not self._at_end() and (self._peek().isalnum() or self._peek() == "_"):
            self._advance()
        text = self.source[start : self.pos]
        kind = KEYWORDS.get(text, TokenKind.IDENT)
        return Token(kind, text, line, column, text)

    def _scan_string(self, line: int, column: int) -> Token:
        self._advance()  # opening quote
        chars: List[str] = []
        while not self._at_end() and self._peek() != '"':
            ch = self._advance()
            if ch == "\\" and not self._at_end():
                escaped = self._advance()
                mapping = {"n": "\n", "t": "\t", '"': '"', "\\": "\\"}
                chars.append(mapping.get(escaped, escaped))
            else:
                chars.append(ch)
        if self._at_end():
            raise LexError("unterminated string literal", line, column)
        self._advance()  # closing quote
        text = "".join(chars)
        return Token(TokenKind.STRING_LIT, text, line, column, text)


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source`` and return the full token list (EOF included)."""
    return Lexer(source).tokenize()


def token_kinds(tokens: List[Token]) -> List[TokenKind]:
    """Convenience helper used in tests: strip positions and payloads."""
    return [token.kind for token in tokens]


def find_token(tokens: List[Token], text: str) -> Optional[Token]:
    """Return the first token whose spelling equals ``text`` (or ``None``)."""
    for token in tokens:
        if token.text == text:
            return token
    return None
