"""Recursive-descent parser for mini-C.

Grammar (informal):

.. code-block:: text

    program      := (func_def | global_decl)*
    global_decl  := type declarator ("," declarator)* ";"
    declarator   := IDENT ("[" INT "]")* ("=" expr)?
    func_def     := type IDENT "(" params? ")" block
    param        := type "*"? IDENT ("[" INT? "]")*
    block        := "{" stmt* "}"
    stmt         := decl | expr ";" | for | while | if | return | break
                    | continue | print | block
    expr         := assignment
    assignment   := unary ("="|"+="|"-="|"*="|"/=") assignment | logical_or
    logical_or   := logical_and ("||" logical_and)*
    logical_and  := equality ("&&" equality)*
    equality     := relational (("=="|"!=") relational)*
    relational   := additive (("<"|"<="|">"|">=") additive)*
    additive     := multiplicative (("+"|"-") multiplicative)*
    multiplicative := unary (("*"|"/"|"%") unary)*
    unary        := ("-"|"!"|"++"|"--") unary | postfix
    postfix      := primary ("[" expr "]")* ("++"|"--")?
    primary      := INT | FLOAT | STRING | IDENT | IDENT "(" args ")" | "(" expr ")"
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.minicc import ast_nodes as ast
from repro.minicc.errors import ParseError
from repro.minicc.lexer import tokenize
from repro.minicc.tokens import TYPE_KEYWORDS, Token, TokenKind

_ASSIGN_OPS = {
    TokenKind.ASSIGN: "=",
    TokenKind.PLUS_ASSIGN: "+=",
    TokenKind.MINUS_ASSIGN: "-=",
    TokenKind.STAR_ASSIGN: "*=",
    TokenKind.SLASH_ASSIGN: "/=",
}


class Parser:
    """Parse a token stream into a :class:`repro.minicc.ast_nodes.Program`."""

    def __init__(self, tokens: List[Token], source: str = "") -> None:
        self.tokens = tokens
        self.pos = 0
        self.source = source

    # ------------------------------------------------------------------ #
    # Token helpers
    # ------------------------------------------------------------------ #
    def _peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _check(self, kind: TokenKind, offset: int = 0) -> bool:
        return self._peek(offset).kind is kind

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def _match(self, *kinds: TokenKind) -> Optional[Token]:
        if self._peek().kind in kinds:
            return self._advance()
        return None

    def _expect(self, kind: TokenKind, context: str = "") -> Token:
        token = self._peek()
        if token.kind is not kind:
            expected = kind.value
            where = f" while parsing {context}" if context else ""
            raise ParseError(
                f"expected {expected!r} but found {token.text!r}{where}",
                token.line,
                token.column,
            )
        return self._advance()

    # ------------------------------------------------------------------ #
    # Top level
    # ------------------------------------------------------------------ #
    def parse_program(self) -> ast.Program:
        first = self._peek()
        program = ast.Program(line=first.line, column=first.column, source=self.source)
        while not self._check(TokenKind.EOF):
            if self._peek().kind not in TYPE_KEYWORDS:
                token = self._peek()
                raise ParseError(
                    f"expected a type at top level, found {token.text!r}",
                    token.line,
                    token.column,
                )
            # Distinguish function definitions from global declarations by
            # looking for '(' right after the declared name.
            if self._check(TokenKind.IDENT, 1) and self._check(TokenKind.LPAREN, 2):
                program.functions.append(self._parse_function())
            else:
                program.globals.extend(self._parse_declaration(is_global=True))
        return program

    def _parse_base_type(self) -> ast.CType:
        token = self._advance()
        if token.kind is TokenKind.KW_INT:
            return ast.INT
        if token.kind is TokenKind.KW_DOUBLE:
            return ast.DOUBLE
        if token.kind is TokenKind.KW_VOID:
            return ast.VOID
        raise ParseError(f"expected a type, found {token.text!r}", token.line, token.column)

    def _parse_function(self) -> ast.FuncDef:
        type_token = self._peek()
        return_type = self._parse_base_type()
        name_token = self._expect(TokenKind.IDENT, "function definition")
        self._expect(TokenKind.LPAREN, "function parameter list")
        params: List[ast.Param] = []
        if not self._check(TokenKind.RPAREN):
            params.append(self._parse_param())
            while self._match(TokenKind.COMMA):
                params.append(self._parse_param())
        self._expect(TokenKind.RPAREN, "function parameter list")
        body = self._parse_block()
        return ast.FuncDef(
            line=type_token.line,
            column=type_token.column,
            name=name_token.text,
            return_type=return_type,
            params=params,
            body=body,
        )

    def _parse_param(self) -> ast.Param:
        type_token = self._peek()
        base = self._parse_base_type()
        is_pointer = bool(self._match(TokenKind.STAR))
        name_token = self._expect(TokenKind.IDENT, "parameter")
        dims: List[int] = []
        has_brackets = False
        while self._match(TokenKind.LBRACKET):
            has_brackets = True
            if self._check(TokenKind.INT_LIT):
                dims.append(int(self._advance().value))  # type: ignore[arg-type]
            self._expect(TokenKind.RBRACKET, "parameter array dimension")
        if is_pointer or has_brackets:
            ctype: ast.CType = ast.PointerType(base, tuple(dims))
        else:
            ctype = base
        return ast.Param(
            line=type_token.line,
            column=type_token.column,
            name=name_token.text,
            ctype=ctype,
        )

    def _parse_declaration(self, is_global: bool) -> List[ast.VarDecl]:
        type_token = self._peek()
        base = self._parse_base_type()
        if isinstance(base, ast.VoidType):
            raise ParseError("cannot declare a variable of type void",
                             type_token.line, type_token.column)
        decls: List[ast.VarDecl] = []
        decls.append(self._parse_declarator(base, is_global))
        while self._match(TokenKind.COMMA):
            decls.append(self._parse_declarator(base, is_global))
        self._expect(TokenKind.SEMICOLON, "declaration")
        return decls

    def _parse_declarator(self, base: ast.CType, is_global: bool) -> ast.VarDecl:
        name_token = self._expect(TokenKind.IDENT, "declarator")
        dims: List[int] = []
        while self._match(TokenKind.LBRACKET):
            size_token = self._expect(TokenKind.INT_LIT, "array dimension")
            dims.append(int(size_token.value))  # type: ignore[arg-type]
            self._expect(TokenKind.RBRACKET, "array dimension")
        ctype: ast.CType = ast.ArrayType(base, tuple(dims)) if dims else base
        init: Optional[ast.Expr] = None
        if self._match(TokenKind.ASSIGN):
            init = self._parse_expr()
        return ast.VarDecl(
            line=name_token.line,
            column=name_token.column,
            name=name_token.text,
            ctype=ctype,
            init=init,
            is_global=is_global,
        )

    # ------------------------------------------------------------------ #
    # Statements
    # ------------------------------------------------------------------ #
    def _parse_block(self) -> ast.Block:
        open_token = self._expect(TokenKind.LBRACE, "block")
        statements: List[ast.Stmt] = []
        while not self._check(TokenKind.RBRACE) and not self._check(TokenKind.EOF):
            statements.append(self._parse_statement())
        self._expect(TokenKind.RBRACE, "block")
        return ast.Block(line=open_token.line, column=open_token.column,
                         statements=statements)

    def _parse_statement(self) -> ast.Stmt:
        token = self._peek()
        if token.kind in TYPE_KEYWORDS:
            decl_token = token
            decls = self._parse_declaration(is_global=False)
            return ast.DeclStmt(line=decl_token.line, column=decl_token.column,
                                decls=decls)
        if token.kind is TokenKind.LBRACE:
            return self._parse_block()
        if token.kind is TokenKind.KW_FOR:
            return self._parse_for()
        if token.kind is TokenKind.KW_WHILE:
            return self._parse_while()
        if token.kind is TokenKind.KW_IF:
            return self._parse_if()
        if token.kind is TokenKind.KW_RETURN:
            self._advance()
            value: Optional[ast.Expr] = None
            if not self._check(TokenKind.SEMICOLON):
                value = self._parse_expr()
            self._expect(TokenKind.SEMICOLON, "return statement")
            return ast.Return(line=token.line, column=token.column, value=value)
        if token.kind is TokenKind.KW_BREAK:
            self._advance()
            self._expect(TokenKind.SEMICOLON, "break statement")
            return ast.Break(line=token.line, column=token.column)
        if token.kind is TokenKind.KW_CONTINUE:
            self._advance()
            self._expect(TokenKind.SEMICOLON, "continue statement")
            return ast.Continue(line=token.line, column=token.column)
        if token.kind is TokenKind.KW_PRINT:
            return self._parse_print()
        # Expression statement.
        expr = self._parse_expr()
        self._expect(TokenKind.SEMICOLON, "expression statement")
        return ast.ExprStmt(line=token.line, column=token.column, expr=expr)

    def _parse_print(self) -> ast.Print:
        token = self._expect(TokenKind.KW_PRINT)
        self._expect(TokenKind.LPAREN, "print statement")
        args: List[ast.Expr] = []
        if not self._check(TokenKind.RPAREN):
            args.append(self._parse_expr())
            while self._match(TokenKind.COMMA):
                args.append(self._parse_expr())
        self._expect(TokenKind.RPAREN, "print statement")
        self._expect(TokenKind.SEMICOLON, "print statement")
        return ast.Print(line=token.line, column=token.column, args=args)

    def _parse_for(self) -> ast.For:
        token = self._expect(TokenKind.KW_FOR)
        self._expect(TokenKind.LPAREN, "for statement")
        init: Optional[ast.Stmt] = None
        if not self._check(TokenKind.SEMICOLON):
            if self._peek().kind in TYPE_KEYWORDS:
                decl_token = self._peek()
                decls = self._parse_declaration(is_global=False)
                init = ast.DeclStmt(line=decl_token.line, column=decl_token.column,
                                    decls=decls)
            else:
                expr_token = self._peek()
                expr = self._parse_expr()
                self._expect(TokenKind.SEMICOLON, "for initializer")
                init = ast.ExprStmt(line=expr_token.line, column=expr_token.column,
                                    expr=expr)
        else:
            self._expect(TokenKind.SEMICOLON, "for initializer")
        cond: Optional[ast.Expr] = None
        if not self._check(TokenKind.SEMICOLON):
            cond = self._parse_expr()
        self._expect(TokenKind.SEMICOLON, "for condition")
        step: Optional[ast.Expr] = None
        if not self._check(TokenKind.RPAREN):
            step = self._parse_expr()
        self._expect(TokenKind.RPAREN, "for statement")
        body = self._parse_statement()
        return ast.For(line=token.line, column=token.column, init=init,  # type: ignore[arg-type]
                       cond=cond, step=step, body=body)

    def _parse_while(self) -> ast.While:
        token = self._expect(TokenKind.KW_WHILE)
        self._expect(TokenKind.LPAREN, "while statement")
        cond = self._parse_expr()
        self._expect(TokenKind.RPAREN, "while statement")
        body = self._parse_statement()
        return ast.While(line=token.line, column=token.column, cond=cond, body=body)

    def _parse_if(self) -> ast.If:
        token = self._expect(TokenKind.KW_IF)
        self._expect(TokenKind.LPAREN, "if statement")
        cond = self._parse_expr()
        self._expect(TokenKind.RPAREN, "if statement")
        then_body = self._parse_statement()
        else_body: Optional[ast.Stmt] = None
        if self._match(TokenKind.KW_ELSE):
            else_body = self._parse_statement()
        return ast.If(line=token.line, column=token.column, cond=cond,
                      then_body=then_body, else_body=else_body)

    # ------------------------------------------------------------------ #
    # Expressions
    # ------------------------------------------------------------------ #
    def _parse_expr(self) -> ast.Expr:
        return self._parse_assignment()

    def _parse_assignment(self) -> ast.Expr:
        left = self._parse_logical_or()
        token = self._peek()
        if token.kind in _ASSIGN_OPS:
            self._advance()
            if not isinstance(left, (ast.Identifier, ast.ArrayIndex)):
                raise ParseError("assignment target must be a variable or array element",
                                 token.line, token.column)
            value = self._parse_assignment()
            return ast.Assignment(line=token.line, column=token.column,
                                  op=_ASSIGN_OPS[token.kind], target=left, value=value)
        return left

    def _parse_binary_chain(self, sub_parser, pairs: Tuple[Tuple[TokenKind, str], ...]) -> ast.Expr:
        left = sub_parser()
        while True:
            token = self._peek()
            matched = None
            for kind, op in pairs:
                if token.kind is kind:
                    matched = op
                    break
            if matched is None:
                return left
            self._advance()
            right = sub_parser()
            left = ast.BinaryOp(line=token.line, column=token.column, op=matched,
                                left=left, right=right)

    def _parse_logical_or(self) -> ast.Expr:
        return self._parse_binary_chain(self._parse_logical_and,
                                        ((TokenKind.OR_OR, "||"),))

    def _parse_logical_and(self) -> ast.Expr:
        return self._parse_binary_chain(self._parse_equality,
                                        ((TokenKind.AND_AND, "&&"),))

    def _parse_equality(self) -> ast.Expr:
        return self._parse_binary_chain(
            self._parse_relational,
            ((TokenKind.EQ, "=="), (TokenKind.NE, "!=")),
        )

    def _parse_relational(self) -> ast.Expr:
        return self._parse_binary_chain(
            self._parse_additive,
            ((TokenKind.LT, "<"), (TokenKind.LE, "<="),
             (TokenKind.GT, ">"), (TokenKind.GE, ">=")),
        )

    def _parse_additive(self) -> ast.Expr:
        return self._parse_binary_chain(
            self._parse_multiplicative,
            ((TokenKind.PLUS, "+"), (TokenKind.MINUS, "-")),
        )

    def _parse_multiplicative(self) -> ast.Expr:
        return self._parse_binary_chain(
            self._parse_unary,
            ((TokenKind.STAR, "*"), (TokenKind.SLASH, "/"), (TokenKind.PERCENT, "%")),
        )

    def _parse_unary(self) -> ast.Expr:
        token = self._peek()
        if token.kind is TokenKind.MINUS:
            self._advance()
            operand = self._parse_unary()
            return ast.UnaryOp(line=token.line, column=token.column, op="-",
                               operand=operand)
        if token.kind is TokenKind.NOT:
            self._advance()
            operand = self._parse_unary()
            return ast.UnaryOp(line=token.line, column=token.column, op="!",
                               operand=operand)
        if token.kind in (TokenKind.PLUS_PLUS, TokenKind.MINUS_MINUS):
            self._advance()
            target = self._parse_unary()
            if not isinstance(target, (ast.Identifier, ast.ArrayIndex)):
                raise ParseError("++/-- target must be a variable or array element",
                                 token.line, token.column)
            op = "++" if token.kind is TokenKind.PLUS_PLUS else "--"
            return ast.IncDec(line=token.line, column=token.column, op=op,
                              target=target, is_prefix=True)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            token = self._peek()
            if token.kind is TokenKind.LBRACKET:
                if not isinstance(expr, ast.Identifier):
                    raise ParseError("array base must be a simple identifier",
                                     token.line, token.column)
                indices: List[ast.Expr] = []
                while self._match(TokenKind.LBRACKET):
                    indices.append(self._parse_expr())
                    self._expect(TokenKind.RBRACKET, "array subscript")
                expr = ast.ArrayIndex(line=expr.line, column=expr.column,
                                      base=expr, indices=indices)
            elif token.kind in (TokenKind.PLUS_PLUS, TokenKind.MINUS_MINUS):
                self._advance()
                if not isinstance(expr, (ast.Identifier, ast.ArrayIndex)):
                    raise ParseError("++/-- target must be a variable or array element",
                                     token.line, token.column)
                op = "++" if token.kind is TokenKind.PLUS_PLUS else "--"
                expr = ast.IncDec(line=token.line, column=token.column, op=op,
                                  target=expr, is_prefix=False)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        if token.kind is TokenKind.INT_LIT:
            self._advance()
            return ast.IntLiteral(line=token.line, column=token.column,
                                  value=int(token.value))  # type: ignore[arg-type]
        if token.kind is TokenKind.FLOAT_LIT:
            self._advance()
            return ast.FloatLiteral(line=token.line, column=token.column,
                                    value=float(token.value))  # type: ignore[arg-type]
        if token.kind is TokenKind.STRING_LIT:
            self._advance()
            return ast.StringLiteral(line=token.line, column=token.column,
                                     value=str(token.value))
        if token.kind is TokenKind.IDENT:
            self._advance()
            if self._check(TokenKind.LPAREN):
                self._advance()
                args: List[ast.Expr] = []
                if not self._check(TokenKind.RPAREN):
                    args.append(self._parse_expr())
                    while self._match(TokenKind.COMMA):
                        args.append(self._parse_expr())
                self._expect(TokenKind.RPAREN, "call")
                return ast.Call(line=token.line, column=token.column,
                                callee=token.text, args=args)
            return ast.Identifier(line=token.line, column=token.column, name=token.text)
        if token.kind is TokenKind.LPAREN:
            self._advance()
            expr = self._parse_expr()
            self._expect(TokenKind.RPAREN, "parenthesised expression")
            return expr
        raise ParseError(f"unexpected token {token.text!r} in expression",
                         token.line, token.column)


def parse_program(source: str) -> ast.Program:
    """Tokenize and parse mini-C ``source`` into an (unanalyzed) AST."""
    tokens = tokenize(source)
    return Parser(tokens, source=source).parse_program()
