"""Semantic analysis for mini-C.

Responsibilities:

* build symbol tables (globals, functions, parameters, block-scoped locals);
* annotate every expression with its :class:`repro.minicc.ast_nodes.CType`;
* reject undeclared identifiers, arity mismatches, malformed indexing,
  ``void`` misuse and non-numeric arithmetic;
* expose the table of math/runtime builtins shared with the code generator
  and the interpreter (``sqrt``, ``pow``, ``rand``, ``clock``, ...).

The checks are intentionally C-like but permissive (implicit ``int`` <->
``double`` conversions are allowed everywhere a C compiler would insert
them); the goal is catching mistakes in the 14 mini benchmark sources early,
not building a full ISO C validator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.minicc import ast_nodes as ast
from repro.minicc.errors import SemanticError

# --------------------------------------------------------------------------- #
# Builtins shared by sema, codegen and the interpreter runtime.
# Each entry: name -> (parameter types or None for "any numeric", return type)
# --------------------------------------------------------------------------- #
BUILTIN_FUNCTIONS: Dict[str, Tuple[Optional[Tuple[ast.CType, ...]], ast.CType]] = {
    "sqrt": ((ast.DOUBLE,), ast.DOUBLE),
    "pow": ((ast.DOUBLE, ast.DOUBLE), ast.DOUBLE),
    "fabs": ((ast.DOUBLE,), ast.DOUBLE),
    "exp": ((ast.DOUBLE,), ast.DOUBLE),
    "log": ((ast.DOUBLE,), ast.DOUBLE),
    "sin": ((ast.DOUBLE,), ast.DOUBLE),
    "cos": ((ast.DOUBLE,), ast.DOUBLE),
    "floor": ((ast.DOUBLE,), ast.DOUBLE),
    "fmin": ((ast.DOUBLE, ast.DOUBLE), ast.DOUBLE),
    "fmax": ((ast.DOUBLE, ast.DOUBLE), ast.DOUBLE),
    "abs": ((ast.INT,), ast.INT),
    "rand": ((), ast.INT),
    "randf": ((), ast.DOUBLE),
    "clock": ((), ast.DOUBLE),
}


@dataclass
class FunctionSignature:
    """Resolved signature of a user-defined mini-C function."""

    name: str
    return_type: ast.CType
    param_types: List[ast.CType]
    definition: ast.FuncDef


@dataclass
class SemanticInfo:
    """Result of semantic analysis attached to a parsed program."""

    program: ast.Program
    functions: Dict[str, FunctionSignature] = field(default_factory=dict)
    global_types: Dict[str, ast.CType] = field(default_factory=dict)


class _Scope:
    """A lexical scope mapping names to declared types."""

    def __init__(self, parent: Optional["_Scope"] = None) -> None:
        self.parent = parent
        self.symbols: Dict[str, ast.CType] = {}

    def declare(self, name: str, ctype: ast.CType, line: int, column: int) -> None:
        if name in self.symbols:
            raise SemanticError(f"redeclaration of {name!r} in the same scope",
                                line, column)
        self.symbols[name] = ctype

    def lookup(self, name: str) -> Optional[ast.CType]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.symbols:
                return scope.symbols[name]
            scope = scope.parent
        return None


class SemanticAnalyzer:
    """Type-check a parsed program and annotate its AST in place."""

    def __init__(self, program: ast.Program) -> None:
        self.program = program
        self.info = SemanticInfo(program=program)
        self._current_function: Optional[ast.FuncDef] = None
        self._loop_depth = 0

    # ------------------------------------------------------------------ #
    # Entry point
    # ------------------------------------------------------------------ #
    def analyze(self) -> SemanticInfo:
        global_scope = _Scope()
        for decl in self.program.globals:
            self._check_global(decl)
            global_scope.declare(decl.name, decl.ctype, decl.line, decl.column)
            self.info.global_types[decl.name] = decl.ctype

        # Register all function signatures before checking bodies so that
        # forward references and mutual recursion work.
        for func in self.program.functions:
            if func.name in self.info.functions:
                raise SemanticError(f"redefinition of function {func.name!r}",
                                    func.line, func.column)
            if func.name in BUILTIN_FUNCTIONS:
                raise SemanticError(f"{func.name!r} is a builtin and cannot be redefined",
                                    func.line, func.column)
            self.info.functions[func.name] = FunctionSignature(
                name=func.name,
                return_type=func.return_type,
                param_types=[param.ctype for param in func.params],
                definition=func,
            )

        if "main" not in self.info.functions:
            raise SemanticError("program has no 'main' function",
                                self.program.line, self.program.column)

        for func in self.program.functions:
            self._check_function(func, global_scope)
        return self.info

    # ------------------------------------------------------------------ #
    # Declarations
    # ------------------------------------------------------------------ #
    def _check_global(self, decl: ast.VarDecl) -> None:
        if isinstance(decl.ctype, ast.ArrayType) and decl.init is not None:
            raise SemanticError("array globals cannot have initializers",
                                decl.line, decl.column)
        if decl.init is not None:
            if not isinstance(decl.init, (ast.IntLiteral, ast.FloatLiteral, ast.UnaryOp)):
                raise SemanticError(
                    f"global {decl.name!r} initializer must be a literal constant",
                    decl.line, decl.column)
            self._annotate_constant(decl.init)

    def _annotate_constant(self, expr: ast.Expr) -> None:
        if isinstance(expr, ast.IntLiteral):
            expr.ctype = ast.INT
        elif isinstance(expr, ast.FloatLiteral):
            expr.ctype = ast.DOUBLE
        elif isinstance(expr, ast.UnaryOp) and expr.op == "-":
            self._annotate_constant(expr.operand)
            expr.ctype = expr.operand.ctype
        else:
            raise SemanticError("expected a constant expression", expr.line, expr.column)

    # ------------------------------------------------------------------ #
    # Functions and statements
    # ------------------------------------------------------------------ #
    def _check_function(self, func: ast.FuncDef, global_scope: _Scope) -> None:
        self._current_function = func
        scope = _Scope(global_scope)
        for param in func.params:
            scope.declare(param.name, param.ctype, param.line, param.column)
        self._check_block(func.body, scope)
        self._current_function = None

    def _check_block(self, block: ast.Block, parent_scope: _Scope) -> None:
        scope = _Scope(parent_scope)
        for stmt in block.statements:
            self._check_statement(stmt, scope)

    def _check_statement(self, stmt: ast.Stmt, scope: _Scope) -> None:
        if isinstance(stmt, ast.DeclStmt):
            for decl in stmt.decls:
                if decl.init is not None:
                    init_type = self._check_expr(decl.init, scope)
                    self._require_numeric(init_type, decl.init)
                    if isinstance(decl.ctype, ast.ArrayType):
                        raise SemanticError("array locals cannot have initializers",
                                            decl.line, decl.column)
                scope.declare(decl.name, decl.ctype, decl.line, decl.column)
        elif isinstance(stmt, ast.ExprStmt):
            self._check_expr(stmt.expr, scope)
        elif isinstance(stmt, ast.Block):
            self._check_block(stmt, scope)
        elif isinstance(stmt, ast.If):
            self._require_numeric(self._check_expr(stmt.cond, scope), stmt.cond)
            self._check_statement(stmt.then_body, _Scope(scope))
            if stmt.else_body is not None:
                self._check_statement(stmt.else_body, _Scope(scope))
        elif isinstance(stmt, ast.While):
            self._require_numeric(self._check_expr(stmt.cond, scope), stmt.cond)
            self._loop_depth += 1
            self._check_statement(stmt.body, _Scope(scope))
            self._loop_depth -= 1
        elif isinstance(stmt, ast.For):
            loop_scope = _Scope(scope)
            if stmt.init is not None:
                self._check_statement(stmt.init, loop_scope)
            if stmt.cond is not None:
                self._require_numeric(self._check_expr(stmt.cond, loop_scope), stmt.cond)
            if stmt.step is not None:
                self._check_expr(stmt.step, loop_scope)
            self._loop_depth += 1
            self._check_statement(stmt.body, _Scope(loop_scope))
            self._loop_depth -= 1
        elif isinstance(stmt, ast.Return):
            assert self._current_function is not None
            expected = self._current_function.return_type
            if stmt.value is None:
                if not isinstance(expected, ast.VoidType):
                    raise SemanticError(
                        f"function {self._current_function.name!r} must return a value",
                        stmt.line, stmt.column)
            else:
                if isinstance(expected, ast.VoidType):
                    raise SemanticError(
                        f"void function {self._current_function.name!r} cannot return a value",
                        stmt.line, stmt.column)
                value_type = self._check_expr(stmt.value, scope)
                self._require_numeric(value_type, stmt.value)
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            if self._loop_depth == 0:
                raise SemanticError("break/continue used outside of a loop",
                                    stmt.line, stmt.column)
        elif isinstance(stmt, ast.Print):
            for arg in stmt.args:
                arg_type = self._check_expr(arg, scope)
                if not isinstance(arg, ast.StringLiteral):
                    self._require_numeric(arg_type, arg)
        else:  # pragma: no cover - defensive
            raise SemanticError(f"unsupported statement {type(stmt).__name__}",
                                stmt.line, stmt.column)

    # ------------------------------------------------------------------ #
    # Expressions
    # ------------------------------------------------------------------ #
    def _check_expr(self, expr: ast.Expr, scope: _Scope) -> ast.CType:
        if isinstance(expr, ast.IntLiteral):
            expr.ctype = ast.INT
        elif isinstance(expr, ast.FloatLiteral):
            expr.ctype = ast.DOUBLE
        elif isinstance(expr, ast.StringLiteral):
            expr.ctype = ast.INT  # only usable inside print(); type is irrelevant
        elif isinstance(expr, ast.Identifier):
            ctype = scope.lookup(expr.name)
            if ctype is None:
                raise SemanticError(f"use of undeclared identifier {expr.name!r}",
                                    expr.line, expr.column)
            expr.ctype = ctype
        elif isinstance(expr, ast.ArrayIndex):
            expr.ctype = self._check_array_index(expr, scope)
        elif isinstance(expr, ast.UnaryOp):
            operand_type = self._check_expr(expr.operand, scope)
            self._require_numeric(operand_type, expr.operand)
            expr.ctype = ast.INT if expr.op == "!" else operand_type
        elif isinstance(expr, ast.BinaryOp):
            expr.ctype = self._check_binary(expr, scope)
        elif isinstance(expr, ast.Assignment):
            expr.ctype = self._check_assignment(expr, scope)
        elif isinstance(expr, ast.IncDec):
            target_type = self._check_expr(expr.target, scope)
            self._require_numeric(target_type, expr.target)
            expr.ctype = target_type
        elif isinstance(expr, ast.Call):
            expr.ctype = self._check_call(expr, scope)
        else:  # pragma: no cover - defensive
            raise SemanticError(f"unsupported expression {type(expr).__name__}",
                                expr.line, expr.column)
        assert expr.ctype is not None
        return expr.ctype

    def _check_array_index(self, expr: ast.ArrayIndex, scope: _Scope) -> ast.CType:
        base_type = scope.lookup(expr.base.name)
        if base_type is None:
            raise SemanticError(f"use of undeclared identifier {expr.base.name!r}",
                                expr.line, expr.column)
        expr.base.ctype = base_type
        for index in expr.indices:
            index_type = self._check_expr(index, scope)
            self._require_numeric(index_type, index)
        if isinstance(base_type, ast.ArrayType):
            if len(expr.indices) != len(base_type.dims):
                raise SemanticError(
                    f"array {expr.base.name!r} has {len(base_type.dims)} dimension(s) "
                    f"but {len(expr.indices)} subscript(s) were given",
                    expr.line, expr.column)
            return base_type.element
        if isinstance(base_type, ast.PointerType):
            # A pointer parameter declared as `double u[4][4]` may be indexed
            # either with the full subscript list (flattened internally) or
            # with a single flat subscript; `int *p` takes one subscript.
            expected = len(base_type.dims) if base_type.dims else 1
            if len(expr.indices) not in (1, expected):
                raise SemanticError(
                    f"pointer parameter {expr.base.name!r} expects 1 or {expected} "
                    f"subscripts, got {len(expr.indices)}",
                    expr.line, expr.column)
            return base_type.element
        raise SemanticError(f"{expr.base.name!r} is not an array or pointer",
                            expr.line, expr.column)

    def _check_binary(self, expr: ast.BinaryOp, scope: _Scope) -> ast.CType:
        left = self._check_expr(expr.left, scope)
        right = self._check_expr(expr.right, scope)
        self._require_numeric(left, expr.left)
        self._require_numeric(right, expr.right)
        if expr.op == "%":
            if not isinstance(left, ast.IntType) or not isinstance(right, ast.IntType):
                raise SemanticError("operands of % must be integers",
                                    expr.line, expr.column)
            return ast.INT
        if expr.op in ("==", "!=", "<", "<=", ">", ">=", "&&", "||"):
            return ast.INT
        if isinstance(left, ast.DoubleType) or isinstance(right, ast.DoubleType):
            return ast.DOUBLE
        return ast.INT

    def _check_assignment(self, expr: ast.Assignment, scope: _Scope) -> ast.CType:
        target_type = self._check_expr(expr.target, scope)
        if isinstance(target_type, (ast.ArrayType, ast.PointerType)):
            raise SemanticError("cannot assign to an entire array/pointer",
                                expr.line, expr.column)
        value_type = self._check_expr(expr.value, scope)
        self._require_numeric(value_type, expr.value)
        return target_type

    def _check_call(self, expr: ast.Call, scope: _Scope) -> ast.CType:
        if expr.callee in BUILTIN_FUNCTIONS:
            param_types, return_type = BUILTIN_FUNCTIONS[expr.callee]
            if param_types is not None and len(expr.args) != len(param_types):
                raise SemanticError(
                    f"builtin {expr.callee!r} expects {len(param_types)} argument(s), "
                    f"got {len(expr.args)}",
                    expr.line, expr.column)
            for arg in expr.args:
                arg_type = self._check_expr(arg, scope)
                self._require_numeric(arg_type, arg)
            return return_type
        signature = self.info.functions.get(expr.callee)
        if signature is None:
            raise SemanticError(f"call to undefined function {expr.callee!r}",
                                expr.line, expr.column)
        if len(expr.args) != len(signature.param_types):
            raise SemanticError(
                f"function {expr.callee!r} expects {len(signature.param_types)} "
                f"argument(s), got {len(expr.args)}",
                expr.line, expr.column)
        for arg, param_type in zip(expr.args, signature.param_types):
            arg_type = self._check_expr(arg, scope)
            if isinstance(param_type, ast.PointerType):
                if isinstance(arg, ast.Identifier) and isinstance(
                        arg_type, (ast.ArrayType, ast.PointerType)):
                    continue
                raise SemanticError(
                    f"argument for pointer parameter of {expr.callee!r} must be an "
                    f"array or pointer variable",
                    arg.line, arg.column)
            self._require_numeric(arg_type, arg)
        return signature.return_type

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _require_numeric(ctype: ast.CType, expr: ast.Expr) -> None:
        if not ctype.is_numeric():
            raise SemanticError("expected a numeric (int/double) value here",
                                expr.line, expr.column)


def analyze(program: ast.Program) -> SemanticInfo:
    """Run semantic analysis on ``program`` (annotating it in place)."""
    return SemanticAnalyzer(program).analyze()
