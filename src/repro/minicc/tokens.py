"""Token definitions for the mini-C scanner."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union


class TokenKind(enum.Enum):
    """All token categories produced by :class:`repro.minicc.lexer.Lexer`."""

    # Literals and identifiers
    INT_LIT = "int_lit"
    FLOAT_LIT = "float_lit"
    STRING_LIT = "string_lit"
    IDENT = "ident"

    # Keywords
    KW_INT = "int"
    KW_DOUBLE = "double"
    KW_VOID = "void"
    KW_FOR = "for"
    KW_WHILE = "while"
    KW_IF = "if"
    KW_ELSE = "else"
    KW_RETURN = "return"
    KW_BREAK = "break"
    KW_CONTINUE = "continue"
    KW_PRINT = "print"

    # Punctuation
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    COMMA = ","
    SEMICOLON = ";"

    # Operators
    ASSIGN = "="
    PLUS_ASSIGN = "+="
    MINUS_ASSIGN = "-="
    STAR_ASSIGN = "*="
    SLASH_ASSIGN = "/="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    PLUS_PLUS = "++"
    MINUS_MINUS = "--"
    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    AND_AND = "&&"
    OR_OR = "||"
    NOT = "!"
    AMP = "&"

    EOF = "eof"


#: Keyword spelling -> token kind.
KEYWORDS = {
    "int": TokenKind.KW_INT,
    "double": TokenKind.KW_DOUBLE,
    "void": TokenKind.KW_VOID,
    "for": TokenKind.KW_FOR,
    "while": TokenKind.KW_WHILE,
    "if": TokenKind.KW_IF,
    "else": TokenKind.KW_ELSE,
    "return": TokenKind.KW_RETURN,
    "break": TokenKind.KW_BREAK,
    "continue": TokenKind.KW_CONTINUE,
    "print": TokenKind.KW_PRINT,
}

#: Type keywords (used by the parser to detect declarations).
TYPE_KEYWORDS = (TokenKind.KW_INT, TokenKind.KW_DOUBLE, TokenKind.KW_VOID)


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position (1-based)."""

    kind: TokenKind
    text: str
    line: int
    column: int
    value: Union[int, float, str, None] = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind.name}, {self.text!r}, {self.line}:{self.column})"
