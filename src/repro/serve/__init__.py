"""Analysis-as-a-service: the serve daemon and its building blocks.

The long-running HTTP/JSON front end over the content-addressed artifact
store: warm analyses answer as O(1) store reads, cold analyses fan into a
bounded worker pool, and identical in-flight requests coalesce onto one
engine walk.  See :mod:`repro.serve.server` for the endpoint surface and
``docs/serve.md`` for the service contract.
"""

from repro.serve.client import ServeClient
from repro.serve.coalesce import CoalesceTimeout, Flight, RequestCoalescer
from repro.serve.jobs import (
    JOB_DONE,
    JOB_FAILED,
    JOB_QUEUED,
    JOB_RUNNING,
    Job,
    JobManager,
    QueueFullError,
    ShutdownError,
)
from repro.serve.progress import JobProgress, stream_progress
from repro.serve.server import AnalysisServer, ServeError

__all__ = [
    "AnalysisServer",
    "CoalesceTimeout",
    "Flight",
    "Job",
    "JobManager",
    "JobProgress",
    "JOB_DONE",
    "JOB_FAILED",
    "JOB_QUEUED",
    "JOB_RUNNING",
    "QueueFullError",
    "RequestCoalescer",
    "ServeClient",
    "ServeError",
    "ShutdownError",
    "stream_progress",
]
