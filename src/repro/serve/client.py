"""Thin stdlib HTTP client for the serve daemon.

Used by the black-box test harness (and handy for scripting): every
method maps one endpoint, returns the raw status/headers/body so tests
can assert on exact bytes, and never retries or hides errors — the
daemon's behaviour is the thing under test.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, Iterator, Optional, Tuple

#: (status, lower-cased headers, body bytes)
Response = Tuple[int, Dict[str, str], bytes]


class ServeClient:
    """One-connection-per-call client for an :class:`AnalysisServer`."""

    def __init__(self, host: str, port: int, timeout: float = 630.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #
    def request(self, method: str, path: str, body: Optional[bytes] = None,
                content_type: Optional[str] = None) -> Response:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            headers = {}
            if content_type is not None:
                headers["Content-Type"] = content_type
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            payload = response.read()
            header_map = {name.lower(): value
                          for name, value in response.getheaders()}
            return response.status, header_map, payload
        finally:
            conn.close()

    @staticmethod
    def json_body(response: Response) -> Any:
        return json.loads(response[2].decode("utf-8"))

    # ------------------------------------------------------------------ #
    # Endpoints
    # ------------------------------------------------------------------ #
    def analyze_app(self, app: str, params: Optional[Dict[str, int]] = None,
                    seed: Optional[int] = None,
                    induction: Optional[str] = None,
                    wait: bool = True) -> Response:
        payload: Dict[str, Any] = {"app": app}
        if params:
            payload["params"] = params
        if seed is not None:
            payload["seed"] = seed
        if induction is not None:
            payload["induction"] = induction
        path = "/analyze" if wait else "/analyze?wait=0"
        return self.request("POST", path, json.dumps(payload).encode(),
                            content_type="application/json")

    def analyze_trace(self, trace_bytes: bytes, function: str, start: int,
                      end: int, induction: Optional[str] = None,
                      wait: bool = True) -> Response:
        path = (f"/analyze?function={function}&start={start}&end={end}"
                + (f"&induction={induction}" if induction else "")
                + ("" if wait else "&wait=0"))
        return self.request("POST", path, trace_bytes,
                            content_type="application/octet-stream")

    def job(self, job_id: str) -> Response:
        return self.request("GET", f"/jobs/{job_id}")

    def stream_job(self, job_id: str) -> Iterator[Dict[str, Any]]:
        """Yield progress snapshots from the chunked streaming endpoint."""
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            conn.request("GET", f"/jobs/{job_id}?stream=1")
            response = conn.getresponse()
            # http.client decodes the chunked framing; readline() returns
            # one NDJSON progress line at a time.
            while True:
                line = response.readline()
                if not line:
                    return
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))
        finally:
            conn.close()

    def report(self, key: str) -> Response:
        return self.request("GET", f"/report/{key}")

    def stats(self) -> Dict[str, Any]:
        return self.json_body(self.request("GET", "/stats"))

    def healthz(self) -> Response:
        return self.request("GET", "/healthz")
