"""Keyed single-flight request coalescing.

The serve daemon addresses analyses by the same tuple as the artifact
store — ``(trace digest, config fingerprint, schema version)`` — so N
identical requests arriving while the first one's engine walk is still in
flight must not trigger N walks.  :class:`RequestCoalescer` is the
fan-in: the first caller to :meth:`~RequestCoalescer.join` a key becomes
the *leader* and owns computing the result; everyone else becomes a
*follower* and waits on the leader's :class:`Flight`.  When the leader
completes (or fails), every follower observes the same result (or the
same error) — one walk, N responses.

Invariants (property-tested by ``tests/test_serve_coalesce.py``):

* **No lost waiters** — every ``join`` is resolved by exactly one
  ``complete``/``fail`` of its flight; waiters blocked in
  :meth:`Flight.wait` always wake.
* **Single flight per key** — between a leader's ``join`` and its
  ``complete``/``fail``, every other ``join`` of the same key lands on
  the *same* flight as a follower; two leaders for one key can never
  coexist.
* **Failure propagation** — a leader's failure reaches every coalesced
  follower as the same exception instance.

The flight is removed from the table *before* its waiters are released,
so a request arriving after completion starts a fresh flight (results are
never cached here — that is the artifact store's job; the coalescer only
collapses *concurrent* duplicates).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Optional, Tuple


class CoalesceTimeout(Exception):
    """A flight did not resolve within the caller's wait budget."""


class Flight:
    """One in-flight computation, shared by a leader and its followers."""

    __slots__ = ("key", "waiters", "_done", "_meta_ready", "_result",
                 "_error", "_meta")

    def __init__(self, key: Any) -> None:
        self.key = key
        #: joins observed (leader included); stable once the flight resolves.
        self.waiters = 1
        self._done = threading.Event()
        # Leader-published metadata (e.g. the job id followers should poll).
        # A follower can join before the leader finished creating the job,
        # so reads block on this separate event; resolving the flight also
        # sets it, so a leader that fails early cannot strand meta readers.
        self._meta_ready = threading.Event()
        self._result: Any = None
        self._error: Optional[BaseException] = None
        self._meta: Dict[str, Any] = {}

    # -- leader side ---------------------------------------------------- #
    def publish_meta(self, **meta: Any) -> None:
        """Make ``meta`` visible to followers (idempotent, leader-only)."""
        self._meta.update(meta)
        self._meta_ready.set()

    def _resolve(self, result: Any, error: Optional[BaseException]) -> None:
        self._result = result
        self._error = error
        self._done.set()
        self._meta_ready.set()

    # -- follower side -------------------------------------------------- #
    def meta(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        """The leader's published metadata (waits for it to appear)."""
        if not self._meta_ready.wait(timeout):
            raise CoalesceTimeout(
                f"flight {self.key!r}: leader published no metadata "
                f"within {timeout}s")
        return dict(self._meta)

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: Optional[float] = None) -> Any:
        """Block until the flight resolves; return the leader's result.

        Raises:
            CoalesceTimeout: the flight did not resolve in ``timeout``
                seconds (the flight itself stays valid — the leader may
                still resolve it later).
            BaseException: whatever the leader failed with, re-raised so
                every coalesced waiter sees the same error.
        """
        if not self._done.wait(timeout):
            raise CoalesceTimeout(
                f"flight {self.key!r} did not resolve within {timeout}s")
        if self._error is not None:
            raise self._error
        return self._result


class RequestCoalescer:
    """Thread-safe keyed single-flight table."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flights: Dict[Any, Flight] = {}
        #: flights led (each is exactly one underlying computation)
        self.led = 0
        #: joins that piggybacked on an existing flight (work saved)
        self.joined = 0

    def join(self, key: Any) -> Tuple[Flight, bool]:
        """Join (or open) the flight for ``key``.

        Returns:
            ``(flight, leader)`` — ``leader`` is True for exactly one
            concurrent caller per key; that caller must eventually call
            :meth:`complete` or :meth:`fail` with the returned flight.
        """
        with self._lock:
            flight = self._flights.get(key)
            if flight is None:
                flight = Flight(key)
                self._flights[key] = flight
                self.led += 1
                return flight, True
            flight.waiters += 1
            self.joined += 1
            return flight, False

    def _detach(self, flight: Flight) -> None:
        # Drop the table entry before waking waiters: a request that
        # arrives after resolution must open a fresh flight, never observe
        # a stale one.
        with self._lock:
            if self._flights.get(flight.key) is flight:
                del self._flights[flight.key]

    def complete(self, flight: Flight, result: Any) -> None:
        """Resolve ``flight`` successfully for every waiter (leader-only)."""
        self._detach(flight)
        flight._resolve(result, None)

    def fail(self, flight: Flight, error: BaseException) -> None:
        """Resolve ``flight`` with ``error`` for every waiter (leader-only)."""
        self._detach(flight)
        flight._resolve(None, error)

    def run(self, key: Any, fn: Callable[[], Any],
            timeout: Optional[float] = None) -> Tuple[Any, bool]:
        """Convenience single-flight call: lead with ``fn`` or wait.

        Returns:
            ``(result, led)`` — ``led`` says whether this caller ran ``fn``
            itself or coalesced onto another caller's run.
        """
        flight, leader = self.join(key)
        if not leader:
            return flight.wait(timeout), False
        try:
            result = fn()
        except BaseException as exc:
            self.fail(flight, exc)
            raise
        self.complete(flight, result)
        return result, True

    def in_flight(self) -> int:
        """Number of keys currently being computed."""
        with self._lock:
            return len(self._flights)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {"led": self.led, "joined": self.joined,
                    "in_flight": len(self._flights)}
