"""Bounded worker pool with queue backpressure for the serve daemon.

The daemon must keep answering ``/healthz`` and warm lookups while cold
analyses grind, and it must shed load instead of accepting unbounded
work: :class:`JobManager` runs a fixed number of worker threads over a
bounded queue.  A full queue rejects the submit immediately
(:class:`QueueFullError` → HTTP 429 upstream), which is the whole
backpressure story — no hidden buffering anywhere.

Jobs are observable (``GET /jobs/<id>``): each :class:`Job` carries its
lifecycle state (``queued → running → done | failed``), a
:class:`~repro.serve.progress.JobProgress` the engine walk feeds, and the
artifact key its result was published under.  Completed jobs stay
queryable in a bounded history ring so a client can poll a job to its
terminal state even if it finished between polls.

Graceful shutdown (:meth:`JobManager.shutdown`) closes the intake first
(new submits fail fast), then drains: queued and running jobs run to
completion before the workers exit — an accepted analysis is never
dropped on the floor.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, Optional

from repro.serve.progress import JobProgress

#: Lifecycle states of a :class:`Job`.
JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"

#: Completed jobs kept queryable after they resolve.
HISTORY_LIMIT = 1024


class QueueFullError(RuntimeError):
    """The job queue is at capacity; the caller should shed load (429)."""


class ShutdownError(RuntimeError):
    """The manager no longer accepts work (daemon is draining)."""


class Job:
    """One unit of pool work, observable across threads."""

    __slots__ = ("id", "label", "state", "created_at", "started_at",
                 "finished_at", "progress", "result", "error", "artifact_key",
                 "_done")

    def __init__(self, job_id: str, label: str) -> None:
        self.id = job_id
        self.label = label
        self.state = JOB_QUEUED
        self.created_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.progress = JobProgress()
        self.result: Any = None
        self.error: Optional[str] = None
        #: store key the result was published under (set by the runner).
        self.artifact_key: Optional[str] = None
        self._done = threading.Event()

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job resolves; True when it did."""
        return self._done.wait(timeout)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready status view (what ``GET /jobs/<id>`` serves)."""
        snap: Dict[str, Any] = {
            "id": self.id,
            "label": self.label,
            "state": self.state,
            "progress": self.progress.snapshot(),
        }
        if self.artifact_key is not None:
            snap["key"] = self.artifact_key
        if self.error is not None:
            snap["error"] = self.error
        return snap


class JobManager:
    """Fixed worker threads over a bounded queue, with a job registry."""

    def __init__(self, workers: int = 2, queue_limit: int = 16) -> None:
        if workers < 1:
            raise ValueError(f"JobManager needs workers >= 1, got {workers}")
        if queue_limit < 1:
            raise ValueError(
                f"JobManager needs queue_limit >= 1, got {queue_limit}")
        self.workers = workers
        self.queue_limit = queue_limit
        self._queue: "queue.Queue[Optional[Job]]" = queue.Queue(
            maxsize=queue_limit)
        self._lock = threading.Lock()
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._fns: Dict[str, Callable[[Job], Any]] = {}
        self._ids = itertools.count(1)
        self._accepting = True
        self._running = 0
        self.submitted = 0
        self.rejected = 0
        self.completed = 0
        self.failed = 0
        self._threads = [
            threading.Thread(target=self._worker, name=f"autocheck-worker-{i}",
                             daemon=True)
            for i in range(workers)]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------ #
    # Intake
    # ------------------------------------------------------------------ #
    def submit(self, fn: Callable[[Job], Any], label: str = "") -> Job:
        """Enqueue ``fn`` (called with its :class:`Job`); return the job.

        Raises:
            ShutdownError: the manager is draining; no new work.
            QueueFullError: the queue is at capacity — backpressure; the
                caller should answer 429.
        """
        with self._lock:
            if not self._accepting:
                raise ShutdownError("job manager is shutting down")
            job = Job(f"j{next(self._ids):06d}", label)
            self._jobs[job.id] = job
            self._fns[job.id] = fn
            while len(self._jobs) > HISTORY_LIMIT + self.queue_limit:
                # Evict the oldest *resolved* job; never a live one.
                for job_id, old in self._jobs.items():
                    if old.done:
                        del self._jobs[job_id]
                        break
                else:
                    break
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            with self._lock:
                del self._jobs[job.id]
                del self._fns[job.id]
                self.rejected += 1
            raise QueueFullError(
                f"job queue is full ({self.queue_limit} pending); "
                f"retry later") from None
        with self._lock:
            self.submitted += 1
        return job

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    # ------------------------------------------------------------------ #
    # Workers
    # ------------------------------------------------------------------ #
    def _worker(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:  # stop sentinel
                self._queue.task_done()
                return
            with self._lock:
                fn = self._fns.pop(job.id)
                self._running += 1
            job.state = JOB_RUNNING
            job.started_at = time.time()
            job.progress.set_stage("running")
            try:
                job.result = fn(job)
            except BaseException as exc:  # noqa: BLE001 — a job failure must
                # resolve the job (and its coalesced waiters), not kill the
                # worker thread.
                job.error = f"{type(exc).__name__}: {exc}"
                job.state = JOB_FAILED
                job.progress.set_stage("failed")
                with self._lock:
                    self.failed += 1
                    self._running -= 1
            else:
                job.state = JOB_DONE
                job.progress.set_stage("done")
                with self._lock:
                    self.completed += 1
                    self._running -= 1
            finally:
                job.finished_at = time.time()
                job._done.set()
                self._queue.task_done()

    # ------------------------------------------------------------------ #
    # Lifecycle / introspection
    # ------------------------------------------------------------------ #
    def shutdown(self, drain: bool = True,
                 timeout: Optional[float] = None) -> bool:
        """Stop intake, optionally drain, and stop the workers.

        Args:
            drain: run every already-accepted job to completion before the
                workers exit; ``False`` abandons queued (never-started)
                jobs by resolving them as failed.
            timeout: per-thread join budget.

        Returns:
            True when every worker thread exited.
        """
        with self._lock:
            self._accepting = False
        if not drain:
            # Pull queued jobs out and resolve them as failed so no waiter
            # blocks forever on a job that will never run.
            while True:
                try:
                    job = self._queue.get_nowait()
                except queue.Empty:
                    break
                if job is not None:
                    job.error = "ShutdownError: daemon stopped before run"
                    job.state = JOB_FAILED
                    job.finished_at = time.time()
                    job._done.set()
                self._queue.task_done()
        for _ in self._threads:
            self._queue.put(None)
        ok = True
        for thread in self._threads:
            thread.join(timeout)
            ok = ok and not thread.is_alive()
        return ok

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "workers": self.workers,
                "queue_limit": self.queue_limit,
                "queue_depth": self._queue.qsize(),
                "running": self._running,
                "submitted": self.submitted,
                "rejected": self.rejected,
                "completed": self.completed,
                "failed": self.failed,
            }
