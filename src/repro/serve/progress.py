"""Job progress reporting, WebSocket-free.

A long engine walk should be observable while it runs: the pipeline's
:attr:`repro.core.config.AutoCheckConfig.progress_callback` hook fires
with the cumulative record count as the walk advances, and
:class:`JobProgress` is the thread-safe sink the serve daemon hands it.
``GET /jobs/<id>`` serves one snapshot per poll; ``GET /jobs/<id>?stream=1``
serves a chunked sequence of snapshot lines (plain HTTP chunked transfer,
one JSON document per line — no WebSocket machinery) until the job
resolves.

The counter has a single writer (the engine walk runs on one worker
thread) and many readers (handler threads snapshotting it); CPython
attribute stores are atomic, so readers never observe a torn value — at
worst a slightly stale one, which is exactly what a progress report is.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, Iterator, Optional


class JobProgress:
    """Monotonic progress counter for one analysis job."""

    __slots__ = ("records", "stage", "updated_at")

    def __init__(self) -> None:
        self.records = 0
        self.stage = "queued"
        self.updated_at = time.time()

    def update(self, records: int) -> None:
        """The pipeline progress callback: cumulative records walked."""
        self.records = records
        self.updated_at = time.time()

    def set_stage(self, stage: str) -> None:
        self.stage = stage
        self.updated_at = time.time()

    def snapshot(self) -> Dict[str, Any]:
        return {"records": self.records, "stage": self.stage}


def stream_progress(job: Any, poll_interval: float = 0.05,
                    max_seconds: float = 300.0,
                    emit_every: Optional[int] = None) -> Iterator[bytes]:
    """Yield progress snapshots of ``job`` as JSON lines until it resolves.

    Args:
        job: a :class:`repro.serve.jobs.Job` (anything with ``snapshot()``
            and ``wait(timeout)``).
        poll_interval: seconds between snapshots while the job runs.
        max_seconds: hard ceiling so an abandoned connection cannot pin a
            handler thread forever.
        emit_every: when set, suppress intermediate snapshots whose record
            count advanced by less than this many records (the first and
            final snapshots always emit).

    The final yielded line is always the job's terminal snapshot.
    """
    deadline = time.time() + max_seconds
    last_emitted: Optional[int] = None
    while True:
        done = job.wait(timeout=poll_interval)
        snap = job.snapshot()
        if done or time.time() >= deadline:
            yield (json.dumps(snap, sort_keys=True) + "\n").encode("utf-8")
            return
        records = snap.get("progress", {}).get("records", 0)
        if (last_emitted is None or emit_every is None
                or records - last_emitted >= emit_every):
            last_emitted = records
            yield (json.dumps(snap, sort_keys=True) + "\n").encode("utf-8")
