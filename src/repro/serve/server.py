"""Analysis-as-a-service: an HTTP/JSON daemon in front of the artifact store.

Pure stdlib (:class:`http.server.ThreadingHTTPServer` + ``json``): the
daemon turns the pipeline's speed work — warm O(1) store lookups, the
fused columnar walk — into a service surface that concurrent clients can
hit.  Endpoints:

* ``POST /analyze`` — a JSON body naming a bundled app
  (``{"app": "cg", "params": {...}}``) or a raw trace body (any
  non-JSON content type; main-loop location in the query string:
  ``?function=main&start=12&end=18``).  Answers 200 with the canonical
  report JSON (``X-Autocheck-Cache: hit|miss``), or — with ``?wait=0`` —
  202 with a job handle to poll.
* ``GET /jobs/<id>`` — job status + progress; ``?stream=1`` chunks
  progress snapshots as JSON lines until the job resolves.
* ``GET /report/<key>`` — the stored report for an artifact key.
* ``GET /stats`` — request/latency counters, cache hits/misses,
  coalescing and pool stats.
* ``GET /healthz`` — liveness.

Request lifecycle on ``POST /analyze``::

    resolve (app registry / trace spool)
      → address (AutoCheck.cache_key(): digest+fingerprint+schema)
        → store.load (lock-free read path)      — warm: answer now
          → coalesce on the address key         — join an in-flight walk
            → bounded job pool                  — cold: one walk, N fan-ins
              (queue full → 429 QUEUE_FULL: backpressure, not buffering)

Errors are structured JSON ``{"error": {"code", "message"}}`` with stable
named codes (:data:`ERR_BAD_JSON` etc.).  Graceful shutdown
(:meth:`AnalysisServer.close`) stops the listener, lets in-flight
handlers finish and drains the job pool — an accepted analysis always
completes and publishes to the store.
"""

from __future__ import annotations

import contextlib
import hashlib
import io
import json
import os
import threading
import time
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.core.config import AutoCheckConfig, MainLoopSpec
from repro.core.pipeline import AutoCheck
from repro.core.report import AutoCheckReport
from repro.serve.coalesce import CoalesceTimeout, RequestCoalescer
from repro.serve.jobs import Job, JobManager, QueueFullError, ShutdownError
from repro.serve.progress import stream_progress
from repro.store.batch import prepare_app_analysis
from repro.store.cache import ArtifactAddress, ArtifactStore, default_cache_dir
from repro.store.serialize import canonical_report_json

# Named error codes (stable API surface; docs/serve.md documents each).
ERR_BAD_JSON = "BAD_JSON"
ERR_MISSING_FIELD = "MISSING_FIELD"
ERR_BAD_FIELD = "BAD_FIELD"
ERR_UNKNOWN_APP = "UNKNOWN_APP"
ERR_QUEUE_FULL = "QUEUE_FULL"
ERR_SHUTTING_DOWN = "SHUTTING_DOWN"
ERR_JOB_NOT_FOUND = "JOB_NOT_FOUND"
ERR_REPORT_NOT_FOUND = "REPORT_NOT_FOUND"
ERR_NOT_FOUND = "NOT_FOUND"
ERR_METHOD_NOT_ALLOWED = "METHOD_NOT_ALLOWED"
ERR_ANALYSIS_FAILED = "ANALYSIS_FAILED"
ERR_TIMEOUT = "TIMEOUT"

#: Default ceiling a blocking ``POST /analyze`` waits for a cold walk.
DEFAULT_WAIT_SECONDS = 600.0

#: canonical response bytes memoized per artifact key (immutable entries,
#: so the only eviction pressure is memory; ~20-50 KB per report)
RESPONSE_CACHE_ENTRIES = 128


class ServeError(Exception):
    """An HTTP-mappable request error: (status, code, message)."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code


class ServeStats:
    """Thread-safe request / latency / hit-miss counters for ``/stats``."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._endpoints: Dict[str, Dict[str, Any]] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self.started_at = time.time()

    def record(self, endpoint: str, status: int, seconds: float) -> None:
        with self._lock:
            entry = self._endpoints.setdefault(
                endpoint, {"requests": 0, "errors": 0, "seconds": 0.0})
            entry["requests"] += 1
            entry["seconds"] += seconds
            if status >= 400:
                entry["errors"] += 1

    def record_cache(self, hit: bool) -> None:
        with self._lock:
            if hit:
                self.cache_hits += 1
            else:
                self.cache_misses += 1

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "uptime_seconds": time.time() - self.started_at,
                "endpoints": {name: dict(entry) for name, entry
                              in self._endpoints.items()},
                "cache": {"hits": self.cache_hits,
                          "misses": self.cache_misses},
            }


class _AnalyzeWork:
    """One resolved ``POST /analyze`` request, ready to address and run."""

    __slots__ = ("label", "autocheck", "address")

    def __init__(self, label: str, autocheck: AutoCheck,
                 address: ArtifactAddress) -> None:
        self.label = label
        self.autocheck = autocheck
        self.address = address


def run_analysis(work: _AnalyzeWork, job: Job) -> AutoCheckReport:
    """Default job body: run the staged pipeline, feeding job progress.

    Module-level (not a method) so tests can swap it — e.g. block on an
    event to pin a worker, or raise to exercise failure propagation —
    without reaching into handler internals.
    """
    work.autocheck.config.progress_callback = job.progress.update
    return work.autocheck.run()


class _ServeHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that knows its owning :class:`AnalysisServer`."""

    daemon_threads = True
    app: "AnalysisServer"


class AnalysisServer:
    """The serve daemon: HTTP front, coalescer, job pool, artifact store."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 workers: int = 2, queue_limit: int = 16,
                 use_cache: bool = True,
                 cache_dir: Optional[str] = None,
                 trace_dir: Optional[str] = None,
                 analyzer: Optional[Callable[[_AnalyzeWork, Job],
                                             AutoCheckReport]] = None) -> None:
        self.use_cache = use_cache
        self.cache_dir = cache_dir
        self.trace_dir = trace_dir or os.path.join(
            cache_dir or default_cache_dir(), "traces")
        self.store = ArtifactStore(cache_dir)
        self.jobs = JobManager(workers=workers, queue_limit=queue_limit)
        self.coalescer = RequestCoalescer()
        self.stats = ServeStats()
        # Hot-path memo of canonical response bytes, keyed by artifact
        # key.  Entries are content-addressed and therefore immutable, so
        # the memo can never go stale — it only saves the warm path the
        # per-request deserialize + re-serialize of a stored report.
        self._response_cache: OrderedDict[str, bytes] = OrderedDict()
        self._response_cache_lock = threading.Lock()
        self._analyzer = analyzer or run_analysis
        self._active_requests = 0
        self._active_lock = threading.Lock()
        self._active_drained = threading.Condition(self._active_lock)
        self._serve_thread: Optional[threading.Thread] = None
        self._closed = False
        self.httpd = _ServeHTTPServer((host, port), _Handler)
        self.httpd.app = self

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0`` ephemeral binds)."""
        return self.httpd.server_address[1]

    def start(self) -> "AnalysisServer":
        """Serve in a background thread; returns self for chaining."""
        self._serve_thread = threading.Thread(
            target=self.httpd.serve_forever, name="autocheck-serve",
            daemon=True)
        self._serve_thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI's blocking mode)."""
        self.httpd.serve_forever()

    def close(self, graceful: bool = True, timeout: float = 30.0) -> None:
        """Shut down: stop the listener, drain handlers and the job pool.

        Args:
            graceful: drain in-flight handlers and let every accepted job
                run to completion before returning; ``False`` abandons
                queued jobs (they resolve as failed so no waiter hangs).
            timeout: budget for each drain phase.
        """
        if self._closed:
            return
        self._closed = True
        self.httpd.shutdown()  # stop accepting; running handlers continue
        if graceful:
            deadline = time.time() + timeout
            with self._active_drained:
                while self._active_requests > 0:
                    remaining = deadline - time.time()
                    if remaining <= 0:
                        break
                    self._active_drained.wait(remaining)
        self.jobs.shutdown(drain=graceful, timeout=timeout)
        self.httpd.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout)

    def _track_request(self, delta: int) -> None:
        with self._active_drained:
            self._active_requests += delta
            if self._active_requests == 0:
                self._active_drained.notify_all()

    # ------------------------------------------------------------------ #
    # Request resolution
    # ------------------------------------------------------------------ #
    def _resolve_app_request(self, payload: Dict[str, Any]) -> _AnalyzeWork:
        known = {"app", "params", "seed", "induction", "wait"}
        unknown = set(payload) - known
        if unknown:
            raise ServeError(400, ERR_BAD_FIELD,
                             f"unknown analyze fields: {sorted(unknown)}")
        app_name = payload["app"]
        if not isinstance(app_name, str):
            raise ServeError(400, ERR_BAD_FIELD, "'app' must be a string")
        params = payload.get("params") or {}
        if not isinstance(params, dict):
            raise ServeError(400, ERR_BAD_FIELD, "'params' must be an object")
        seed = payload.get("seed", 314159)
        induction = payload.get("induction")
        # Coalesce the prepare step (compile + trace generation) so a
        # thundering herd on a cold app traces it once, not N times.
        prepare_key = ("prepare", app_name,
                       tuple(sorted(params.items())), seed, induction)
        try:
            prepared, _ = self.coalescer.run(
                prepare_key,
                lambda: prepare_app_analysis(
                    app_name, params, induction=induction,
                    use_cache=self.use_cache, cache_dir=self.cache_dir,
                    trace_dir=self.trace_dir, seed=seed))
        except KeyError as exc:
            name = exc.args[0] if exc.args else app_name
            raise ServeError(404, ERR_UNKNOWN_APP,
                             f"unknown app {name!r}") from exc
        except (TypeError, ValueError) as exc:
            raise ServeError(400, ERR_BAD_FIELD,
                             f"cannot stage app {app_name!r}: {exc}") from exc
        address = prepared.autocheck.cache_key()
        return _AnalyzeWork(f"app:{app_name}", prepared.autocheck, address)

    def _spool_trace_body(self, body: bytes) -> str:
        """Persist an uploaded trace body, content-addressed and atomic."""
        digest = hashlib.sha256(body).hexdigest()
        spool_dir = os.path.join(self.trace_dir, "uploads")
        path = os.path.join(spool_dir, f"{digest}.trace")
        if not os.path.exists(path):
            os.makedirs(spool_dir, exist_ok=True)
            tmp_path = f"{path}.tmp-{os.getpid()}-{threading.get_ident()}"
            try:
                with open(tmp_path, "wb") as handle:
                    handle.write(body)
                os.replace(tmp_path, path)
            except BaseException:
                with contextlib.suppress(OSError):
                    os.remove(tmp_path)
                raise
        return path

    def _resolve_trace_request(self, body: bytes,
                               query: Dict[str, list]) -> _AnalyzeWork:
        def _int_param(name: str) -> int:
            values = query.get(name)
            if not values:
                raise ServeError(
                    400, ERR_MISSING_FIELD,
                    f"trace uploads need ?{name}= in the query string")
            try:
                return int(values[0])
            except ValueError:
                raise ServeError(400, ERR_BAD_FIELD,
                                 f"?{name}= must be an integer, "
                                 f"got {values[0]!r}") from None

        if not body:
            raise ServeError(400, ERR_MISSING_FIELD,
                             "empty body: upload a trace file, or send "
                             "application/json naming an app")
        start, end = _int_param("start"), _int_param("end")
        function = query.get("function", ["main"])[0]
        induction = query.get("induction", [None])[0]
        try:
            spec = MainLoopSpec(function=function, start_line=start,
                                end_line=end)
        except ValueError as exc:
            raise ServeError(400, ERR_BAD_FIELD, str(exc)) from exc
        path = self._spool_trace_body(body)
        config = AutoCheckConfig(main_loop=spec,
                                 induction_variable=induction,
                                 use_cache=self.use_cache,
                                 cache_dir=self.cache_dir)
        autocheck = AutoCheck(config, trace_path=path)
        try:
            address = autocheck.cache_key()
        except Exception as exc:
            raise ServeError(400, ERR_BAD_FIELD,
                             f"cannot digest uploaded trace: {exc}") from exc
        return _AnalyzeWork(f"trace:{address.trace_digest[:12]}", autocheck,
                            address)

    # ------------------------------------------------------------------ #
    # Analyze execution: store fast path → coalesce → job pool
    # ------------------------------------------------------------------ #
    def execute_analyze(self, work: _AnalyzeWork, wait: bool,
                        wait_seconds: float = DEFAULT_WAIT_SECONDS,
                        ) -> Tuple[int, Dict[str, str], bytes]:
        """Run the analyze flow; returns (status, headers, body)."""
        key = work.address.key
        headers = {"Content-Type": "application/json",
                   "X-Autocheck-Key": key}
        if self.use_cache:
            body = self.canonical_bytes(key)
            if body is not None:
                self.stats.record_cache(hit=True)
                headers["X-Autocheck-Cache"] = "hit"
                return 200, headers, body
        self.stats.record_cache(hit=False)
        headers["X-Autocheck-Cache"] = "miss"

        flight, leader = self.coalescer.join(key)
        if leader:
            def _job_body(job: Job, _work=work, _flight=flight):
                job.artifact_key = _work.address.key
                try:
                    report = self._analyzer(_work, job)
                except BaseException as exc:
                    self.coalescer.fail(_flight, exc)
                    raise
                self.coalescer.complete(_flight, report)
                return report

            try:
                job = self.jobs.submit(_job_body, label=work.label)
            except QueueFullError as exc:
                # Backpressure propagates to every coalesced waiter: they
                # all shed together instead of re-stampeding the queue.
                self.coalescer.fail(flight, exc)
                raise ServeError(429, ERR_QUEUE_FULL, str(exc)) from exc
            except ShutdownError as exc:
                self.coalescer.fail(flight, exc)
                raise ServeError(503, ERR_SHUTTING_DOWN, str(exc)) from exc
            flight.publish_meta(job_id=job.id)
        headers["X-Autocheck-Coalesced"] = "led" if leader else "joined"

        if not wait:
            try:
                meta = flight.meta(timeout=10.0)
            except CoalesceTimeout as exc:
                raise ServeError(504, ERR_TIMEOUT, str(exc)) from exc
            if flight.done and meta.get("job_id") is None:
                # The flight resolved before a job could be published —
                # the leader's submit was rejected; surface that error
                # instead of handing out an unpollable handle.
                self._wait_flight(flight, 0)
            body = {"job": meta.get("job_id"), "key": key,
                    "coalesced": not leader}
            return 202, headers, (json.dumps(body) + "\n").encode()

        report = self._wait_flight(flight, wait_seconds)
        body = canonical_report_json(report).encode()
        # Seed the memo so followers and later warm requests skip the
        # deserialize + re-serialize round trip entirely.
        self._remember_response(key, body)
        return 200, headers, body

    # ------------------------------------------------------------------ #
    # Canonical response bytes: memo over the store's lock-free reads
    # ------------------------------------------------------------------ #
    def canonical_bytes(self, key: str) -> Optional[bytes]:
        """Canonical response bytes for a stored artifact, memoized.

        The memo never goes stale — keys are content addresses, so the
        bytes for a key are immutable.  On a memo miss this falls through
        to the store's lock-free read path and pays one deserialize +
        canonical re-serialize; subsequent requests are a dict lookup.
        One deliberate trade: memo hits skip the store's mtime touch, so
        the store-level LRU sees only memo misses — acceptable because a
        memo-hot key does not need its disk entry for recency anyway.
        """
        with self._response_cache_lock:
            body = self._response_cache.get(key)
            if body is not None:
                self._response_cache.move_to_end(key)
                return body
        report = self.store.load(key)
        if report is None:
            return None
        body = canonical_report_json(report).encode()
        self._remember_response(key, body)
        return body

    def _remember_response(self, key: str, body: bytes) -> None:
        with self._response_cache_lock:
            self._response_cache[key] = body
            self._response_cache.move_to_end(key)
            while len(self._response_cache) > RESPONSE_CACHE_ENTRIES:
                self._response_cache.popitem(last=False)

    @staticmethod
    def _wait_flight(flight, wait_seconds: float) -> AutoCheckReport:
        """Wait out a flight, mapping its failures onto HTTP shapes."""
        try:
            return flight.wait(timeout=wait_seconds)
        except CoalesceTimeout as exc:
            raise ServeError(504, ERR_TIMEOUT, str(exc)) from exc
        except QueueFullError as exc:
            raise ServeError(429, ERR_QUEUE_FULL, str(exc)) from exc
        except ShutdownError as exc:
            raise ServeError(503, ERR_SHUTTING_DOWN, str(exc)) from exc
        except Exception as exc:
            raise ServeError(
                500, ERR_ANALYSIS_FAILED,
                f"{type(exc).__name__}: {exc}") from exc

    def stats_snapshot(self) -> Dict[str, Any]:
        snap = self.stats.snapshot()
        snap["coalesce"] = self.coalescer.stats()
        snap["jobs"] = self.jobs.stats()
        if self.use_cache:
            store_stats = self.store.stats()
            snap["store"] = {"entries": store_stats.entries,
                             "bytes": store_stats.total_bytes}
        with self._response_cache_lock:
            snap["response_cache"] = {"entries": len(self._response_cache)}
        return snap


class _Handler(BaseHTTPRequestHandler):
    """Routes one connection's requests into the owning AnalysisServer."""

    protocol_version = "HTTP/1.1"
    server: _ServeHTTPServer

    # -- plumbing -------------------------------------------------------- #
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # the daemon's /stats replaces per-request stderr chatter

    @property
    def app(self) -> AnalysisServer:
        return self.server.app

    def _send(self, status: int, headers: Dict[str, str],
              body: bytes) -> None:
        self.send_response(status)
        for name, value in headers.items():
            self.send_header(name, value)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: Dict[str, Any],
                   headers: Optional[Dict[str, str]] = None) -> None:
        body = (json.dumps(payload) + "\n").encode()
        out = {"Content-Type": "application/json"}
        out.update(headers or {})
        self._send(status, out, body)

    def _send_error_json(self, status: int, code: str, message: str) -> None:
        self._send_json(status, {"error": {"code": code, "message": message}})

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        return self.rfile.read(length) if length else b""

    # -- routing --------------------------------------------------------- #
    def _route(self, method: str) -> None:
        started = time.perf_counter()
        url = urlparse(self.path)
        endpoint = f"{method} {url.path.split('/', 2)[1] or '/'}"
        self.app._track_request(+1)
        status = 500
        try:
            status = self._dispatch(method, url)
        except ServeError as exc:
            status = exc.status
            headers = {}
            if exc.status == 429:
                headers["Retry-After"] = "1"
            self._send_json(
                exc.status,
                {"error": {"code": exc.code, "message": str(exc)}},
                headers)
        except BrokenPipeError:
            status = 499  # client went away; nothing to answer
        except Exception as exc:  # noqa: BLE001 — a handler bug must answer
            # 500, not silently drop the connection.
            status = 500
            with contextlib.suppress(Exception):
                self._send_error_json(500, ERR_ANALYSIS_FAILED,
                                      f"{type(exc).__name__}: {exc}")
        finally:
            self.app._track_request(-1)
            self.app.stats.record(endpoint, status,
                                  time.perf_counter() - started)

    def _dispatch(self, method: str, url) -> int:
        parts = [part for part in url.path.split("/") if part]
        query = parse_qs(url.query)
        if method == "POST":
            if parts == ["analyze"]:
                return self._handle_analyze(query)
            if parts and parts[0] in ("jobs", "report", "stats", "healthz"):
                raise ServeError(405, ERR_METHOD_NOT_ALLOWED,
                                 f"/{parts[0]} is GET-only")
            raise ServeError(404, ERR_NOT_FOUND,
                             f"unknown endpoint {url.path!r}")
        # GET
        if parts == ["healthz"]:
            self._send_json(200, {"ok": True})
            return 200
        if parts == ["stats"]:
            self._send_json(200, self.app.stats_snapshot())
            return 200
        if len(parts) == 2 and parts[0] == "jobs":
            return self._handle_job(parts[1], query)
        if len(parts) == 2 and parts[0] == "report":
            return self._handle_report(parts[1])
        if parts == ["analyze"]:
            raise ServeError(405, ERR_METHOD_NOT_ALLOWED,
                             "/analyze is POST-only")
        raise ServeError(404, ERR_NOT_FOUND, f"unknown endpoint {url.path!r}")

    # -- endpoints ------------------------------------------------------- #
    def _handle_analyze(self, query: Dict[str, list]) -> int:
        body = self._read_body()
        content_type = (self.headers.get("Content-Type") or "").split(";")[0]
        if content_type == "application/json" or (
                content_type == "" and body.lstrip()[:1] == b"{"):
            try:
                payload = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ServeError(400, ERR_BAD_JSON,
                                 f"body is not JSON: {exc}") from exc
            if not isinstance(payload, dict):
                raise ServeError(400, ERR_BAD_JSON,
                                 "JSON body must be an object")
            if "app" not in payload:
                raise ServeError(400, ERR_MISSING_FIELD,
                                 "JSON analyze requests need an 'app' field")
            work = self.app._resolve_app_request(payload)
            wait_default = payload.get("wait", True)
        else:
            work = self.app._resolve_trace_request(body, query)
            wait_default = True
        wait_values = query.get("wait")
        wait = (wait_values[0] not in ("0", "false", "no")
                if wait_values else bool(wait_default))
        status, headers, out = self.app.execute_analyze(work, wait=wait)
        self._send(status, headers, out)
        return status

    def _handle_job(self, job_id: str, query: Dict[str, list]) -> int:
        job = self.app.jobs.get(job_id)
        if job is None:
            raise ServeError(404, ERR_JOB_NOT_FOUND,
                             f"unknown job {job_id!r}")
        if query.get("stream", ["0"])[0] in ("1", "true", "yes"):
            return self._stream_job(job)
        self._send_json(200, job.snapshot())
        return 200

    def _stream_job(self, job: Job) -> int:
        """Chunked progress lines (one JSON document each) until resolution."""
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        for line in stream_progress(job):
            self.wfile.write(f"{len(line):x}\r\n".encode())
            self.wfile.write(line)
            self.wfile.write(b"\r\n")
            self.wfile.flush()
        self.wfile.write(b"0\r\n\r\n")
        return 200

    def _handle_report(self, key: str) -> int:
        body = self.app.canonical_bytes(key)
        if body is None:
            raise ServeError(404, ERR_REPORT_NOT_FOUND,
                             f"no stored report under key {key!r}")
        self._send(200, {"Content-Type": "application/json",
                         "X-Autocheck-Key": key}, body)
        return 200

    # -- HTTP verbs ------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        self._route("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._route("POST")
