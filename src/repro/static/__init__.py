"""Static IR dataflow subsystem.

The static complement of the dynamic trace pipeline: CFG / dominator /
natural-loop structure (reused from :mod:`repro.analysis`), def-use
chains, an alias-conservative interprocedural may-point-to analysis,
per-block variable liveness, a static MLI-candidate set and a static
DDG over-approximation — plus the three consumers built on top:

* :mod:`repro.static.check` — the static-vs-dynamic cross-check oracle
  (``analyze --static-check``);
* :mod:`repro.static.prefilter` — the fused engine's record skip filter
  (``static_prefilter`` config switch);
* :mod:`repro.static.textreport` — the ``static-report`` CLI verb.

See ``docs/static.md`` for the lattice and the soundness argument.
"""

from repro.static.check import (
    StaticCheckError,
    StaticDiagnostic,
    cross_check,
    require_clean,
)
from repro.static.dataflow import (
    TOP,
    DefUseChains,
    LivenessResult,
    PointerAnalysis,
    VarId,
    build_def_use,
    compute_liveness,
    global_id,
    local_id,
)
from repro.static.prefilter import StaticPrefilter, build_prefilter
from repro.static.summary import (
    FunctionSummary,
    StaticDDG,
    StaticModuleAnalysis,
    analyze_module,
)
from repro.static.textreport import render_static_report

__all__ = [
    "TOP",
    "DefUseChains",
    "FunctionSummary",
    "LivenessResult",
    "PointerAnalysis",
    "StaticCheckError",
    "StaticDDG",
    "StaticDiagnostic",
    "StaticModuleAnalysis",
    "StaticPrefilter",
    "VarId",
    "analyze_module",
    "build_def_use",
    "build_prefilter",
    "compute_liveness",
    "cross_check",
    "global_id",
    "local_id",
    "render_static_report",
    "require_clean",
]
