"""The static-vs-dynamic cross-check oracle.

The dynamic pipeline's results come from one path — instrument, trace,
walk — so a bug in the walk has no independent witness.  This module is
that witness: :func:`cross_check` takes a finished
:class:`~repro.core.report.AutoCheckReport` and the module it was traced
from, and verifies the dynamic answers against the static
over-approximation of :mod:`repro.static.summary`:

* the main computation loop exists statically where the
  :class:`~repro.core.config.MainLoopSpec` says it is;
* every dynamic MLI variable is a static MLI candidate
  (``dynamic MLI ⊆ static candidates``);
* every edge of the dynamic complete DDG is statically feasible — a
  register edge must match an operand of the register's defining
  instruction, a ``var → register`` edge must come from a load that may
  read that variable, a ``register → var`` edge from a store that may
  write it, and a ``var → var`` edge must have an ancestor path in the
  static DDG;
* every contracted-DDG edge is covered by static var-level ancestry.

Each violation is a **named** :class:`StaticDiagnostic` carrying
structured context (diagnostic code, function, block, instruction index,
offending edge) rather than a bare string — the shape the fleet tests
and the ``--static-check`` CLI flag assert on.  An empty return value
means the oracle passed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.core.config import MainLoopSpec
from repro.core.ddg import DDG, NodeKind
from repro.core.report import AutoCheckReport
from repro.ir.instructions import LoadInst
from repro.ir.module import Module
from repro.static.dataflow import TOP, VarId, local_id
from repro.static.summary import StaticModuleAnalysis, analyze_module

#: Diagnostic codes (the "name" of a named diagnostic).
SPEC_FUNCTION_MISSING = "SPEC_FUNCTION_MISSING"
STATIC_MAIN_LOOP_NOT_FOUND = "STATIC_MAIN_LOOP_NOT_FOUND"
MLI_NOT_STATIC_CANDIDATE = "MLI_NOT_STATIC_CANDIDATE"
UNKNOWN_REGISTER = "UNKNOWN_REGISTER"
INFEASIBLE_DDG_EDGE = "INFEASIBLE_DDG_EDGE"
INFEASIBLE_CONTRACTED_EDGE = "INFEASIBLE_CONTRACTED_EDGE"


@dataclass(frozen=True)
class StaticDiagnostic:
    """One cross-check violation, with structured context.

    ``code`` names the violation class (one of the module-level
    constants); the location fields are filled in as far as the static
    side can attribute the problem (a register edge names the defining
    instruction's function, block and in-block index).
    """

    code: str
    message: str
    function: Optional[str] = None
    block: Optional[str] = None
    instruction_index: Optional[int] = None
    edge: Optional[Tuple[str, str]] = None

    def __str__(self) -> str:
        parts = [f"{self.code}: {self.message}"]
        context = []
        if self.function is not None:
            context.append(f"function={self.function}")
        if self.block is not None:
            context.append(f"block={self.block}")
        if self.instruction_index is not None:
            context.append(f"instruction={self.instruction_index}")
        if self.edge is not None:
            context.append(f"edge={self.edge[0]} -> {self.edge[1]}")
        if context:
            parts.append(" [" + ", ".join(context) + "]")
        return "".join(parts)


class StaticCheckError(Exception):
    """Raised by :func:`require_clean` when the oracle found violations."""

    def __init__(self, diagnostics: List[StaticDiagnostic]) -> None:
        self.diagnostics = diagnostics
        lines = [f"static cross-check failed with "
                 f"{len(diagnostics)} diagnostic(s):"]
        lines.extend(f"  - {diag}" for diag in diagnostics)
        super().__init__("\n".join(lines))


# --------------------------------------------------------------------------- #
# Dynamic DDG node decoding
# --------------------------------------------------------------------------- #
def _node_var_ids(key: str, kind: NodeKind,
                  analysis: StaticModuleAnalysis) -> Optional[Set[VarId]]:
    """The abstract ids a dynamic var node may stand for, or ``None`` for
    register nodes.

    A ``name@addr`` key drops the owning function, so the name maps to
    *every* known id carrying it (name-level conservative); a ``f:name``
    fallback local is exact.
    """
    if kind is NodeKind.REGISTER:
        return None
    if "@" in key:
        name = key.rsplit("@", 1)[0]
        ids = analysis.static_ddg.ids_for_name(name)
        return ids if ids else None
    if ":" in key:
        function, _, name = key.partition(":")
        return {local_id(function, name)}
    ids = analysis.static_ddg.ids_for_name(key)
    return ids if ids else None


def _register_ref(key: str) -> Optional[Tuple[str, int]]:
    """Parse a ``function%rid`` register key."""
    function, sep, rid = key.rpartition("%")
    if not sep:
        return None
    try:
        return function, int(rid)
    except ValueError:
        return None


def _register_context(analysis: StaticModuleAnalysis, function: str,
                      rid: int) -> Tuple[Optional[str], Optional[int]]:
    summary = analysis.functions.get(function)
    if summary is None:
        return None, None
    site = summary.defuse.defs.get(rid)
    if site is None:
        return None, None
    return site.block.name, site.index


# --------------------------------------------------------------------------- #
# Edge feasibility
# --------------------------------------------------------------------------- #
def _call_adjacent(analysis: StaticModuleAnalysis, f: str, g: str) -> bool:
    return (g in analysis.call_graph.get(f, set())
            or f in analysis.call_graph.get(g, set()))


def _check_edge(parent_key: str, child_key: str, ddg: DDG,
                analysis: StaticModuleAnalysis,
                diagnostics: List[StaticDiagnostic]) -> None:
    parent_kind = ddg.node(parent_key).kind
    child_kind = ddg.node(child_key).kind
    edge = (parent_key, child_key)

    child_reg = (_register_ref(child_key)
                 if child_kind is NodeKind.REGISTER else None)
    parent_reg = (_register_ref(parent_key)
                  if parent_kind is NodeKind.REGISTER else None)

    if child_reg is not None:
        function, rid = child_reg
        defs = analysis.pointers.defs.get(function)
        if defs is None or rid not in defs:
            block, index = _register_context(analysis, function, rid)
            diagnostics.append(StaticDiagnostic(
                code=UNKNOWN_REGISTER,
                message=(f"dynamic DDG references register %{rid} of "
                         f"{function!r}, which the IR never defines"),
                function=function, block=block, instruction_index=index,
                edge=edge))
            return
        def_inst = defs[rid]
        block, index = _register_context(analysis, function, rid)
        if parent_reg is not None:
            pfunc, prid = parent_reg
            if pfunc == function:
                operand_rids = {op.rid for op in def_inst.operands
                                if op.is_register}
                if prid in operand_rids:
                    return
            elif _call_adjacent(analysis, function, pfunc):
                # Cross-function register flow rides the call/return
                # machinery; adjacency in the call graph is the static
                # envelope for it.
                return
            diagnostics.append(StaticDiagnostic(
                code=INFEASIBLE_DDG_EDGE,
                message=(f"register edge {parent_key} -> {child_key} does "
                         f"not match any operand of %{rid}'s defining "
                         f"instruction"),
                function=function, block=block, instruction_index=index,
                edge=edge))
            return
        parent_ids = _node_var_ids(parent_key, parent_kind, analysis)
        if parent_ids is None:
            # The static side never saw this variable name — nothing to
            # contradict (conservative pass).
            return
        if isinstance(def_inst, LoadInst):
            pointees = analysis.pointers.resolve(
                def_inst.operands[0], analysis.functions[function].function)
            if TOP in pointees or pointees & parent_ids:
                return
        diagnostics.append(StaticDiagnostic(
            code=INFEASIBLE_DDG_EDGE,
            message=(f"variable edge {parent_key} -> {child_key} has no "
                     f"load of that variable defining %{rid}"),
            function=function, block=block, instruction_index=index,
            edge=edge))
        return

    child_ids = _node_var_ids(child_key, child_kind, analysis)
    if child_ids is None:
        return
    if parent_reg is not None:
        pfunc, prid = parent_reg
        targets = analysis.store_value_targets.get(pfunc, {}).get(prid)
        if targets is not None and (TOP in targets or targets & child_ids):
            return
        block, index = _register_context(analysis, pfunc, prid)
        diagnostics.append(StaticDiagnostic(
            code=INFEASIBLE_DDG_EDGE,
            message=(f"store edge {parent_key} -> {child_key}: no store of "
                     f"%{prid} may write that variable"),
            function=pfunc, block=block, instruction_index=index, edge=edge))
        return

    parent_ids = _node_var_ids(parent_key, parent_kind, analysis)
    if parent_ids is None:
        return
    for child_id in child_ids:
        for parent_id in parent_ids:
            if analysis.static_ddg.may_depend(child_id, parent_id):
                return
    diagnostics.append(StaticDiagnostic(
        code=INFEASIBLE_DDG_EDGE,
        message=(f"variable edge {parent_key} -> {child_key} has no "
                 f"static dependence path"),
        edge=edge))


# --------------------------------------------------------------------------- #
# Entry points
# --------------------------------------------------------------------------- #
def cross_check(module: Module, spec: MainLoopSpec,
                report: AutoCheckReport, *,
                include_global_accesses_in_calls: bool = False,
                analysis: Optional[StaticModuleAnalysis] = None,
                ) -> List[StaticDiagnostic]:
    """Verify ``report`` against the static analysis of ``module``.

    Returns the (possibly empty) list of violations; never raises on a
    violation — use :func:`require_clean` for the raising form.
    """
    diagnostics: List[StaticDiagnostic] = []
    if spec.function not in module.functions:
        diagnostics.append(StaticDiagnostic(
            code=SPEC_FUNCTION_MISSING,
            message=(f"main-loop function {spec.function!r} does not exist "
                     f"in the module"),
            function=spec.function))
        return diagnostics
    if analysis is None:
        analysis = analyze_module(
            module, spec=spec,
            include_global_accesses_in_calls=include_global_accesses_in_calls)

    if analysis.main_loop is None:
        diagnostics.append(StaticDiagnostic(
            code=STATIC_MAIN_LOOP_NOT_FOUND,
            message=(f"no natural loop of {spec.function!r} has its header "
                     f"branch in lines {spec.mclr}"),
            function=spec.function))

    candidate_names = analysis.candidate_names
    for name in report.mli_variable_names:
        if name not in candidate_names:
            diagnostics.append(StaticDiagnostic(
                code=MLI_NOT_STATIC_CANDIDATE,
                message=(f"dynamic MLI variable {name!r} is not in the "
                         f"static candidate set "
                         f"({len(candidate_names)} candidates)"),
                function=spec.function))

    complete = report.complete_ddg
    if isinstance(complete, DDG):
        for parent_key, child_key in sorted(complete.edges()):
            _check_edge(parent_key, child_key, complete, analysis,
                        diagnostics)

    contracted = report.contracted_ddg
    if isinstance(contracted, DDG):
        for parent_key, child_key in sorted(contracted.edges()):
            parent_ids = _node_var_ids(
                parent_key, contracted.node(parent_key).kind, analysis)
            child_ids = _node_var_ids(
                child_key, contracted.node(child_key).kind, analysis)
            if parent_ids is None or child_ids is None:
                continue
            feasible = any(
                analysis.static_ddg.may_depend(child_id, parent_id)
                for child_id in child_ids for parent_id in parent_ids)
            if not feasible:
                diagnostics.append(StaticDiagnostic(
                    code=INFEASIBLE_CONTRACTED_EDGE,
                    message=(f"contracted edge {parent_key} -> {child_key} "
                             f"has no static dependence path"),
                    edge=(parent_key, child_key)))
    return diagnostics


def require_clean(module: Module, spec: MainLoopSpec,
                  report: AutoCheckReport, *,
                  include_global_accesses_in_calls: bool = False,
                  analysis: Optional[StaticModuleAnalysis] = None) -> None:
    """:func:`cross_check`, raising :class:`StaticCheckError` on violations."""
    diagnostics = cross_check(
        module, spec, report,
        include_global_accesses_in_calls=include_global_accesses_in_calls,
        analysis=analysis)
    if diagnostics:
        raise StaticCheckError(diagnostics)
