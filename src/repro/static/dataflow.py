"""Static dataflow primitives over the IR: def-use chains, an
alias-conservative pointer analysis, and per-block variable liveness.

Everything in this module is *static*: it looks only at
:class:`repro.ir.module.Module` objects, never at a trace.  The value
domain is a flat may-point-to lattice over **abstract variable ids**:

* ``("g", name)`` — the module global ``name``;
* ``("l", function, name)`` — the local ``name`` (an ``Alloca``) of
  ``function``;
* :data:`TOP` — the lattice top: "any variable at all".

A set of ids is a *may* set: the analysis guarantees that the concrete
variable a pointer operand resolves to at run time is covered by the set
(or the set contains :data:`TOP`).  That over-approximation direction is
what makes the static MLI candidates of :mod:`repro.static.summary` a
sound superset of the dynamic MLI set, and what licenses the engine
prefilter of :mod:`repro.static.prefilter` (see ``docs/static.md`` for
the full soundness argument, including the in-bounds-indexing caveat).

Pointer-typed function parameters and pointer-typed memory cells are
resolved **interprocedurally**: a module-level fixpoint
(:func:`compute_points_to`) joins the pointee sets of every call site's
actual argument into the formal parameter's set, and the pointee sets of
every pointer value stored into a variable into that variable's *cell*
set — so an array passed by pointer keeps its identity inside the callee
(through the parameter spill-and-reload idiom the frontend emits)
instead of collapsing to :data:`TOP`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.cfg import ControlFlowGraph
from repro.ir.instructions import (
    AllocaInst,
    BinaryInst,
    BitCastInst,
    CallInst,
    CastInst,
    CmpInst,
    GEPInst,
    Instruction,
    LoadInst,
    PrintInst,
    StoreInst,
)
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.types import PointerType
from repro.ir.values import Argument, Constant, GlobalVariable, Register, Value

#: An abstract variable identity: ``("g", name)``, ``("l", func, name)``
#: or the :data:`TOP` sentinel.
VarId = Tuple[str, ...]

#: Lattice top: "could be any variable".  Kept as a member of pointee /
#: source sets rather than a separate flag so set unions stay plain.
TOP: VarId = ("top",)

#: The singleton set {TOP}.
TOP_SET: FrozenSet[VarId] = frozenset({TOP})

_EMPTY: FrozenSet[VarId] = frozenset()

#: Bound on pointer-chain walks; mirrors the 64-step bound of
#: :func:`repro.analysis.induction._resolve_variable`.
_CHAIN_BOUND = 64


def global_id(name: str) -> VarId:
    """The abstract id of module global ``name``."""
    return ("g", name)


def local_id(function: str, name: str) -> VarId:
    """The abstract id of local ``name`` in ``function``."""
    return ("l", function, name)


def format_var_id(var_id: VarId) -> str:
    """Human-readable rendering, e.g. ``@big`` or ``main:i`` or ``<top>``."""
    if var_id == TOP:
        return "<top>"
    if var_id[0] == "g":
        return f"@{var_id[1]}"
    return f"{var_id[1]}:{var_id[2]}"


def var_id_name(var_id: VarId) -> Optional[str]:
    """The source-level variable name behind ``var_id`` (None for TOP)."""
    if var_id == TOP:
        return None
    return var_id[-1]


# --------------------------------------------------------------------------- #
# Def-use chains
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class DefSite:
    """Where a virtual register is defined."""

    block: BasicBlock
    index: int
    inst: Instruction


@dataclass(frozen=True)
class UseSite:
    """One operand position reading a virtual register."""

    block: BasicBlock
    index: int
    inst: Instruction
    operand_index: int


@dataclass
class DefUseChains:
    """Register definition sites and all their uses, for one function."""

    function: Function
    defs: Dict[int, DefSite] = field(default_factory=dict)
    uses: Dict[int, List[UseSite]] = field(default_factory=dict)

    def def_inst(self, rid: int) -> Optional[Instruction]:
        site = self.defs.get(rid)
        return site.inst if site is not None else None

    def uses_of(self, rid: int) -> List[UseSite]:
        return self.uses.get(rid, [])


def build_def_use(function: Function) -> DefUseChains:
    """Collect every register's definition site and use sites."""
    chains = DefUseChains(function=function)
    for block in function.blocks:
        for index, inst in enumerate(block.instructions):
            if inst.result is not None:
                chains.defs[inst.result.rid] = DefSite(
                    block=block, index=index, inst=inst)
            for operand_index, operand in enumerate(inst.operands):
                if isinstance(operand, Register):
                    chains.uses.setdefault(operand.rid, []).append(UseSite(
                        block=block, index=index, inst=inst,
                        operand_index=operand_index))
    return chains


def definitions(function: Function) -> Dict[int, Instruction]:
    """``rid -> defining instruction`` over one function."""
    defs: Dict[int, Instruction] = {}
    for inst in function.instructions():
        if inst.result is not None:
            defs[inst.result.rid] = inst
    return defs


# --------------------------------------------------------------------------- #
# Interprocedural may-point-to
# --------------------------------------------------------------------------- #
#: ``function name -> parameter name -> may-pointee ids``.
ParamPointees = Dict[str, Dict[str, Set[VarId]]]


@dataclass
class PointsToState:
    """The interprocedural points-to facts the fixpoint accumulates.

    ``param_pointees`` joins every call site's pointer-typed actual into
    the callee's formal parameter; ``cell_pointees`` joins every
    pointer-typed *stored value* into the variable (cell) it is stored
    into — this is what lets a ``Load`` of a spilled pointer parameter
    resolve instead of going to :data:`TOP`.  ``store_to_top`` records
    that some pointer value was stored through an unresolvable pointer,
    after which *every* pointer load must answer :data:`TOP`.
    """

    param_pointees: ParamPointees = field(default_factory=dict)
    cell_pointees: Dict[VarId, Set[VarId]] = field(default_factory=dict)
    store_to_top: bool = False


class PointerAnalysis:
    """Alias-conservative may-point-to resolution for pointer operands.

    ``resolve(value, function)`` returns the may set of variables the
    pointer ``value`` can address.  The walk follows GEP bases, casts and
    bitcasts to the underlying ``Alloca`` / :class:`GlobalVariable`;
    pointer-typed formal parameters use the interprocedural call-site
    join (a parameter with no recorded caller resolves to the empty set —
    its code never runs); a pointer loaded back out of memory resolves
    through the cell sets of :class:`PointsToState`.  An unknown
    register, an over-long chain, or any load after a store-through-TOP
    resolve to :data:`TOP_SET`.
    """

    def __init__(self, module: Module) -> None:
        self.module = module
        self.defs: Dict[str, Dict[int, Instruction]] = {
            name: definitions(function)
            for name, function in module.functions.items()}
        self.state: PointsToState = compute_points_to(module, self.defs)

    @property
    def param_pointees(self) -> ParamPointees:
        return self.state.param_pointees

    def resolve(self, value: Value, function: Function) -> FrozenSet[VarId]:
        return _pointer_targets(value, function, self.defs[function.name],
                                self.state)


def _pointer_targets(value: Value, function: Function,
                     defs: Dict[int, Instruction],
                     state: PointsToState,
                     depth: int = 0) -> FrozenSet[VarId]:
    current = value
    while depth <= _CHAIN_BOUND:
        depth += 1
        if isinstance(current, GlobalVariable):
            return frozenset({global_id(current.name)})
        if isinstance(current, Argument):
            bound = state.param_pointees.get(function.name, {}) \
                .get(current.name)
            if bound is None:
                return _EMPTY
            return frozenset(bound)
        if isinstance(current, Constant):
            return _EMPTY
        if isinstance(current, Register):
            inst = defs.get(current.rid)
            if inst is None:
                return TOP_SET
            if isinstance(inst, AllocaInst):
                return frozenset({local_id(function.name, inst.var_name)})
            if isinstance(inst, (GEPInst, BitCastInst, CastInst)):
                current = inst.operands[0]
                continue
            if isinstance(inst, LoadInst):
                # A pointer read back out of memory: answer through the
                # cell sets.  A cell never stored to holds no valid
                # pointer, so a missing cell contributes nothing.
                if state.store_to_top:
                    return TOP_SET
                cells = _pointer_targets(inst.operands[0], function, defs,
                                         state, depth)
                if TOP in cells:
                    return TOP_SET
                out: Set[VarId] = set()
                for cell in cells:
                    out |= state.cell_pointees.get(cell, set())
                return frozenset(out)
            # Produced by a call or arithmetic: nothing tracks it — top.
            return TOP_SET
        return TOP_SET
    return TOP_SET


def compute_points_to(module: Module,
                      defs: Dict[str, Dict[int, Instruction]],
                      ) -> PointsToState:
    """Fixpoint join of pointer facts over every call site and store.

    For each ``call g(..., a_i, ...)`` in the module, the may-pointee set
    of the pointer-typed actual ``a_i`` (resolved in the *caller*, with
    the facts known so far) joins into formal ``param_names[i]`` of
    ``g``; for each store of a pointer-typed value, the value's pointees
    join into the cell set of every variable the store may target (a
    store through an unresolvable pointer poisons the whole cell space
    via ``store_to_top``).  Iterated to a fixpoint so chains of calls and
    spill/reload sequences propagate; the lattice is finite (ids + TOP)
    and the joins monotone, so this terminates.
    """
    state = PointsToState()
    changed = True
    while changed:
        changed = False
        for caller in module.functions.values():
            caller_defs = defs[caller.name]
            for inst in caller.instructions():
                if isinstance(inst, StoreInst):
                    value = inst.operands[0]
                    if not isinstance(value.type, PointerType):
                        continue
                    value_pts = _pointer_targets(value, caller, caller_defs,
                                                 state)
                    targets = _pointer_targets(inst.operands[1], caller,
                                               caller_defs, state)
                    if TOP in targets:
                        if not state.store_to_top:
                            state.store_to_top = True
                            changed = True
                        continue
                    for target in targets:
                        slot = state.cell_pointees.setdefault(target, set())
                        if not value_pts <= slot:
                            slot |= value_pts
                            changed = True
                elif (isinstance(inst, CallInst) and not inst.is_builtin
                        and inst.callee in module.functions):
                    slots = state.param_pointees.setdefault(inst.callee, {})
                    for param, arg in zip(inst.param_names, inst.operands):
                        if not isinstance(arg.type, PointerType):
                            continue
                        targets = _pointer_targets(arg, caller, caller_defs,
                                                   state)
                        slot = slots.setdefault(param, set())
                        if not targets <= slot:
                            slot |= targets
                            changed = True
    return state


# --------------------------------------------------------------------------- #
# Value sources (static data-dependence of a stored value)
# --------------------------------------------------------------------------- #
def value_sources(value: Value, function: Function,
                  pointers: PointerAnalysis,
                  ret_summaries: Dict[str, Set[VarId]],
                  _depth: int = 0) -> FrozenSet[VarId]:
    """The variables whose values may flow into ``value``.

    Mirrors how the dynamic dependency pass builds register chains
    (:mod:`repro.core.dependency`): a ``Load`` contributes the loaded
    variable (and nothing upstream of its pointer — dynamically a load
    adds only the ``var -> result`` edge); arithmetic / comparison /
    cast chains union their register operands; a GEP result carries its
    *index* sources (the dynamic pass draws ``index -> result`` edges,
    never ``base -> result``); a user call contributes the callee's
    return-value sources; an ``Alloca`` result (an address value)
    contributes nothing.  :data:`TOP` enters on any unknown.
    """
    if _depth > _CHAIN_BOUND:
        return TOP_SET
    if isinstance(value, Constant):
        return _EMPTY
    if isinstance(value, GlobalVariable):
        return frozenset({global_id(value.name)})
    if isinstance(value, Argument):
        # The spill of parameter ``x`` stores the Argument into the local
        # ``x``; call-site edges (summary.py) already route the actual
        # argument's sources into that local's id.
        return frozenset({local_id(function.name, value.name)})
    if not isinstance(value, Register):
        return TOP_SET
    inst = pointers.defs[function.name].get(value.rid)
    if inst is None:
        return TOP_SET
    if isinstance(inst, AllocaInst):
        return _EMPTY
    if isinstance(inst, LoadInst):
        return pointers.resolve(inst.operands[0], function)
    if isinstance(inst, GEPInst):
        sources: Set[VarId] = set()
        for operand in inst.operands[1:]:
            sources |= value_sources(operand, function, pointers,
                                     ret_summaries, _depth + 1)
        return frozenset(sources)
    if isinstance(inst, CallInst):
        if inst.is_builtin or inst.callee not in pointers.module.functions:
            sources = set()
            for operand in inst.operands:
                sources |= value_sources(operand, function, pointers,
                                         ret_summaries, _depth + 1)
            return frozenset(sources)
        return frozenset(ret_summaries.get(inst.callee, TOP_SET))
    if isinstance(inst, (BinaryInst, CmpInst, CastInst, BitCastInst)):
        sources = set()
        for operand in inst.operands:
            sources |= value_sources(operand, function, pointers,
                                     ret_summaries, _depth + 1)
        return frozenset(sources)
    return TOP_SET


# --------------------------------------------------------------------------- #
# Liveness
# --------------------------------------------------------------------------- #
@dataclass
class BlockVarFlow:
    """Upward-exposed variable uses and must-kills of one block."""

    gen: FrozenSet[VarId]
    kill: FrozenSet[VarId]


@dataclass
class LivenessResult:
    """Backward may-liveness of variables over one function's CFG."""

    function: Function
    flow: Dict[BasicBlock, BlockVarFlow]
    live_in: Dict[BasicBlock, FrozenSet[VarId]]
    live_out: Dict[BasicBlock, FrozenSet[VarId]]


def _block_flow(block: BasicBlock, function: Function,
                pointers: PointerAnalysis,
                read_summaries: Dict[str, Set[VarId]]) -> BlockVarFlow:
    gen: Set[VarId] = set()
    kill: Set[VarId] = set()
    fname = function.name
    for inst in block.instructions:
        if isinstance(inst, (LoadInst, GEPInst)):
            for var in pointers.resolve(inst.operands[0], function):
                if var not in kill:
                    gen.add(var)
        elif isinstance(inst, StoreInst):
            targets = pointers.resolve(inst.operands[1], function)
            if len(targets) == 1 and TOP not in targets:
                target = next(iter(targets))
                if _is_scalar_store(inst, function, pointers):
                    kill.add(target)
        elif isinstance(inst, CallInst) and not isinstance(inst, PrintInst):
            callee_reads: Set[VarId] = set()
            if not inst.is_builtin:
                callee_reads |= read_summaries.get(inst.callee, {TOP})
            for operand in inst.operands:
                if isinstance(operand.type, PointerType):
                    callee_reads |= pointers.resolve(operand, function)
            for var in callee_reads:
                visible = (var == TOP or var[0] == "g"
                           or (var[0] == "l" and var[1] == fname))
                if visible and var not in kill:
                    gen.add(var)
    return BlockVarFlow(gen=frozenset(gen), kill=frozenset(kill))


def _is_scalar_store(inst: StoreInst, function: Function,
                     pointers: PointerAnalysis) -> bool:
    """True when the store must fully overwrite its (single) target —
    a direct store to a scalar Alloca or scalar global, no GEP in the
    pointer chain.  Partial (element) writes never kill liveness."""
    pointer = inst.operands[1]
    if isinstance(pointer, GlobalVariable):
        return not pointer.is_array
    if isinstance(pointer, Register):
        producer = pointers.defs[function.name].get(pointer.rid)
        return isinstance(producer, AllocaInst)
    return False


def compute_liveness(function: Function, cfg: ControlFlowGraph,
                     pointers: PointerAnalysis,
                     read_summaries: Dict[str, Set[VarId]]) -> LivenessResult:
    """Classic backward may-liveness over variables (not registers).

    ``live_in(b) = gen(b) ∪ (live_out(b) − kill(b))`` and
    ``live_out(b) = ⋃ live_in(succ)``, iterated to a fixpoint.  A block's
    *gen* is its upward-exposed variable reads (loads and GEP address
    computations, plus what its calls may read); *kill* is only taken
    for must-overwrite scalar stores, so array elements stay live —
    exactly the conservatism the soundness argument needs.
    """
    flow = {block: _block_flow(block, function, pointers, read_summaries)
            for block in function.blocks}
    live_in: Dict[BasicBlock, FrozenSet[VarId]] = {
        block: frozenset() for block in function.blocks}
    live_out: Dict[BasicBlock, FrozenSet[VarId]] = {
        block: frozenset() for block in function.blocks}
    changed = True
    while changed:
        changed = False
        for block in reversed(function.blocks):
            out: Set[VarId] = set()
            for succ in cfg.successors.get(block, []):
                out |= live_in[succ]
            block_flow = flow[block]
            new_in = frozenset(block_flow.gen | (out - block_flow.kill))
            new_out = frozenset(out)
            if new_in != live_in[block] or new_out != live_out[block]:
                live_in[block] = new_in
                live_out[block] = new_out
                changed = True
    return LivenessResult(function=function, flow=flow,
                          live_in=live_in, live_out=live_out)


def compute_read_summaries(module: Module,
                           pointers: PointerAnalysis) -> Dict[str, Set[VarId]]:
    """``function -> may-read variable ids`` (transitively through calls).

    Used by liveness at call sites and by the static report.  The join
    runs to a fixpoint so mutual recursion converges; builtin calls read
    nothing beyond their (value) arguments.
    """
    reads: Dict[str, Set[VarId]] = {name: set() for name in module.functions}
    changed = True
    while changed:
        changed = False
        for name, function in module.functions.items():
            acc = set(reads[name])
            for inst in function.instructions():
                if isinstance(inst, (LoadInst, GEPInst)):
                    acc |= pointers.resolve(inst.operands[0], function)
                elif (isinstance(inst, CallInst)
                        and not isinstance(inst, PrintInst)
                        and not inst.is_builtin
                        and inst.callee in reads):
                    acc |= reads[inst.callee]
            if acc != reads[name]:
                reads[name] = acc
                changed = True
    return reads
