"""Static engine prefilter: skip pass dispatch for records the IR proves
irrelevant.

The fused :class:`~repro.core.engine.AnalysisEngine` decodes every record
and dispatches it to every subscribed pass, even when the static analysis
can prove the record cannot contribute to the report.  This module turns
the static MLI-candidate set of :mod:`repro.static.summary` into a
per-record skip decision the engine consults **outside the loop region**:

* ``REGION_INSIDE`` records are never skipped — the dependency pass
  materializes every inside record into the serialized complete DDG, so
  the inside region is bit-for-bit load-bearing;
* outside the loop, only ``Load`` / ``Store`` / ``GetElementPtr``
  records can reach a pass that does anything (the fused pipeline's
  passes gate every other kind to the inside region), so other kinds
  skip unconditionally — and ``GetElementPtr`` also skips in the after
  region, where only the R/W extraction (loads/stores) listens;
* a memory record skips when its pointer operand provably resolves only
  to variables outside the candidate set: register operands through the
  per-function may-point-to sets (``skip_registers``), named
  global/argument operands through a name check (``skip_names``).

Soundness leans on ``dynamic MLI ⊆ static candidates`` (the cross-check
oracle's invariant) plus the in-bounds-indexing assumption spelled out
in ``docs/static.md``: a pointer that statically addresses only
non-candidate variables must not alias a candidate at run time.  Report
equality under the prefilter is asserted fleet-wide by
``tests/test_static_prefilter.py`` and ``benchmarks/bench_static_prefilter.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Tuple

from repro.core.engine import REGION_BEFORE
from repro.ir.instructions import (
    AllocaInst,
    BitCastInst,
    CastInst,
    GEPInst,
    LoadInst,
)
from repro.ir.opcodes import Opcode
from repro.ir.types import PointerType
from repro.static.dataflow import TOP, global_id, local_id, var_id_name
from repro.static.summary import StaticModuleAnalysis
from repro.trace.records import TraceRecord

_LOAD = int(Opcode.LOAD)
_STORE = int(Opcode.STORE)
_GEP = int(Opcode.GETELEMENTPTR)

#: opcode -> index of the pointer operand in the trace record.
_POINTER_OPERAND = {_LOAD: 0, _STORE: 1, _GEP: 0}

#: opcodes that skip unconditionally outside the loop region: every kind
#: that is not a Load/Store/GEP reaches no fused-pipeline pass there, so
#: the engine can resolve them with a set-membership test and never call
#: into the filter (the per-record call overhead would otherwise eat the
#: savings on arithmetic/branch-heavy traces).
ALWAYS_SKIP_OPCODES = frozenset(
    int(op) for op in Opcode if int(op) not in _POINTER_OPERAND)


@dataclass(frozen=True)
class StaticPrefilter:
    """Skip tables handed to the engine (immutable once built).

    ``skip_registers[fn]`` holds the *operand names* of registers (the
    trace spells register operands as their rid string) whose static
    pointee sets are fully known and candidate-free; ``skip_names[fn]``
    holds non-register operand names — globals, ``fn``'s locals and
    parameter bindings — every possible referent of which is provably
    non-candidate in ``fn``.  ``fingerprint`` is the owning analysis'
    digest — it joins the artifact-store cache key when prefiltering is
    on.
    """

    spec_function: str
    include_global_accesses_in_calls: bool
    skip_registers: Dict[str, FrozenSet[str]] = field(default_factory=dict)
    skip_names: Dict[str, FrozenSet[str]] = field(default_factory=dict)
    fingerprint: str = ""

    def should_skip(self, record: TraceRecord, region: int) -> bool:
        """Decide one record (the engine only asks outside the loop).

        The engine guarantees ``region != REGION_INSIDE`` here; the
        filter never needs to (and never may) reason about inside
        records.
        """
        operand_index = _POINTER_OPERAND.get(record.opcode)
        if operand_index is None:
            # Non-memory kinds reach no pass outside the loop region.
            return True
        if region == REGION_BEFORE:
            if (record.function != self.spec_function
                    and not self.include_global_accesses_in_calls):
                # The MLI collection rejects foreign-function records
                # outright when the global-access switch is off, and
                # nothing else listens before the loop.
                return True
        elif record.opcode == _GEP:
            # After the loop only the R/W extraction listens, and it only
            # handles loads and stores.
            return True
        operands = record.operands
        if len(operands) <= operand_index:
            return False
        operand = operands[operand_index]
        if operand.is_register:
            table = self.skip_registers.get(record.function)
        else:
            table = self.skip_names.get(record.function)
        return table is not None and operand.name in table

    def make_skip_plan(self) -> Tuple[
            FrozenSet[int], Callable[[TraceRecord, int], bool]]:
        """Build the engine's fast dispatch plan.

        Returns ``(always_skip_opcodes, memory_skip)``: a frozenset of raw
        opcode values the engine may skip outside the loop with a bare
        membership test, and a closure deciding the remaining (Load /
        Store / GEP) records.  The closure binds every table and constant
        as a local so the per-record cost stays well under the pass
        callbacks it replaces; it is semantically the restriction of
        :meth:`should_skip` to memory opcodes.
        """
        pointer_operand = _POINTER_OPERAND
        gep = _GEP
        region_before = REGION_BEFORE
        spec_function = self.spec_function
        include = self.include_global_accesses_in_calls
        registers_get = dict(self.skip_registers).get
        names_get = dict(self.skip_names).get

        def memory_skip(record: TraceRecord, region: int) -> bool:
            function = record.function
            if region == region_before:
                if function != spec_function and not include:
                    return True
            elif record.opcode == gep:
                return True
            operands = record.operands
            operand_index = pointer_operand[record.opcode]
            if len(operands) <= operand_index:
                return False
            operand = operands[operand_index]
            table = (registers_get(function) if operand.is_register
                     else names_get(function))
            return table is not None and operand.name in table

        return ALWAYS_SKIP_OPCODES, memory_skip

    def skippable_count(self) -> int:
        """Total skip-table entries (for reports and sanity checks)."""
        return (sum(len(v) for v in self.skip_registers.values())
                + sum(len(v) for v in self.skip_names.values()))


def build_prefilter(analysis: StaticModuleAnalysis) -> StaticPrefilter:
    """Derive the skip tables from a spec-bearing static analysis.

    A register is skippable in its function when every variable its
    pointer chain may address is known (no :data:`TOP`) and none is a
    static MLI candidate.  A name is skippable in a function when every
    variable the name can refer to there — the global of that name, the
    function's own local of that name, and for parameter names the full
    interprocedural pointee set of the parameter — is known, TOP-free
    and candidate-free.
    """
    if analysis.spec is None:
        raise ValueError("build_prefilter needs a spec-bearing analysis "
                         "(analyze_module(..., spec=...))")
    candidates = analysis.candidate_ids
    skip_registers: Dict[str, FrozenSet[str]] = {}
    skip_names: Dict[str, FrozenSet[str]] = {}
    for name, summary in analysis.functions.items():
        function = summary.function
        registers = set()
        for rid, site in summary.defuse.defs.items():
            inst = site.inst
            if not isinstance(inst, (AllocaInst, GEPInst, BitCastInst,
                                     CastInst, LoadInst)):
                continue
            result = inst.result
            if result is None or not isinstance(result.type, PointerType):
                continue
            pointees = analysis.pointers.resolve(result, function)
            if not pointees:
                continue
            if TOP in pointees or pointees & candidates:
                continue
            registers.add(str(rid))
        if registers:
            skip_registers[name] = frozenset(registers)

        # Named (non-register) pointer operands: the tracer resolves most
        # pointer chains down to a variable name, so this is the table
        # that carries the skip volume.  A name is skippable in this
        # function only when *every* variable it can refer to here — the
        # global of that name, this function's local of that name, and
        # (for parameter names) everything the parameter may point to —
        # is known, TOP-free and candidate-free.
        bearers: Dict[str, set] = {}
        for gvar in analysis.module.globals:
            bearers.setdefault(gvar.name, set()).add(global_id(gvar.name))
        for inst in function.instructions():
            if isinstance(inst, AllocaInst) and inst.var_name:
                bearers.setdefault(inst.var_name, set()).add(
                    local_id(name, inst.var_name))
        for param, pointees in \
                analysis.pointers.param_pointees.get(name, {}).items():
            bearers.setdefault(param, set()).update(pointees)
            # A resolved binding is spelled with the *pointee's* name, so
            # the pointee also bears its own name in this function.
            for var_id in pointees:
                pointee_name = var_id_name(var_id)
                if pointee_name is not None:
                    bearers.setdefault(pointee_name, set()).add(var_id)
                else:
                    bearers.setdefault(param, set()).add(TOP)
        names = {
            bearer_name for bearer_name, ids in bearers.items()
            if ids and TOP not in ids and not ids & candidates}
        if names:
            skip_names[name] = frozenset(names)

    return StaticPrefilter(
        spec_function=analysis.spec.function,
        include_global_accesses_in_calls=(
            analysis.include_global_accesses_in_calls),
        skip_registers=skip_registers,
        skip_names=skip_names,
        fingerprint=analysis.fingerprint(),
    )
