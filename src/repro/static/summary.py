"""Whole-module static analysis: CFG/dominators/loops per function, the
static main-loop identification, the static MLI-candidate set, and the
static DDG over-approximation.

:func:`analyze_module` is the one entry point.  Given a module (and
optionally the dynamic pipeline's :class:`~repro.core.config.MainLoopSpec`)
it computes:

* per-function :class:`FunctionSummary` objects — CFG, dominator tree,
  natural loops, def-use chains and variable liveness — reusing the
  :mod:`repro.analysis` primitives rather than re-deriving them;
* the **static main loop**: the outermost natural loop of the spec
  function whose header branch lies in the MCLR line range (the static
  twin of what the dynamic walk derives from record lines);
* the **static MLI candidates**: every variable a statically-inside
  instruction may access, restricted (like the dynamic MLI population)
  to globals and spec-function locals.  "Statically inside" covers the
  in-range loops' blocks, any spec-function instruction with a line in
  range, and the full bodies of functions transitively callable from
  there — a superset of the dynamic extent, which is what makes
  ``dynamic MLI ⊆ candidates`` a theorem rather than a hope;
* the **static DDG**: a var-level may-dependence graph whose edge
  ``u → v`` means "a run could make ``v`` depend on ``u``".  Every
  var→var edge the dynamic analysis can produce is covered by an
  ancestor path here (checked fleet-wide by ``tests/test_static_check.py``).

The :meth:`StaticModuleAnalysis.fingerprint` digest joins the artifact
store's cache key when the engine prefilter is on: two runs whose static
skip decisions could differ must never share a store entry.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.cfg import ControlFlowGraph
from repro.analysis.dominators import DominatorTree
from repro.analysis.induction import find_main_loop
from repro.analysis.loops import Loop, LoopInfo, find_loops
from repro.core.config import MainLoopSpec
from repro.ir.instructions import (
    AllocaInst,
    CallInst,
    GEPInst,
    Instruction,
    LoadInst,
    PrintInst,
    RetInst,
    StoreInst,
)
from repro.ir.module import Function, Module
from repro.ir.types import PointerType
from repro.ir.values import Register
from repro.static.dataflow import (
    TOP,
    DefUseChains,
    LivenessResult,
    PointerAnalysis,
    VarId,
    build_def_use,
    compute_liveness,
    compute_read_summaries,
    global_id,
    local_id,
    value_sources,
    var_id_name,
)


@dataclass
class FunctionSummary:
    """All static artefacts of one function."""

    function: Function
    cfg: ControlFlowGraph
    dom: DominatorTree
    loop_info: LoopInfo
    defuse: DefUseChains
    liveness: LivenessResult

    @property
    def name(self) -> str:
        return self.function.name


class StaticDDG:
    """Var-level may-dependence graph over abstract variable ids.

    Edges follow the dynamic convention: ``parent → child`` means "child
    may depend on parent".  :data:`~repro.static.dataflow.TOP` is a real
    node: a store through an unresolvable pointer adds ``source → TOP``
    (it may define *any* variable) and an unresolvable source adds
    ``TOP → target`` (the target may depend on *anything*).
    :meth:`may_depend` folds both readings into one query.
    """

    def __init__(self) -> None:
        self._parents: Dict[VarId, Set[VarId]] = {}
        self._name_index: Dict[str, Set[VarId]] = {}

    def add_node(self, var_id: VarId) -> None:
        if var_id not in self._parents:
            self._parents[var_id] = set()
            name = var_id_name(var_id)
            if name is not None:
                self._name_index.setdefault(name, set()).add(var_id)

    def add_edge(self, parent: VarId, child: VarId) -> None:
        self.add_node(parent)
        self.add_node(child)
        if parent != child:
            self._parents[child].add(parent)

    def nodes(self) -> List[VarId]:
        return list(self._parents)

    def parents_of(self, var_id: VarId) -> Set[VarId]:
        return set(self._parents.get(var_id, set()))

    def edges(self) -> List[Tuple[VarId, VarId]]:
        out = []
        for child, parents in self._parents.items():
            for parent in parents:
                out.append((parent, child))
        return out

    def ids_for_name(self, name: str) -> Set[VarId]:
        """Every known id carrying source-level ``name`` (any owner)."""
        return set(self._name_index.get(name, set()))

    def ancestors_of(self, var_id: VarId) -> Set[VarId]:
        """Transitive parents of ``var_id`` (not including itself)."""
        seen: Set[VarId] = set()
        work = list(self._parents.get(var_id, set()))
        while work:
            current = work.pop()
            if current in seen:
                continue
            seen.add(current)
            work.extend(self._parents.get(current, set()))
        return seen

    def may_depend(self, child: VarId, parent: VarId) -> bool:
        """May ``child``'s value depend on ``parent``?

        True when ``parent`` is a static ancestor of ``child``, when the
        child's ancestry reaches :data:`TOP` (it may depend on anything),
        or when ``parent`` flows into a TOP-target store (it may feed
        anything).  Unknown ids are conservatively dependent — the graph
        only speaks for ids it has seen.
        """
        if child == parent:
            return True
        if child not in self._parents or parent not in self._parents:
            return True
        ancestors = self.ancestors_of(child)
        if TOP in ancestors:
            return True
        if parent in ancestors:
            return True
        # parent → ... → TOP: the unresolvable store may have defined child.
        top_ancestry = self.ancestors_of(TOP)
        return parent in top_ancestry

    @property
    def edge_count(self) -> int:
        return sum(len(parents) for parents in self._parents.values())


@dataclass
class StaticModuleAnalysis:
    """The full static picture of one module (plus spec-derived results)."""

    module: Module
    pointers: PointerAnalysis
    functions: Dict[str, FunctionSummary]
    read_summaries: Dict[str, Set[VarId]]
    call_graph: Dict[str, Set[str]]
    static_ddg: StaticDDG
    #: ``function -> value-register rid -> may-store-target ids`` for every
    #: store whose stored value is that register (DDG-edge feasibility).
    store_value_targets: Dict[str, Dict[int, Set[VarId]]]
    spec: Optional[MainLoopSpec] = None
    include_global_accesses_in_calls: bool = False
    #: The statically identified main computation loop (None without a
    #: spec, or when no loop header lies in the MCLR range).
    main_loop: Optional[Loop] = None
    #: Functions whose bodies are statically reachable from inside the
    #: main loop (the spec function included).
    inside_functions: FrozenSet[str] = frozenset()
    #: Static MLI candidates: globals / spec-function locals that a
    #: statically-inside instruction may access.
    candidate_ids: FrozenSet[VarId] = frozenset()
    #: True when an inside access resolved to TOP and the candidate set
    #: was widened to the whole global + spec-local universe.
    saw_top: bool = False

    @property
    def candidate_names(self) -> FrozenSet[str]:
        names = set()
        for var_id in self.candidate_ids:
            name = var_id_name(var_id)
            if name is not None:
                names.add(name)
        return frozenset(names)

    def summary_for(self, function: str) -> FunctionSummary:
        return self.functions[function]

    def is_candidate_name(self, name: str) -> bool:
        return name in self.candidate_names

    def fingerprint(self) -> str:
        """Deterministic digest of every input the prefilter depends on.

        Covers the candidate set, the spec, the global-access switch and
        a structural digest of the module IR — anything that can change a
        skip decision changes the fingerprint, so prefiltered runs never
        share a cache entry with runs that could filter differently.
        """
        payload = {
            "spec": None if self.spec is None else [
                self.spec.function, self.spec.start_line, self.spec.end_line],
            "include_global_accesses_in_calls":
                self.include_global_accesses_in_calls,
            "candidates": sorted("/".join(v) for v in self.candidate_ids),
            "saw_top": self.saw_top,
            "inside_functions": sorted(self.inside_functions),
            "module": _module_digest(self.module),
        }
        encoded = json.dumps(payload, sort_keys=True).encode()
        return hashlib.sha256(encoded).hexdigest()


def _module_digest(module: Module) -> str:
    parts: List[str] = [g.name for g in module.globals]
    for name, function in sorted(module.functions.items()):
        parts.append(f"fn:{name}")
        for block in function.blocks:
            parts.append(f"bb:{block.name}")
            for inst in block.instructions:
                rid = inst.result.rid if inst.result is not None else -1
                parts.append(f"{int(inst.opcode)}:{rid}:{inst.line}")
    return hashlib.sha256("\n".join(parts).encode()).hexdigest()


# --------------------------------------------------------------------------- #
# Construction
# --------------------------------------------------------------------------- #
def _build_call_graph(module: Module) -> Dict[str, Set[str]]:
    graph: Dict[str, Set[str]] = {name: set() for name in module.functions}
    for name, function in module.functions.items():
        for inst in function.instructions():
            if (isinstance(inst, CallInst) and not isinstance(inst, PrintInst)
                    and not inst.is_builtin
                    and inst.callee in module.functions):
                graph[name].add(inst.callee)
    return graph


def _return_summaries(module: Module,
                      pointers: PointerAnalysis) -> Dict[str, Set[VarId]]:
    """``function -> may-sources of its return value`` (fixpoint)."""
    summaries: Dict[str, Set[VarId]] = {name: set()
                                        for name in module.functions}
    changed = True
    while changed:
        changed = False
        for name, function in module.functions.items():
            acc = set(summaries[name])
            for inst in function.instructions():
                if isinstance(inst, RetInst) and inst.operands:
                    acc |= value_sources(inst.operands[0], function,
                                         pointers, summaries)
            if acc != summaries[name]:
                summaries[name] = acc
                changed = True
    return summaries


def _build_static_ddg(module: Module, pointers: PointerAnalysis,
                      ret_summaries: Dict[str, Set[VarId]],
                      ) -> Tuple[StaticDDG, Dict[str, Dict[int, Set[VarId]]]]:
    ddg = StaticDDG()
    store_value_targets: Dict[str, Dict[int, Set[VarId]]] = {}
    for gvar in module.globals:
        ddg.add_node(global_id(gvar.name))
    for name, function in module.functions.items():
        by_rid: Dict[int, Set[VarId]] = {}
        store_value_targets[name] = by_rid
        for inst in function.instructions():
            if isinstance(inst, AllocaInst):
                ddg.add_node(local_id(name, inst.var_name))
            elif isinstance(inst, StoreInst):
                targets = pointers.resolve(inst.operands[1], function)
                sources = value_sources(inst.operands[0], function,
                                        pointers, ret_summaries)
                value = inst.operands[0]
                if isinstance(value, Register):
                    by_rid.setdefault(value.rid, set()).update(targets)
                for target in targets:
                    for source in sources:
                        ddg.add_edge(source, target)
                    if not sources:
                        ddg.add_node(target)
            elif (isinstance(inst, CallInst)
                    and not isinstance(inst, PrintInst)
                    and not inst.is_builtin
                    and inst.callee in module.functions):
                # The callee spills parameter p into its local p; route the
                # actual argument's sources into that local (the static twin
                # of the dynamic binding → var edge).  For a pointer-typed
                # actual the dynamic binding names the *pointed-to* variable
                # (an array decays through a GEP whose value sources are only
                # its indices), so the pointee set is the edge source there.
                for param, arg in zip(inst.param_names, inst.operands):
                    slot_id = local_id(inst.callee, param)
                    if isinstance(arg.type, PointerType):
                        sources = pointers.resolve(arg, function)
                    else:
                        sources = value_sources(arg, function, pointers,
                                                ret_summaries)
                    for source in sources:
                        ddg.add_edge(source, slot_id)
    return ddg, store_value_targets


def _statically_inside(module: Module, spec: MainLoopSpec,
                       summary: FunctionSummary,
                       ) -> Tuple[List[Tuple[Function, Instruction]],
                                  FrozenSet[str]]:
    """Instructions that may execute inside the main loop's dynamic extent.

    The dynamic extent is bounded by records at in-range spec-function
    lines; everything executed between them is loop-body code or callee
    code reached from it.  Statically that is covered by: blocks of every
    loop whose header line is in range, any spec-function instruction
    with an in-range line, and the whole bodies of transitively called
    functions.
    """
    function = summary.function
    inside: List[Tuple[Function, Instruction]] = []
    in_loop_blocks = set()
    for loop in summary.loop_info.loops_with_header_line(
            spec.start_line, spec.end_line):
        in_loop_blocks |= loop.blocks
    for block in function.blocks:
        for inst in block.instructions:
            if block in in_loop_blocks or (
                    inst.line and spec.contains_line(inst.line)):
                inside.append((function, inst))

    call_graph = _build_call_graph(module)
    seen: Set[str] = {function.name}
    work: List[str] = []
    for _, inst in inside:
        if (isinstance(inst, CallInst) and not isinstance(inst, PrintInst)
                and not inst.is_builtin and inst.callee in module.functions):
            work.append(inst.callee)
    while work:
        callee = work.pop()
        if callee in seen:
            continue
        seen.add(callee)
        callee_fn = module.functions[callee]
        inside.extend((callee_fn, inst) for inst in callee_fn.instructions())
        work.extend(call_graph.get(callee, set()))
    return inside, frozenset(seen)


def _candidate_universe(module: Module, spec: MainLoopSpec) -> Set[VarId]:
    universe: Set[VarId] = {global_id(g.name) for g in module.globals}
    function = module.functions.get(spec.function)
    if function is not None:
        for inst in function.instructions():
            if isinstance(inst, AllocaInst):
                universe.add(local_id(spec.function, inst.var_name))
    return universe


def _collect_candidates(module: Module, spec: MainLoopSpec,
                        summary: FunctionSummary,
                        pointers: PointerAnalysis,
                        ) -> Tuple[FrozenSet[VarId], FrozenSet[str], bool]:
    inside, inside_functions = _statically_inside(module, spec, summary)
    accessed: Set[VarId] = set()
    saw_top = False
    for owner, inst in inside:
        if isinstance(inst, (LoadInst, GEPInst)):
            pointer = inst.operands[0]
        elif isinstance(inst, StoreInst):
            pointer = inst.operands[1]
        else:
            continue
        targets = pointers.resolve(pointer, owner)
        if TOP in targets:
            saw_top = True
        accessed |= targets
    if saw_top:
        candidates = _candidate_universe(module, spec)
    else:
        # The dynamic MLI population is globals plus spec-function locals;
        # accesses resolving to other functions' locals can never join the
        # dynamic MLI set, so they are not candidates either.
        candidates = {
            var_id for var_id in accessed
            if var_id[0] == "g"
            or (var_id[0] == "l" and var_id[1] == spec.function)}
    return frozenset(candidates), inside_functions, saw_top


def analyze_module(module: Module, spec: Optional[MainLoopSpec] = None,
                   include_global_accesses_in_calls: bool = False,
                   ) -> StaticModuleAnalysis:
    """Run the full static analysis over ``module``.

    Args:
        module: the compiled IR module.
        spec: the dynamic pipeline's main-loop location; enables the
            spec-derived results (static main loop, MLI candidates).
        include_global_accesses_in_calls: mirror of the dynamic config
            switch — it changes which records the prefilter may skip, so
            it is part of the analysis identity (and fingerprint).

    Returns:
        The populated :class:`StaticModuleAnalysis`.
    """
    pointers = PointerAnalysis(module)
    read_summaries = compute_read_summaries(module, pointers)

    functions: Dict[str, FunctionSummary] = {}
    for name, function in module.functions.items():
        loop_info = find_loops(function)
        cfg = loop_info.cfg
        functions[name] = FunctionSummary(
            function=function,
            cfg=cfg,
            dom=loop_info.dom,
            loop_info=loop_info,
            defuse=build_def_use(function),
            liveness=compute_liveness(function, cfg, pointers,
                                      read_summaries),
        )

    ret_summaries = _return_summaries(module, pointers)
    static_ddg, store_value_targets = _build_static_ddg(
        module, pointers, ret_summaries)

    analysis = StaticModuleAnalysis(
        module=module,
        pointers=pointers,
        functions=functions,
        read_summaries=read_summaries,
        call_graph=_build_call_graph(module),
        static_ddg=static_ddg,
        store_value_targets=store_value_targets,
        spec=spec,
        include_global_accesses_in_calls=include_global_accesses_in_calls,
    )

    if spec is not None and spec.function in functions:
        summary = functions[spec.function]
        analysis.main_loop = find_main_loop(
            summary.function, spec.start_line, spec.end_line,
            loop_info=summary.loop_info)
        candidates, inside_functions, saw_top = _collect_candidates(
            module, spec, summary, pointers)
        analysis.candidate_ids = candidates
        analysis.inside_functions = inside_functions
        analysis.saw_top = saw_top
    return analysis
