"""Plain-text rendering of the static analysis (the ``static-report``
CLI verb).

One self-contained formatter so the CLI stays thin: per function it
prints the CFG edges, the dominator tree, the natural-loop forest and
the per-block variable liveness; with a spec at hand it adds the static
main loop, the MLI-candidate set and the static DDG size.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.analysis.induction import find_induction_variable
from repro.core.config import MainLoopSpec
from repro.ir.module import Module
from repro.static.dataflow import VarId, format_var_id
from repro.static.summary import (
    FunctionSummary,
    StaticModuleAnalysis,
    analyze_module,
)


def _format_ids(ids: Iterable[VarId]) -> str:
    names = sorted(format_var_id(var_id) for var_id in ids)
    return ", ".join(names) if names else "-"


def _render_function(summary: FunctionSummary) -> List[str]:
    function = summary.function
    cfg = summary.cfg
    reachable = cfg.reachable_blocks()
    lines = [f"function {function.name} "
             f"({len(function.blocks)} blocks, {len(reachable)} reachable)"]

    edges = []
    for block in function.blocks:
        succs = cfg.successors.get(block, [])
        if succs:
            edges.append(f"{block.name} -> "
                         + ", ".join(s.name for s in succs))
    lines.append("  cfg: " + ("; ".join(edges) if edges else "(no edges)"))

    idoms = []
    for block in function.blocks:
        idom = summary.dom.idom.get(block)
        if idom is not None:
            idoms.append(f"{block.name} <- {idom.name}")
    lines.append("  idom: " + ("; ".join(idoms) if idoms else "(entry only)"))

    loops = summary.loop_info.loops
    if loops:
        for loop in sorted(loops, key=lambda lp: (lp.depth, lp.header_line)):
            latches = ", ".join(latch.name for latch in loop.latches)
            lines.append(
                f"  loop: header {loop.header.name} "
                f"(line {loop.header_line}, depth {loop.depth}, "
                f"{len(loop.blocks)} blocks, latches {latches})")
    else:
        lines.append("  loops: none")

    for block in function.blocks:
        live_in = summary.liveness.live_in.get(block, frozenset())
        live_out = summary.liveness.live_out.get(block, frozenset())
        lines.append(f"  live {block.name}: "
                     f"in=[{_format_ids(live_in)}] "
                     f"out=[{_format_ids(live_out)}]")
    return lines


def render_static_report(module: Module,
                         spec: Optional[MainLoopSpec] = None,
                         analysis: Optional[StaticModuleAnalysis] = None,
                         ) -> str:
    """The full static report text for ``module`` (optionally spec-aware)."""
    if analysis is None:
        analysis = analyze_module(module, spec=spec)
    lines = [f"static analysis of module {module.name!r} "
             f"({len(module.globals)} globals, "
             f"{len(module.functions)} functions)"]
    for name in module.functions:
        lines.extend(_render_function(analysis.functions[name]))

    if spec is not None:
        lines.append(f"main loop spec: {spec.function} lines {spec.mclr}")
        loop = analysis.main_loop
        if loop is None:
            lines.append("  static main loop: NOT FOUND")
        else:
            lines.append(
                f"  static main loop: header {loop.header.name} at line "
                f"{loop.header_line} (depth {loop.depth}, "
                f"{len(loop.blocks)} blocks)")
            induction = find_induction_variable(
                analysis.functions[spec.function].function, loop)
            lines.append(
                "  static induction variable: "
                + (induction.name if induction is not None else "(none)"))
        candidates = analysis.candidate_ids
        top_note = " (widened to the full universe: an access resolved " \
                   "to top)" if analysis.saw_top else ""
        lines.append(f"  static MLI candidates ({len(candidates)}){top_note}: "
                     f"{_format_ids(candidates)}")
        lines.append("  statically inside: functions "
                     + ", ".join(sorted(analysis.inside_functions)))
        lines.append(f"  static DDG: {len(analysis.static_ddg.nodes())} "
                     f"nodes, {analysis.static_ddg.edge_count} edges")
    return "\n".join(lines)
