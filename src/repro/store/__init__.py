"""``repro.store`` — persistent, content-addressed analysis artifacts.

Every ``analyze``/``app`` invocation used to recompute the full record walk
from scratch, even for a byte-identical trace and configuration.  This
package makes analysis results durable and addressable:

* :mod:`repro.store.serialize` — versioned JSON serialization of the full
  :class:`~repro.core.report.AutoCheckReport` surface with an exact
  round-trip guarantee (``from_json(to_json(r)) == r``);
* :mod:`repro.store.digest` — trace content digests: read from the binary
  footer (computed once at write time), raw-bytes fallback for text
  traces, and a matching in-memory digest — all at zero record decodes;
* :mod:`repro.store.cache` — the on-disk store keyed by
  ``(trace digest, config fingerprint, schema version)``, with atomic
  writes, self-healing corrupted entries, and an eviction sweep behind the
  CLI ``gc`` verb;
* :mod:`repro.store.batch` — the ``analyze-batch`` frontend: fan a
  manifest of traces/apps across a process pool, reusing the store so warm
  fleet runs are near-instant.

Wired into the pipeline via
:attr:`repro.core.config.AutoCheckConfig.use_cache` (CLI: ``--cache``); a
hit skips the record walk entirely.  See ``docs/architecture.md`` for how
the store composes with the analysis engines.
"""

from repro.store.batch import (
    BatchEntry,
    BatchItemResult,
    BatchResult,
    ManifestError,
    analyze_app_cached,
    app_trace_path,
    ensure_app_trace,
    load_manifest,
    map_over_pool,
    run_batch,
)
from repro.store.cache import (
    ArtifactStore,
    GCStats,
    StoreError,
    StoreStats,
    artifact_key,
    config_fingerprint,
    default_cache_dir,
)
from repro.store.digest import (
    compute_trace_digest,
    digest_file_bytes,
    digest_trace,
)
from repro.store.serialize import (
    SCHEMA_VERSION,
    SerializationError,
    report_from_dict,
    report_from_json,
    report_to_dict,
    report_to_json,
)

__all__ = [
    "ArtifactStore",
    "BatchEntry",
    "BatchItemResult",
    "BatchResult",
    "GCStats",
    "ManifestError",
    "SCHEMA_VERSION",
    "SerializationError",
    "StoreError",
    "StoreStats",
    "analyze_app_cached",
    "app_trace_path",
    "artifact_key",
    "ensure_app_trace",
    "map_over_pool",
    "compute_trace_digest",
    "config_fingerprint",
    "default_cache_dir",
    "digest_file_bytes",
    "digest_trace",
    "load_manifest",
    "report_from_dict",
    "report_from_json",
    "report_to_dict",
    "report_to_json",
    "run_batch",
]
