"""Batch analysis frontend: fan a manifest of traces/apps over a pool.

The artifact store turns a repeat analysis into an O(1) lookup; this module
amortizes that across a whole fleet.  A *manifest* names what to analyse —
bundled benchmark apps and/or external trace files with their main-loop
locations — and :func:`run_batch` drives every entry through the cached
pipeline, optionally across a process pool.  On a warm store every entry is
a digest lookup plus a JSON load, so re-validating the fleet after a config
or code change that does *not* touch the analysis is near-instant (the
``benchmarks/bench_artifact_store.py`` bar is ≥5x; measured far above).

Manifest format (JSON): either a bare list of entries, or an object::

    {
      "trace_dir": "traces",            // optional, relative to the manifest
      "entries": [
        {"app": "cg"},                  // a bundled benchmark
        {"app": "bigarray", "params": {"size": 8192}},
        {"trace": "run.btrace",         // an existing trace file
         "function": "main", "start": 12, "end": 18,
         "induction": "it"}             // optional
      ]
    }

App entries compile, trace (binary encoding, into ``trace_dir``) and
analyse; the trace file is *reused* when it already exists — tracing is
deterministic under a fixed seed, so a pre-existing file is the same
artifact and the warm path skips generation entirely.  Trace entries
analyse an existing file of either encoding.
"""

from __future__ import annotations

import contextlib
import functools
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.config import AutoCheckConfig, MainLoopSpec
from repro.core.pipeline import AutoCheck
from repro.store.cache import default_cache_dir
from repro.util.formatting import render_table


class ManifestError(ValueError):
    """Raised when a batch manifest cannot be interpreted."""


@dataclass
class BatchEntry:
    """One unit of batch work: a bundled app or an external trace file."""

    #: Registered app name (mutually exclusive with ``trace``).
    app: Optional[str] = None
    #: Extra app source parameters (forwarded to the source builder).
    params: Dict[str, int] = field(default_factory=dict)
    #: Path to an existing trace file (mutually exclusive with ``app``).
    trace: Optional[str] = None
    function: str = "main"
    start: Optional[int] = None
    end: Optional[int] = None
    induction: Optional[str] = None
    seed: int = 314159

    @property
    def name(self) -> str:
        if self.app is not None:
            return self.app
        return os.path.basename(self.trace or "<unnamed>")

    def validate(self) -> None:
        if (self.app is None) == (self.trace is None):
            raise ManifestError(
                f"batch entry must set exactly one of 'app' or 'trace': "
                f"{self!r}")
        if self.trace is not None and (self.start is None or self.end is None):
            raise ManifestError(
                f"trace entry {self.trace!r} needs 'start' and 'end' "
                f"main-loop lines")


@dataclass
class BatchItemResult:
    """Outcome of one batch entry."""

    name: str
    ok: bool
    cache_hit: bool
    seconds: float
    #: ``name (DepType)`` strings of the detected critical variables.
    critical: List[str] = field(default_factory=list)
    error: Optional[str] = None


@dataclass
class BatchResult:
    """Outcome of one :func:`run_batch` run."""

    items: List[BatchItemResult]
    seconds: float

    @property
    def hits(self) -> int:
        return sum(1 for item in self.items if item.ok and item.cache_hit)

    @property
    def misses(self) -> int:
        return sum(1 for item in self.items if item.ok and not item.cache_hit)

    @property
    def failures(self) -> int:
        return sum(1 for item in self.items if not item.ok)

    @property
    def all_ok(self) -> bool:
        return self.failures == 0

    def summary(self) -> str:
        """Human readable per-entry table plus totals."""
        rows = []
        for item in self.items:
            if item.ok:
                status = "hit" if item.cache_hit else "miss"
                detail = ", ".join(item.critical) or "-"
            else:
                status = "ERROR"
                detail = item.error or "unknown error"
            rows.append((item.name, status, f"{item.seconds:.3f}s", detail))
        table = render_table(("entry", "cache", "time", "critical variables"),
                             rows)
        totals = (f"{len(self.items)} entries: {self.hits} hits, "
                  f"{self.misses} misses, {self.failures} failures "
                  f"in {self.seconds:.3f}s")
        return f"{table}\n{totals}"


# --------------------------------------------------------------------------- #
# Manifest loading
# --------------------------------------------------------------------------- #
def _entry_from_dict(raw: Dict[str, Any]) -> BatchEntry:
    known = {"app", "params", "trace", "function", "start", "end",
             "induction", "seed"}
    unknown = set(raw) - known
    if unknown:
        raise ManifestError(
            f"unknown batch entry keys {sorted(unknown)} in {raw!r}")
    entry = BatchEntry(**raw)
    entry.validate()
    return entry


def load_manifest(path: str) -> Tuple[List[BatchEntry], Optional[str]]:
    """Read a manifest file.

    Returns:
        ``(entries, trace_dir)`` — relative paths in the manifest (entry
        ``trace`` files and the manifest-level ``trace_dir``) are resolved
        against the manifest's own directory, so a manifest works from any
        invocation directory; ``trace_dir`` is ``None`` when the manifest
        does not set one.

    Raises:
        ManifestError: on unreadable files, bad JSON, or invalid entries —
            the message names the offending manifest path.
    """
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise ManifestError(f"cannot read manifest {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ManifestError(f"manifest {path!r} is not JSON: {exc}") from exc

    manifest_dir = os.path.dirname(os.path.abspath(path))
    trace_dir: Optional[str] = None
    if isinstance(payload, dict):
        raw_entries = payload.get("entries")
        if not isinstance(raw_entries, list):
            raise ManifestError(
                f"manifest {path!r} object needs an 'entries' list")
        trace_dir = payload.get("trace_dir")
        if trace_dir is not None:
            trace_dir = os.path.join(manifest_dir, trace_dir)
    elif isinstance(payload, list):
        raw_entries = payload
    else:
        raise ManifestError(
            f"manifest {path!r} must be a list of entries or an object "
            f"with an 'entries' list")

    entries = []
    for raw in raw_entries:
        if not isinstance(raw, dict):
            raise ManifestError(
                f"manifest {path!r}: entry {raw!r} is not an object")
        entry = _entry_from_dict(raw)
        if entry.trace is not None:
            entry.trace = os.path.join(manifest_dir, entry.trace)
        entries.append(entry)
    if not entries:
        raise ManifestError(f"manifest {path!r} has no entries")
    return entries, trace_dir


# --------------------------------------------------------------------------- #
# Execution
# --------------------------------------------------------------------------- #
def _run_entry(entry: BatchEntry, use_cache: bool, cache_dir: Optional[str],
               trace_dir: str) -> BatchItemResult:
    """Worker: analyse one entry (module-level so process pools can pickle)."""
    start_time = time.perf_counter()
    try:
        if entry.app is not None:
            report = _run_app_entry(entry, use_cache, cache_dir, trace_dir)
        else:
            spec = MainLoopSpec(function=entry.function,
                                start_line=entry.start, end_line=entry.end)
            config = AutoCheckConfig(main_loop=spec,
                                     induction_variable=entry.induction,
                                     use_cache=use_cache,
                                     cache_dir=cache_dir)
            report = AutoCheck(config, trace_path=entry.trace).run()
        return BatchItemResult(
            name=entry.name,
            ok=True,
            cache_hit=bool(report.cache_info and report.cache_info.hit),
            seconds=time.perf_counter() - start_time,
            critical=[f"{v.name} ({v.dependency.value})"
                      for v in report.critical_variables],
        )
    except Exception as exc:  # noqa: BLE001 — one bad entry must not kill the batch
        return BatchItemResult(
            name=entry.name,
            ok=False,
            cache_hit=False,
            seconds=time.perf_counter() - start_time,
            error=f"{type(exc).__name__}: {exc}",
        )


def app_trace_path(trace_dir: str, app_name: str,
                   params: Optional[Dict[str, int]] = None,
                   seed: int = 314159) -> str:
    """Where an app entry keeps its generated binary trace.

    The name encodes everything that determines the trace content (app,
    source parameters, seed), so a pre-existing file is the same artifact
    and batch runs reuse it instead of re-tracing.
    """
    suffix = "".join(f"-{key}{value}" for key, value
                     in sorted((params or {}).items()))
    return os.path.join(trace_dir, f"{app_name}{suffix}-s{seed}.btrace")


def _is_reusable_trace(path: str) -> bool:
    """True when ``path`` is a complete, well-formed binary trace."""
    from repro.trace.binio import BinaryTraceError, read_layout

    try:
        read_layout(path)
    except (BinaryTraceError, OSError):
        return False
    return True


def ensure_app_trace(module, app_name: str, params: Dict[str, int],
                     trace_dir: str, seed: int = 314159) -> str:
    """Generate (or reuse) the deterministic binary trace for one app.

    Returns the trace path.  A pre-existing well-formed file is reused as-is
    (tracing is deterministic under a fixed seed); a corrupt leftover is
    healed by regeneration; publication is atomic so a crash never leaves a
    truncated file under the reuse name.
    """
    from repro.tracer.driver import trace_to_file

    trace_path = app_trace_path(trace_dir, app_name, params, seed)
    if os.path.exists(trace_path) and not _is_reusable_trace(trace_path):
        # A truncated/corrupt leftover (e.g. an interrupted earlier run)
        # would fail every future batch; heal the slot by regenerating.
        os.remove(trace_path)
    if not os.path.exists(trace_path):
        os.makedirs(trace_dir, exist_ok=True)
        # Atomic publish (same idiom as the store): tracing is
        # deterministic under a fixed seed, so concurrent writers of the
        # same path race benignly, and a crash never leaves a truncated
        # file under the reuse name.
        tmp_path = f"{trace_path}.tmp-{os.getpid()}"
        try:
            trace_to_file(module, tmp_path, module_name=app_name,
                          seed=seed, fmt="binary")
            os.replace(tmp_path, trace_path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.remove(tmp_path)
            raise
    return trace_path


@dataclass
class PreparedAppAnalysis:
    """An app analysis, staged but not yet run.

    Everything needed to either *address* the analysis
    (``autocheck.cache_key()`` — zero record decodes) or *run* it
    (``autocheck.run()``).  The serve daemon stages requests this way so
    it can consult the store and the request-coalescing table before
    committing a worker to the walk; the batch path runs it immediately.
    """

    app_name: str
    trace_path: str
    config: AutoCheckConfig
    spec: MainLoopSpec
    autocheck: AutoCheck


def prepare_app_analysis(app_name: str,
                         params: Optional[Dict[str, int]] = None,
                         *,
                         induction: Optional[str] = None,
                         use_cache: bool = True,
                         cache_dir: Optional[str] = None,
                         trace_dir: Optional[str] = None,
                         seed: int = 314159) -> PreparedAppAnalysis:
    """Compile, trace (or reuse the trace) and stage one bundled app.

    Raises:
        KeyError: unknown app name (the registry's own error, so CLI and
            HTTP frontends can map it to their not-found shapes).
    """
    from repro.apps.registry import get_app
    from repro.codegen.lowering import compile_source

    app = get_app(app_name)
    params = dict(params or {})
    source = app.source(**params)
    module = compile_source(source, module_name=app.name)
    spec = app.main_loop(source)

    if trace_dir is None:
        trace_dir = os.path.join(cache_dir or default_cache_dir(), "traces")
    trace_path = ensure_app_trace(module, app.name, params, trace_dir, seed)

    options: Dict[str, Any] = dict(app.autocheck_options)
    if induction is not None:
        options["induction_variable"] = induction
    options["use_cache"] = use_cache
    options["cache_dir"] = cache_dir
    config = AutoCheckConfig(main_loop=spec, **options)
    # The module rides along for the static induction analysis, exactly as
    # the single-app harness (experiments.common.analyze_app) passes it.
    return PreparedAppAnalysis(
        app_name=app.name, trace_path=trace_path, config=config, spec=spec,
        autocheck=AutoCheck(config, trace_path=trace_path, module=module))


def _run_app_entry(entry: BatchEntry, use_cache: bool,
                   cache_dir: Optional[str], trace_dir: str):
    prepared = prepare_app_analysis(
        entry.app, entry.params, induction=entry.induction,
        use_cache=use_cache, cache_dir=cache_dir, trace_dir=trace_dir,
        seed=entry.seed)
    return prepared.autocheck.run()


def analyze_app_cached(app_name: str,
                       params: Optional[Dict[str, int]] = None,
                       use_cache: bool = True,
                       cache_dir: Optional[str] = None,
                       trace_dir: Optional[str] = None,
                       seed: int = 314159):
    """Analyse one bundled app through the artifact store.

    The single-app equivalent of an ``{"app": ...}`` batch entry: the binary
    trace is generated into ``trace_dir`` once and reused forever, and a warm
    store turns the analysis into a digest lookup.  Returns the
    :class:`~repro.core.report.AutoCheckReport`.  The campaign runner uses
    this for its per-app prep step.
    """
    if trace_dir is None:
        trace_dir = os.path.join(cache_dir or default_cache_dir(), "traces")
    entry = BatchEntry(app=app_name, params=dict(params or {}), seed=seed)
    entry.validate()
    return _run_app_entry(entry, use_cache, cache_dir, trace_dir)


def run_batch(entries: Union[str, Sequence[BatchEntry]],
              workers: int = 1,
              use_cache: bool = True,
              cache_dir: Optional[str] = None,
              trace_dir: Optional[str] = None) -> BatchResult:
    """Analyse every manifest entry, reusing the artifact store.

    Args:
        entries: a manifest file path, or pre-built :class:`BatchEntry`
            objects.
        workers: process-pool width; ``1`` runs inline (no subprocesses).
        use_cache: consult/publish the artifact store per entry.
        cache_dir: store root (default: ``$AUTOCHECK_CACHE_DIR`` or
            ``~/.cache/autocheck``).
        trace_dir: where app entries keep their generated binary traces
            (reused across runs).  Defaults to ``<store root>/traces``; a
            manifest-level ``trace_dir`` wins over this default.

    Returns:
        The per-entry outcomes, in manifest order.
    """
    manifest_trace_dir: Optional[str] = None
    if isinstance(entries, str):
        entry_list, manifest_trace_dir = load_manifest(entries)
    else:
        entry_list = list(entries)
        for entry in entry_list:
            entry.validate()
    if trace_dir is None:
        trace_dir = manifest_trace_dir
    if trace_dir is None:
        trace_dir = os.path.join(cache_dir or default_cache_dir(), "traces")

    start_time = time.perf_counter()
    items = map_over_pool(
        functools.partial(_run_entry, use_cache=use_cache,
                          cache_dir=cache_dir, trace_dir=trace_dir),
        entry_list, workers)
    return BatchResult(items=items, seconds=time.perf_counter() - start_time)


def map_over_pool(fn: Callable[[Any], Any], items: Sequence[Any],
                  workers: int) -> List[Any]:
    """Apply ``fn`` to every item, inline or across a process pool.

    Order-preserving.  ``fn`` must be picklable (a module-level function or a
    :func:`functools.partial` of one) when ``workers > 1``.  This is the
    fan-out shared by ``analyze-batch`` and the fault-injection campaign
    runner.
    """
    work = list(items)
    if workers <= 1 or len(work) <= 1:
        return [fn(item) for item in work]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(fn, item) for item in work]
        return [future.result() for future in futures]
