"""Content-addressed on-disk store of analysis artifacts.

The same digest-keyed idiom build systems use for object caches, applied to
AutoCheck reports: an entry is addressed by the SHA-256 of

    (trace content digest, config fingerprint, report schema version)

so a byte-identical trace analysed under an equivalent configuration is an
O(1) lookup instead of a full record walk.  The **config fingerprint**
covers exactly the fields that determine the analysis *result* — the main
loop location, the global-access switch, a pinned induction variable — and
deliberately excludes execution strategy (engine choice, worker count,
streaming): the engines are proven report-equivalent by the test suite, so
a report computed by any of them serves all of them.

Layout under the store root (``AUTOCHECK_CACHE_DIR`` or
``~/.cache/autocheck``)::

    objects/<key[:2]>/<key>.json     one serialized report per entry

Entries are written atomically (temp file in the target directory +
``os.replace``), so a concurrent reader — e.g. another ``analyze-batch``
worker — never observes a torn entry.  Concurrent writers of the same key
race benignly: both write the same content.

Corrupted entries (truncated writes survive only on non-atomic filesystems,
but bit rot and hand edits happen) are **self-healing**: :meth:`ArtifactStore.load`
treats them as a miss, unlinks them, and lets the caller recompute.  The
strict path (:meth:`ArtifactStore.load_entry`) raises :class:`StoreError`
naming the offending file and key, for callers that need the diagnosis.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.config import AutoCheckConfig
from repro.core.report import AutoCheckReport
from repro.store.serialize import (
    SCHEMA_VERSION,
    SerializationError,
    report_from_dict,
    report_to_dict,
)

#: Environment override for the store root.
CACHE_DIR_ENV = "AUTOCHECK_CACHE_DIR"


class StoreError(Exception):
    """A store entry could not be read; names the file path and key."""


def default_cache_dir() -> str:
    """The store root: ``$AUTOCHECK_CACHE_DIR`` or ``~/.cache/autocheck``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "autocheck")


def config_fingerprint(config: AutoCheckConfig,
                       static_induction: Optional[str] = None,
                       static_fingerprint: Optional[str] = None) -> str:
    """Hex SHA-256 over the config fields that determine the report.

    Strategy knobs (engine, workers, streaming/parallel preprocessing) are
    excluded on purpose — they change how fast the answer arrives, not the
    answer (the cross-engine equivalence tests are what licenses this).

    ``static_induction`` is the induction-variable name the pipeline
    resolved from the IR's static loop analysis (``None`` when no module
    was supplied or nothing was found).  It is part of the fingerprint
    because it is an analysis *input* that lives outside the config: a run
    with the module at hand and one without it may detect the induction
    variable differently, and the two must never share a store entry.

    ``static_fingerprint`` is the digest of the static analysis driving
    the engine prefilter
    (:meth:`repro.static.summary.StaticModuleAnalysis.fingerprint`).  It
    joins the fingerprint **only when prefiltering is on** (``None``
    otherwise, which leaves the hash identical to pre-prefilter builds):
    the prefiltered report is proven equal to the unfiltered one, but
    keying it separately quarantines any future skip-table bug to
    prefiltered entries instead of poisoning unfiltered runs.
    """
    spec = config.main_loop
    semantic = {
        "function": spec.function,
        "start_line": spec.start_line,
        "end_line": spec.end_line,
        "include_global_accesses_in_calls":
            config.include_global_accesses_in_calls,
        "induction_variable": config.induction_variable,
        "static_induction": static_induction,
    }
    if static_fingerprint is not None:
        semantic["static_prefilter"] = static_fingerprint
    encoded = json.dumps(semantic, sort_keys=True).encode()
    return hashlib.sha256(encoded).hexdigest()


def artifact_key(trace_digest: str, fingerprint: str,
                 schema_version: int = SCHEMA_VERSION) -> str:
    """The store key: SHA-256 over digest, fingerprint and schema version."""
    material = f"{trace_digest}\n{fingerprint}\n{schema_version}\n"
    return hashlib.sha256(material.encode("ascii")).hexdigest()


@dataclass(frozen=True)
class ArtifactAddress:
    """The full addressing tuple of one analysis in the store.

    Every consumer that needs to *name* an analysis before (or without)
    running it — the cache lookup in the pipeline, the serve daemon's
    request-coalescing table, ``GET /report/<key>`` — shares this one
    shape, so "the same analysis" means the same thing everywhere: same
    trace content digest, same semantic config fingerprint, same report
    schema.  Built by :meth:`repro.core.pipeline.AutoCheck.cache_key`.
    """

    #: The derived store key (what :meth:`ArtifactStore.load` takes).
    key: str
    #: Streaming content digest of the trace.
    trace_digest: str
    #: Semantic config fingerprint (:func:`config_fingerprint`).
    fingerprint: str
    schema_version: int = SCHEMA_VERSION


@dataclass
class StoreStats:
    """Shape of the store on disk."""

    entries: int = 0
    total_bytes: int = 0


@dataclass
class GCStats:
    """Outcome of one :meth:`ArtifactStore.gc` sweep."""

    examined: int = 0
    evicted: int = 0
    evicted_bytes: int = 0
    kept: int = 0
    kept_bytes: int = 0
    #: Entry paths that were (or with ``dry_run`` would have been) removed.
    evicted_paths: List[str] = field(default_factory=list)


class ArtifactStore:
    """Digest-keyed persistent store of serialized AutoCheck reports."""

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = root or default_cache_dir()
        self._objects_dir = os.path.join(self.root, "objects")

    # ------------------------------------------------------------------ #
    # Addressing
    # ------------------------------------------------------------------ #
    def entry_path(self, key: str) -> str:
        """On-disk path of the entry for ``key`` (whether or not it exists)."""
        return os.path.join(self._objects_dir, key[:2], f"{key}.json")

    # ------------------------------------------------------------------ #
    # Read / write
    # ------------------------------------------------------------------ #
    def load_entry(self, path: str, key: str) -> AutoCheckReport:
        """Read and decode one entry file, strictly.

        Raises:
            StoreError: when the file is missing, unreadable, not JSON, or
                not a valid report payload — the message names the file
                path and the store key so a corrupt entry surfaced from a
                batch run is attributable immediately.
        """
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
            report = report_from_dict(payload.get("report"))
        except OSError as exc:
            raise StoreError(
                f"cannot read artifact store entry {path!r} "
                f"(key {key}): {exc}") from exc
        except (json.JSONDecodeError, SerializationError,
                AttributeError) as exc:
            raise StoreError(
                f"corrupt artifact store entry {path!r} "
                f"(key {key}): {exc}") from exc
        return report

    def load(self, key: str) -> Optional[AutoCheckReport]:
        """The cached report for ``key``, or ``None`` on a miss.

        This is the **lock-free read path**: no store-wide lock exists,
        and none is needed.  Writers publish atomically (tmp +
        ``os.replace``), so a reader's single ``open`` observes either no
        entry or a complete one — never a torn write.  The read opens the
        path directly instead of probing existence first: under concurrent
        ``gc`` / self-healing the file can vanish between a probe and the
        open, and a vanished file is simply a miss (the serve daemon runs
        many of these concurrently against the same store).

        A corrupted entry counts as a miss: it is unlinked (so the slot
        heals on the next store) and ``None`` is returned.  A hit touches
        the entry's mtime, so :meth:`gc`'s oldest-first eviction tracks
        *use*, not creation — hot entries survive.
        """
        path = self.entry_path(key)
        try:
            report = self.load_entry(path, key)
        except StoreError as exc:
            if isinstance(exc.__cause__, FileNotFoundError):
                # Plain miss (or lost a benign race with gc): nothing to heal.
                return None
            with contextlib.suppress(OSError):
                os.remove(path)
            return None
        with contextlib.suppress(OSError):
            os.utime(path)
        return report

    def store(self, key: str, report: AutoCheckReport,
              trace_digest: str = "", fingerprint: str = "") -> str:
        """Write ``report`` under ``key`` atomically; return the entry path.

        The entry wraps the serialized report with provenance (digest,
        fingerprint, creation time) so ``gc`` and debugging never need to
        re-derive how an entry was addressed.
        """
        path = self.entry_path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        payload: Dict[str, Any] = {
            "key": key,
            "schema": SCHEMA_VERSION,
            "trace_digest": trace_digest,
            "config_fingerprint": fingerprint,
            "created_at": time.time(),
            "report": report_to_dict(report),
        }
        # Atomic publish: a reader sees either no entry or a complete one.
        handle = tempfile.NamedTemporaryFile(
            "w", encoding="utf-8", dir=os.path.dirname(path),
            prefix=".tmp-", suffix=".json", delete=False)
        try:
            with handle:
                json.dump(payload, handle)
            os.replace(handle.name, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.remove(handle.name)
            raise
        return path

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def _entry_paths(self) -> List[str]:
        paths: List[str] = []
        if not os.path.isdir(self._objects_dir):
            return paths
        for shard in sorted(os.listdir(self._objects_dir)):
            shard_dir = os.path.join(self._objects_dir, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".json") and not name.startswith(".tmp-"):
                    paths.append(os.path.join(shard_dir, name))
        return paths

    def stats(self) -> StoreStats:
        """Entry count and total on-disk bytes."""
        stats = StoreStats()
        for path in self._entry_paths():
            try:
                stats.total_bytes += os.path.getsize(path)
            except OSError:
                continue
            stats.entries += 1
        return stats

    def gc(self, max_entries: Optional[int] = None,
           max_age_seconds: Optional[float] = None,
           max_bytes: Optional[int] = None,
           clear: bool = False, dry_run: bool = False) -> GCStats:
        """Evict entries, oldest (by mtime) first.

        Args:
            max_entries: keep at most this many entries.
            max_age_seconds: evict entries older than this.
            max_bytes: keep the newest entries summing to at most this many
                bytes.
            clear: evict everything (overrides the other limits).
            dry_run: report what would be evicted without removing files.

        Returns:
            The sweep's :class:`GCStats`.  With no limits given, nothing is
            evicted — the sweep is then just an inventory.
        """
        entries = []
        for path in self._entry_paths():
            try:
                stat = os.stat(path)
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        entries.sort()  # oldest first

        now = time.time()
        result = GCStats(examined=len(entries))
        keep: List[tuple] = []
        for mtime, size, path in entries:
            evict = clear
            if max_age_seconds is not None and now - mtime > max_age_seconds:
                evict = True
            if evict:
                result.evicted_paths.append(path)
            else:
                keep.append((mtime, size, path))
        if max_entries is not None and len(keep) > max_entries:
            overflow = len(keep) - max_entries
            result.evicted_paths.extend(path for _, _, path in keep[:overflow])
            keep = keep[overflow:]
        if max_bytes is not None:
            total = sum(size for _, size, _ in keep)
            while keep and total > max_bytes:
                mtime, size, path = keep.pop(0)
                total -= size
                result.evicted_paths.append(path)

        evicted_set = set(result.evicted_paths)
        for _mtime, size, path in entries:
            if path in evicted_set:
                result.evicted += 1
                result.evicted_bytes += size
                if not dry_run:
                    with contextlib.suppress(OSError):
                        os.remove(path)
            else:
                result.kept += 1
                result.kept_bytes += size
        return result
