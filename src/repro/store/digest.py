"""Trace content digests — the first component of the store key.

Three inputs can feed an analysis, and each gets a digest without decoding
a single trace record:

* **binary trace file, format ≥ 2** — the digest was computed while the
  trace was being *written* (one incremental SHA-256 update per record
  block, see :class:`repro.trace.binio.TraceBinaryWriter`) and sits in the
  footer, so reading it back is one footer decode: O(footer), not O(trace);
* **text trace file, or a version-1 binary file** — fall back to a chunked
  SHA-256 over the raw file bytes (still zero record decodes — the bytes
  are hashed, never parsed);
* **in-memory :class:`~repro.trace.records.Trace`** — encode it through
  the same binary writer into a hash-only sink.  Because the writer's
  footer digest covers exactly the record blocks plus the encoded globals
  (not the header, string table or index), an in-memory trace and the
  binary file written from it produce the *same* digest — an analysis
  cached from one input form is a hit for the other.

The text-file fallback hashes the file's bytes, so the same logical trace
in text and binary encodings gets *different* digests (they are different
artifacts; re-encoding changes the cache key).  That trade keeps warm runs
at zero record decodes on every path, which the cache smoke tests assert.
"""

from __future__ import annotations

import hashlib
from typing import IO

from repro.trace.records import Trace

#: Read granularity of the raw-bytes fallback.
_CHUNK_BYTES = 1 << 20


class _DiscardSink:
    """A write-only binary sink that drops every byte.

    The binary writer maintains the content digest itself; encoding into
    this sink buys the digest without buffering (or re-hashing) anything.
    """

    def write(self, data: bytes) -> int:
        return len(data)


def digest_file_bytes(path: str) -> str:
    """Hex SHA-256 of the raw bytes of ``path``, read in bounded chunks."""
    sha256 = hashlib.sha256()
    with open(path, "rb") as handle:
        _update_from_handle(sha256, handle)
    return sha256.hexdigest()


def _update_from_handle(sha256: "hashlib._Hash", handle: IO[bytes]) -> None:
    while True:
        chunk = handle.read(_CHUNK_BYTES)
        if not chunk:
            return
        sha256.update(chunk)


def compute_trace_digest(path: str) -> str:
    """Content digest of the trace file at ``path``; zero record decodes.

    Binary traces of format ≥ 2 return the footer digest (O(footer));
    text traces and version-1 binary files hash their raw bytes.
    """
    from repro.trace.binio import is_binary_trace_file, read_layout

    if is_binary_trace_file(path):
        layout = read_layout(path)
        if layout.content_digest is not None:
            return layout.content_digest
    return digest_file_bytes(path)


def digest_trace(trace: Trace) -> str:
    """Content digest of an in-memory trace.

    Encodes the trace through :class:`~repro.trace.binio.TraceBinaryWriter`
    into a discard sink and reads the writer's incremental digest — byte
    for byte the digest a binary trace file written from this trace would
    carry in its footer.
    """
    from repro.trace.binio import TraceBinaryWriter

    writer = TraceBinaryWriter(None, module_name=trace.module_name,
                               fileobj=_DiscardSink())
    for symbol in trace.globals:
        writer.write_global(symbol)
    for record in trace.records:
        writer.write_record(record)
    writer.close()
    assert writer.digest_hex is not None
    return writer.digest_hex
