"""Stable, versioned JSON serialization of :class:`AutoCheckReport`.

Until now a report only existed as live Python objects: results could not be
shared between processes, diffed across runs, or served without re-running
the whole engine.  This module gives the full report surface — critical
variables, MLI set, both DDGs (nodes *and* edges with kinds), the ordered
R/W event sequences, per-stage timings and trace stats — a durable JSON
form with an exact round-trip guarantee::

    report_from_json(report_to_json(report)) == report

That equality is structural over every compared field (``AutoCheckReport``
is a dataclass; :class:`repro.core.ddg.DDG` implements structural ``__eq__``
for exactly this purpose) and is asserted across every bundled benchmark by
``tests/test_store.py``.  The round trip is what makes the content-addressed
artifact store (:mod:`repro.store.cache`) sound: a cache hit must be
indistinguishable from re-running the engine.

``SCHEMA_VERSION`` is part of the store key — a schema change silently
invalidates old entries instead of mis-deserializing them.  Loading a
payload with a different schema raises :class:`SerializationError`.

Format notes:

* enum fields (dependency class, DDG node kind, access kind) serialize as
  their string values;
* the per-variable R/W index maps (``by_variable``/``post_by_variable``)
  are *not* serialized — they are a grouping of the flat event lists and
  are rebuilt on load, in stream order, exactly as the extraction built
  them;
* timing floats survive exactly (JSON emits the shortest round-tripping
  repr);
* per-run provenance (:class:`repro.core.report.CacheInfo`) is excluded —
  it describes one run's relationship to the store, not the analysis
  content.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.core.config import MainLoopSpec
from repro.core.ddg import DDG, NodeKind
from repro.core.report import (
    AutoCheckReport,
    CriticalVariable,
    DependencyType,
    TraceStats,
)
from repro.core.rwdeps import AccessEvent, AccessKind, RWDependencies
from repro.util.timing import TimingBreakdown

#: Bump on any change to the serialized shape; part of the store key.
SCHEMA_VERSION = 1

#: Payload type marker, so a store entry is self-describing on disk.
PAYLOAD_KIND = "autocheck-report"


class SerializationError(ValueError):
    """Raised when a payload does not follow the report schema."""


# --------------------------------------------------------------------------- #
# Encoding
# --------------------------------------------------------------------------- #
def _encode_ddg(ddg: Optional[DDG]) -> Optional[Dict[str, Any]]:
    if ddg is None:
        return None
    return {
        "nodes": [[node.key, node.kind.value, node.label]
                  for node in ddg.nodes()],
        "edges": sorted(ddg.edges()),
    }


def _encode_event(event: AccessEvent) -> List[Any]:
    return [event.dyn_id, event.variable, event.name, event.kind.value,
            event.line, event.function, event.element_offset]


def _encode_rw(rw: Optional[RWDependencies]) -> Optional[Dict[str, Any]]:
    if rw is None:
        return None
    return {
        "loop_events": [_encode_event(e) for e in rw.loop_events],
        "post_loop_events": [_encode_event(e) for e in rw.post_loop_events],
    }


def report_to_dict(report: AutoCheckReport) -> Dict[str, Any]:
    """Encode ``report`` as a JSON-ready dict (schema ``SCHEMA_VERSION``)."""
    spec = report.main_loop
    return {
        "kind": PAYLOAD_KIND,
        "schema": SCHEMA_VERSION,
        "main_loop": {
            "function": spec.function,
            "start_line": spec.start_line,
            "end_line": spec.end_line,
        },
        "critical_variables": [
            {
                "name": v.name,
                "dependency": v.dependency.value,
                "size_bytes": v.size_bytes,
                "base_address": v.base_address,
                "decl_line": v.decl_line,
                "is_array": v.is_array,
                "is_global": v.is_global,
            }
            for v in report.critical_variables
        ],
        "mli_variable_names": list(report.mli_variable_names),
        "induction_variable": report.induction_variable,
        "complete_ddg": _encode_ddg(report.complete_ddg),
        "contracted_ddg": _encode_ddg(report.contracted_ddg),
        "rw_sequence": _encode_rw(report.rw_sequence),
        "timings": {
            "stages": dict(report.timings.stages),
            "counts": dict(report.timings.counts),
        },
        "trace_stats": {
            "record_count": report.trace_stats.record_count,
            "before_count": report.trace_stats.before_count,
            "inside_count": report.trace_stats.inside_count,
            "after_count": report.trace_stats.after_count,
            "global_count": report.trace_stats.global_count,
            "trace_bytes": report.trace_stats.trace_bytes,
        },
    }


def report_to_json(report: AutoCheckReport,
                   indent: Optional[int] = None) -> str:
    """Serialize ``report`` to a JSON string.

    Args:
        report: the report to encode.
        indent: forwarded to :func:`json.dumps` for human-readable output;
            the default compact form is what the store writes.

    Returns:
        A JSON document satisfying
        ``report_from_json(report_to_json(r)) == r``.
    """
    return json.dumps(report_to_dict(report), indent=indent,
                      sort_keys=indent is not None)


# --------------------------------------------------------------------------- #
# Decoding
# --------------------------------------------------------------------------- #
def _decode_ddg(payload: Optional[Dict[str, Any]]) -> Optional[DDG]:
    if payload is None:
        return None
    ddg = DDG()
    for key, kind, label in payload["nodes"]:
        ddg.add_node(key, NodeKind(kind), label)
    for parent, child in payload["edges"]:
        ddg.add_edge(parent, child)
    return ddg


def _decode_rw(payload: Optional[Dict[str, Any]]) -> Optional[RWDependencies]:
    if payload is None:
        return None
    rw = RWDependencies()
    for fields, sink, by_variable in (
            (payload["loop_events"], rw.loop_events, rw.by_variable),
            (payload["post_loop_events"], rw.post_loop_events,
             rw.post_by_variable)):
        for dyn_id, variable, name, kind, line, function, offset in fields:
            event = AccessEvent(dyn_id=dyn_id, variable=variable, name=name,
                                kind=AccessKind(kind), line=line,
                                function=function, element_offset=offset)
            sink.append(event)
            # Rebuild the per-variable grouping in stream order — identical
            # to how the extraction populated it (first event per variable
            # creates its list; later events append).
            by_variable.setdefault(variable, []).append(event)
    return rw


def report_from_dict(payload: Dict[str, Any]) -> AutoCheckReport:
    """Decode a dict produced by :func:`report_to_dict`.

    Raises:
        SerializationError: when the payload kind or schema version does
            not match, or a required field is missing/mistyped.
    """
    if not isinstance(payload, dict):
        raise SerializationError(
            f"report payload must be an object, got {type(payload).__name__}")
    kind = payload.get("kind")
    if kind != PAYLOAD_KIND:
        raise SerializationError(
            f"payload kind {kind!r} is not {PAYLOAD_KIND!r}")
    schema = payload.get("schema")
    if schema != SCHEMA_VERSION:
        raise SerializationError(
            f"unsupported report schema {schema!r} "
            f"(this build reads schema {SCHEMA_VERSION})")
    try:
        spec = MainLoopSpec(function=payload["main_loop"]["function"],
                            start_line=payload["main_loop"]["start_line"],
                            end_line=payload["main_loop"]["end_line"])
        critical = [
            CriticalVariable(
                name=entry["name"],
                dependency=DependencyType(entry["dependency"]),
                size_bytes=entry["size_bytes"],
                base_address=entry["base_address"],
                decl_line=entry["decl_line"],
                is_array=entry["is_array"],
                is_global=entry["is_global"],
            )
            for entry in payload["critical_variables"]
        ]
        timings = TimingBreakdown(
            stages=dict(payload["timings"]["stages"]),
            counts={name: int(count) for name, count
                    in payload["timings"]["counts"].items()})
        stats_payload = payload["trace_stats"]
        stats = TraceStats(
            record_count=stats_payload["record_count"],
            before_count=stats_payload["before_count"],
            inside_count=stats_payload["inside_count"],
            after_count=stats_payload["after_count"],
            global_count=stats_payload["global_count"],
            trace_bytes=stats_payload["trace_bytes"],
        )
        return AutoCheckReport(
            main_loop=spec,
            critical_variables=critical,
            mli_variable_names=list(payload["mli_variable_names"]),
            induction_variable=payload["induction_variable"],
            complete_ddg=_decode_ddg(payload["complete_ddg"]),
            contracted_ddg=_decode_ddg(payload["contracted_ddg"]),
            rw_sequence=_decode_rw(payload["rw_sequence"]),
            timings=timings,
            trace_stats=stats,
        )
    except (KeyError, TypeError, ValueError) as exc:
        if isinstance(exc, SerializationError):
            raise
        raise SerializationError(
            f"malformed report payload: {exc!r}") from exc


def report_from_json(text: str) -> AutoCheckReport:
    """Deserialize a report from a JSON string (see :func:`report_to_json`).

    Raises:
        SerializationError: on malformed JSON or a schema mismatch.
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"report payload is not JSON: {exc}") from exc
    return report_from_dict(payload)


def canonical_report_json(report: AutoCheckReport) -> str:
    """Deterministic wire encoding of the report's *analysis content*.

    The full schema payload minus the ``timings`` block: per-stage
    wall-clock seconds are provenance of one particular run, so two
    independent runs that computed the same analysis would otherwise never
    serialize to the same bytes.  With timings dropped and keys sorted,
    the encoding is byte-identical for equal reports — the property the
    serve daemon's responses are tested against (a warm hit, a coalesced
    follower and a fresh cold run of the same trace all answer with the
    same bytes).

    The store keeps writing the full payload (:func:`report_to_dict`);
    this canonical form exists for byte-comparable transport only.
    """
    payload = report_to_dict(report)
    payload.pop("timings", None)
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))
