"""``repro.trace`` — dynamic instruction execution trace data model and I/O.

This package plays the role of LLVM-Tracer's output format plus the paper's
trace pre-processing optimization:

* :mod:`repro.trace.records` — the in-memory representation of one dynamic
  instruction record (source location, function, basic block, opcode, dynamic
  instruction id, operands with sizes/values/register-or-variable names and
  memory addresses) and of the global-variable preamble;
* :mod:`repro.trace.textio` — a line-oriented text encoding of those records
  (field-for-field equivalent to the LLVM-Tracer excerpts in paper Fig. 1 and
  Fig. 6) with a writer and a streaming reader;
* :mod:`repro.trace.partition` — block-boundary-preserving partitioning of a
  trace file into sub-streams parsed concurrently, reproducing the OpenMP
  pre-processing optimization of paper Sec. V-A.
"""

from repro.trace.records import (
    GlobalSymbol,
    Trace,
    TraceOperand,
    TraceRecord,
    RESULT_INDEX,
)
from repro.trace.textio import (
    TraceTextReader,
    TraceTextWriter,
    read_trace_file,
    write_trace_file,
    record_to_lines,
    parse_record_lines,
)
from repro.trace.partition import (
    TracePartition,
    partition_offsets,
    read_trace_file_parallel,
)

__all__ = [
    "GlobalSymbol",
    "Trace",
    "TraceOperand",
    "TraceRecord",
    "RESULT_INDEX",
    "TraceTextReader",
    "TraceTextWriter",
    "read_trace_file",
    "write_trace_file",
    "record_to_lines",
    "parse_record_lines",
    "TracePartition",
    "partition_offsets",
    "read_trace_file_parallel",
]
