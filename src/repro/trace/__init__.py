"""``repro.trace`` — dynamic instruction execution trace data model and I/O.

This package plays the role of LLVM-Tracer's output format plus the paper's
trace pre-processing optimization:

* :mod:`repro.trace.records` — the in-memory representation of one dynamic
  instruction record (source location, function, basic block, opcode, dynamic
  instruction id, operands with sizes/values/register-or-variable names and
  memory addresses) and of the global-variable preamble;
* :mod:`repro.trace.textio` — the line-oriented text encoding of those
  records (field-for-field equivalent to the LLVM-Tracer excerpts in paper
  Fig. 1 and Fig. 6) plus the format-sniffing front doors
  (:func:`read_trace_file`, :func:`read_preamble`,
  :func:`iter_trace_records`) that accept either encoding;
* :mod:`repro.trace.binio` — the compact block-indexed binary encoding:
  struct-packed records, an interned string table, a block-offset index
  footer (making partitioning exact byte arithmetic and parallel reading a
  seek-and-decode) and, since format version 2, a streaming content digest
  computed at write time — what the artifact store (:mod:`repro.store`)
  keys analysis results on;
* :mod:`repro.trace.partition` — block-boundary-preserving partitioning of a
  trace file into sub-streams parsed concurrently, reproducing the OpenMP
  pre-processing optimization of paper Sec. V-A (byte-exact for both
  encodings).

Choosing an encoding: the text format is greppable and diff-friendly but
slow to parse and unable to represent names containing commas or newlines;
the binary format is the production path — smaller files, several times
faster decoding, exact partitioning and O(1) seeks to any record.  All
readers sniff the format, so callers never need to know which one they were
handed.
"""

from repro.trace.records import (
    GlobalSymbol,
    Trace,
    TraceOperand,
    TraceRecord,
    RESULT_INDEX,
)
from repro.trace.textio import (
    TraceFormatError,
    TraceTextReader,
    TraceTextWriter,
    iter_trace_records,
    parse_record_lines,
    read_preamble,
    read_trace_file,
    record_to_lines,
    sniff_trace_format,
    write_trace_file,
)
from repro.trace.binio import (
    BINARY_VERSION,
    SUPPORTED_VERSIONS,
    BinaryTraceError,
    TraceBinaryReader,
    TraceBinaryWriter,
    is_binary_trace_file,
    iter_trace_file_binary,
    partition_offsets_binary,
    read_trace_file_binary,
    read_trace_file_binary_parallel,
    scan_record_headers,
    write_trace_file_binary,
)
from repro.trace.partition import (
    RecordRange,
    TracePartition,
    partition_offsets,
    partition_records,
    read_trace_file_parallel,
)

__all__ = [
    "GlobalSymbol",
    "Trace",
    "TraceOperand",
    "TraceRecord",
    "RESULT_INDEX",
    "TraceFormatError",
    "TraceTextReader",
    "TraceTextWriter",
    "iter_trace_records",
    "parse_record_lines",
    "read_preamble",
    "read_trace_file",
    "record_to_lines",
    "sniff_trace_format",
    "write_trace_file",
    "BINARY_VERSION",
    "SUPPORTED_VERSIONS",
    "BinaryTraceError",
    "TraceBinaryReader",
    "TraceBinaryWriter",
    "is_binary_trace_file",
    "iter_trace_file_binary",
    "partition_offsets_binary",
    "read_trace_file_binary",
    "read_trace_file_binary_parallel",
    "scan_record_headers",
    "write_trace_file_binary",
    "RecordRange",
    "TracePartition",
    "partition_offsets",
    "partition_records",
    "read_trace_file_parallel",
]
