"""Compact block-indexed binary encoding of dynamic traces.

The line-oriented text format (:mod:`repro.trace.textio`) is human readable
but slow to parse and structurally fragile: partitioning it for the parallel
pre-processing optimization (paper Sec. V-A) requires scanning for block
boundaries, and any confusion between *bytes* and *characters* (multi-byte
identifiers, ``\\r\\n`` line endings) silently corrupts the partitions.  This
module provides the production trace encoding: struct-packed records plus a
footer carrying a *block-offset index*, so partitioning is exact byte
arithmetic by construction and parallel reading is an embarrassingly
parallel seek-and-decode.

File layout (all integers little-endian)::

    header   "ACTB" | u16 version | u16 reserved | u16 len | module name utf-8
    records  one variable-length block per TraceRecord (see below)
    footer   "ACTF" | globals | string table | block index | content digest
    trailer  u64 footer offset | "ACTE"

Since format version 2 the footer also records a **content digest**: the
SHA-256 of every record block (in stream order) followed by the encoded
globals section, maintained incrementally by the writer as it streams.  The
digest identifies the trace *content* independently of the file it lives in,
which is what the artifact store (:mod:`repro.store`) keys analysis results
on — reading it back costs one footer decode, no record I/O.  Version-1
files (no digest field) are still read; their digest is reported as ``None``
and :func:`repro.store.digest.compute_trace_digest` falls back to hashing
the raw file bytes.

Record block::

    i64 dyn id | i32 opcode | i32 line | i32 column | i32 bb label
    u32 opcode-name id | u32 function id | u32 bb-id id | u32 callee id
    u8 operand count | u8 has-result flag
    ... operands ... [result]

Operand::

    u8 flags (bit0 register, bit1 has-address, bits 4-5 value tag)
    u32 index id | i32 bits | u32 name id
    value: i64 (tag 0) / f64 (tag 1) / u32 len + decimal utf-8 (tag 2)
    [u64 address when bit1 set]

All strings in record blocks are interned into the footer's string table and
referenced by u32 id, which both shrinks the file and makes decoding a list
lookup instead of a utf-8 decode.  The block index stores the byte offset of
every ``INDEX_STRIDE``-th record block, so a reader can seek to (almost) any
record without scanning, and :func:`partition_offsets_binary` can split the
file into exact block-aligned byte ranges without reading record data at all.
"""

from __future__ import annotations

import hashlib
import os
import struct
from bisect import bisect_right
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import IO, Iterator, List, Optional, Tuple, Union

from repro.trace.records import (
    GlobalSymbol,
    Trace,
    TraceOperand,
    TraceRecord,
)

BINARY_MAGIC = b"ACTB"
FOOTER_MAGIC = b"ACTF"
TRAILER_MAGIC = b"ACTE"
#: Version written by :class:`TraceBinaryWriter` (2 adds the footer digest).
BINARY_VERSION = 2
#: Versions :func:`read_layout` accepts.
SUPPORTED_VERSIONS = (1, 2)
#: One block-index entry is emitted every this many records.
INDEX_STRIDE = 256

_HEADER = struct.Struct("<4sHHH")
_TRAILER = struct.Struct("<Q4s")
_RECORD_FIXED = struct.Struct("<qiiiiIIIIBB")
_OPERAND_FIXED = struct.Struct("<BIiI")
_U8 = struct.Struct("<B")
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_GLOBAL_FIXED = struct.Struct("<QQIB")

_VALUE_INT = 0
_VALUE_FLOAT = 1
_VALUE_BIG = 2

_INT64_MIN = -(2 ** 63)
_INT64_MAX = 2 ** 63 - 1


class BinaryTraceError(ValueError):
    """Raised when a file does not follow the binary trace encoding."""


def is_binary_trace_file(path: str) -> bool:
    """True when ``path`` starts with the binary trace magic."""
    with open(path, "rb") as handle:
        return handle.read(len(BINARY_MAGIC)) == BINARY_MAGIC


# --------------------------------------------------------------------------- #
# Writer
# --------------------------------------------------------------------------- #
class TraceBinaryWriter:
    """Stream a trace to a binary file as it is generated.

    Implements the same sink protocol as
    :class:`repro.trace.textio.TraceTextWriter` (``write_global`` /
    ``write_record``), so the tracing interpreter can stream directly into
    the binary format.  Globals and the string table live in the footer, so
    they may arrive at any point before :meth:`close`.

    The writer also maintains the trace's **content digest** (SHA-256 over
    the record blocks in stream order plus the encoded globals section) as a
    by-product of encoding — one incremental hash update per block, no
    second pass — and records it in the footer.  Pass ``fileobj`` to encode
    into an existing binary sink (e.g. a discard sink when only the digest
    is wanted); the writer then never opens or closes a file of its own.
    """

    def __init__(self, path: Optional[str], module_name: str = "module",
                 fileobj: Optional[IO[bytes]] = None) -> None:
        if (path is None) == (fileobj is None):
            raise ValueError("pass exactly one of path or fileobj")
        self.path = path
        self.module_name = module_name
        self._owns_handle = fileobj is None
        self._fh: Optional[IO[bytes]] = (open(path, "wb") if fileobj is None
                                         else fileobj)
        name_bytes = module_name.encode()
        self._fh.write(_HEADER.pack(BINARY_MAGIC, BINARY_VERSION, 0,
                                    len(name_bytes)))
        self._fh.write(name_bytes)
        self._offset = _HEADER.size + len(name_bytes)
        self._globals: List[GlobalSymbol] = []
        self._strings: List[str] = []
        self._string_ids: dict = {}
        self._index: List[int] = []
        self._record_count = 0
        self._digest = hashlib.sha256()
        self._digest_hex: Optional[str] = None

    # ------------------------------------------------------------------ #
    def _intern(self, text: str) -> int:
        string_id = self._string_ids.get(text)
        if string_id is None:
            string_id = len(self._strings)
            self._strings.append(text)
            self._string_ids[text] = string_id
        return string_id

    def _encode_operand(self, parts: List[bytes], operand: TraceOperand) -> None:
        value = operand.value
        if isinstance(value, bool):
            value = int(value)
        if isinstance(value, float):
            tag = _VALUE_FLOAT
            value_bytes = _F64.pack(value)
        elif _INT64_MIN <= value <= _INT64_MAX:
            tag = _VALUE_INT
            value_bytes = _I64.pack(value)
        else:
            tag = _VALUE_BIG
            digits = str(value).encode("ascii")
            value_bytes = _U32.pack(len(digits)) + digits
        flags = ((1 if operand.is_register else 0)
                 | (2 if operand.address is not None else 0)
                 | (tag << 4))
        parts.append(_OPERAND_FIXED.pack(flags, self._intern(operand.index),
                                         operand.bits,
                                         self._intern(operand.name)))
        parts.append(value_bytes)
        if operand.address is not None:
            parts.append(_U64.pack(operand.address))

    def write_global(self, symbol: GlobalSymbol) -> None:
        """Queue one module global for the footer's preamble section.

        Args:
            symbol: the global's name, base address and extent.  May be
                called at any point before :meth:`close` (globals live in
                the footer, not ahead of the records).
        """
        assert self._fh is not None
        self._globals.append(symbol)

    def write_record(self, record: TraceRecord) -> None:
        """Append one record block (and its index entry when due).

        Args:
            record: the executed instruction to encode; its strings are
                interned into the footer's string table.
        """
        assert self._fh is not None
        if self._record_count % INDEX_STRIDE == 0:
            self._index.append(self._offset)
        parts: List[bytes] = [_RECORD_FIXED.pack(
            record.dyn_id, record.opcode, record.line, record.column,
            record.bb_label,
            self._intern(record.opcode_name), self._intern(record.function),
            self._intern(record.bb_id), self._intern(record.callee),
            len(record.operands), 1 if record.result is not None else 0)]
        for operand in record.operands:
            self._encode_operand(parts, operand)
        if record.result is not None:
            self._encode_operand(parts, record.result)
        block = b"".join(parts)
        self._fh.write(block)
        self._digest.update(block)
        self._offset += len(block)
        self._record_count += 1

    @property
    def record_count(self) -> int:
        """Number of record blocks written so far."""
        return self._record_count

    @property
    def digest_hex(self) -> Optional[str]:
        """The trace's content digest; available once :meth:`close` ran."""
        return self._digest_hex

    def _write_footer(self) -> None:
        assert self._fh is not None
        footer_offset = self._offset
        globals_parts: List[bytes] = []
        for symbol in self._globals:
            name_bytes = symbol.name.encode()
            globals_parts.append(_U16.pack(len(name_bytes)))
            globals_parts.append(name_bytes)
            globals_parts.append(
                _GLOBAL_FIXED.pack(symbol.address, symbol.size_bytes,
                                   symbol.element_bits,
                                   1 if symbol.is_array else 0))
        globals_bytes = b"".join(globals_parts)
        # Content digest = record blocks (already folded in, in stream
        # order) + encoded globals.  The string table and block index are
        # derived data and deliberately excluded.
        self._digest.update(globals_bytes)
        digest = self._digest.digest()
        self._digest_hex = digest.hex()
        out: List[bytes] = [FOOTER_MAGIC, _U32.pack(len(self._globals)),
                            globals_bytes]
        out.append(_U32.pack(len(self._strings)))
        for text in self._strings:
            text_bytes = text.encode()
            out.append(_U16.pack(len(text_bytes)))
            out.append(text_bytes)
        out.append(_U32.pack(INDEX_STRIDE))
        out.append(_U64.pack(self._record_count))
        out.append(_U32.pack(len(self._index)))
        for offset in self._index:
            out.append(_U64.pack(offset))
        out.append(_U8.pack(len(digest)))
        out.append(digest)
        out.append(_TRAILER.pack(footer_offset, TRAILER_MAGIC))
        self._fh.write(b"".join(out))

    def close(self) -> None:
        """Write the footer (globals + string table + block index + content
        digest) and the trailer, then close the file.  Idempotent; a file
        without its trailer is detected as truncated by
        :func:`read_layout`.  An externally supplied ``fileobj`` is left
        open (the caller owns it)."""
        if self._fh is not None:
            self._write_footer()
            if self._owns_handle:
                self._fh.close()
            self._fh = None

    def __enter__(self) -> "TraceBinaryWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def write_trace_file_binary(trace: Trace, path: str) -> int:
    """Write an in-memory trace to ``path``; return the file size in bytes."""
    with TraceBinaryWriter(path, module_name=trace.module_name) as writer:
        for symbol in trace.globals:
            writer.write_global(symbol)
        for record in trace.records:
            writer.write_record(record)
    return os.path.getsize(path)


# --------------------------------------------------------------------------- #
# Footer / index
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class BinaryTraceLayout:
    """Everything the footer knows: globals, string table and block index."""

    module_name: str
    globals: List[GlobalSymbol]
    strings: List[str]
    index_stride: int
    record_count: int
    #: byte offset of every ``index_stride``-th record block
    block_offsets: List[int]
    #: byte offset of the first record block
    records_start: int
    #: byte offset one past the last record block (== footer offset)
    records_end: int
    #: hex SHA-256 of the trace content (``None`` for version-1 files,
    #: which predate the footer digest)
    content_digest: Optional[str] = None

    def seek_position(self, record_index: int) -> Tuple[int, int]:
        """(byte offset, records to skip) to reach ``record_index``."""
        if record_index <= 0 or not self.block_offsets:
            return self.records_start, max(0, record_index)
        entry = min(record_index // self.index_stride,
                    len(self.block_offsets) - 1)
        return (self.block_offsets[entry],
                record_index - entry * self.index_stride)


def _read_exact(handle: IO[bytes], count: int,
                path: Optional[str] = None) -> bytes:
    data = handle.read(count)
    if len(data) != count:
        where = f" {path!r}" if path else ""
        raise BinaryTraceError(f"truncated binary trace file{where}")
    return data


# Footers of same-shaped traces share one compiled Struct for the block
# index; an f-string format would recompile it on every read_layout call.
_BLOCK_OFFSETS_STRUCTS: dict = {}


def _block_offsets_struct(entry_count: int) -> struct.Struct:
    layout = _BLOCK_OFFSETS_STRUCTS.get(entry_count)
    if layout is None:
        layout = struct.Struct(f"<{entry_count}Q")
        _BLOCK_OFFSETS_STRUCTS[entry_count] = layout
    return layout


def _parse_footer(footer: bytes, version: int, module_name: str,
                  records_start: int, footer_offset: int,
                  name: str) -> BinaryTraceLayout:
    """Decode the footer bytes into a :class:`BinaryTraceLayout`.

    The working ``memoryview`` is released deterministically on every exit
    path so callers handing in a slice of an ``mmap`` can close the mapping
    immediately afterwards.
    """
    view = memoryview(footer)
    try:
        if view[:4].tobytes() != FOOTER_MAGIC:
            raise BinaryTraceError(f"{name!r}: corrupt binary trace footer")
        position = 4
        (global_count,) = _U32.unpack_from(view, position)
        position += 4
        globals_: List[GlobalSymbol] = []
        for _ in range(global_count):
            (name_len,) = _U16.unpack_from(view, position)
            position += 2
            symbol_name = (view[position:position + name_len].tobytes()
                           .decode("utf-8"))
            position += name_len
            (address, size_bytes, element_bits,
             is_array) = _GLOBAL_FIXED.unpack_from(view, position)
            position += _GLOBAL_FIXED.size
            globals_.append(GlobalSymbol(name=symbol_name, address=address,
                                         size_bytes=size_bytes,
                                         element_bits=element_bits,
                                         is_array=bool(is_array)))
        (string_count,) = _U32.unpack_from(view, position)
        position += 4
        strings: List[str] = []
        for _ in range(string_count):
            (text_len,) = _U16.unpack_from(view, position)
            position += 2
            strings.append(view[position:position + text_len].tobytes()
                           .decode("utf-8"))
            position += text_len
        (index_stride,) = _U32.unpack_from(view, position)
        position += 4
        (record_count,) = _U64.unpack_from(view, position)
        position += 8
        (entry_count,) = _U32.unpack_from(view, position)
        position += 4
        block_offsets = list(
            _block_offsets_struct(entry_count).unpack_from(view, position))
        position += 8 * entry_count
        content_digest: Optional[str] = None
        if version >= 2:
            (digest_len,) = _U8.unpack_from(view, position)
            position += 1
            content_digest = (view[position:position + digest_len]
                              .tobytes().hex())
    finally:
        view.release()
    return BinaryTraceLayout(module_name=module_name, globals=globals_,
                             strings=strings, index_stride=index_stride,
                             record_count=record_count,
                             block_offsets=block_offsets,
                             records_start=records_start,
                             records_end=footer_offset,
                             content_digest=content_digest)


def read_layout(path: str) -> BinaryTraceLayout:
    """Read the header and footer (globals + string table + index).

    Every failure mode names the offending file in the exception message —
    a truncated, version-skewed or corrupt trace surfaced deep inside a
    batch run must be attributable without a stack trace.
    """
    file_size = os.path.getsize(path)
    with open(path, "rb") as handle:
        magic, version, _, name_len = _HEADER.unpack(
            _read_exact(handle, _HEADER.size, path))
        if magic != BINARY_MAGIC:
            raise BinaryTraceError(f"{path!r} is not a binary trace file")
        if version not in SUPPORTED_VERSIONS:
            raise BinaryTraceError(
                f"{path!r}: unsupported binary trace version {version} "
                f"(supported: {SUPPORTED_VERSIONS})")
        module_name = _read_exact(handle, name_len, path).decode("utf-8")
        records_start = _HEADER.size + name_len
        if file_size < records_start + _TRAILER.size:
            raise BinaryTraceError(f"truncated binary trace file {path!r}")
        handle.seek(file_size - _TRAILER.size)
        footer_offset, trailer = _TRAILER.unpack(
            _read_exact(handle, _TRAILER.size, path))
        if trailer != TRAILER_MAGIC:
            raise BinaryTraceError(
                f"{path!r}: missing binary trace trailer "
                f"(file truncated or still being written)")
        handle.seek(footer_offset)
        footer = handle.read(file_size - _TRAILER.size - footer_offset)
    return _parse_footer(footer, version, module_name, records_start,
                         footer_offset, path)


def layout_from_buffer(buffer, name: Optional[str] = None,
                       ) -> BinaryTraceLayout:
    """Parse the layout from an already-open whole-file buffer / ``mmap``.

    The warm-path counterpart of :func:`read_layout`: callers that just
    wrote a trace (or hold it mapped) hand the bytes straight back to a
    reader without reopening the file or re-reading the footer from disk.
    ``name`` labels error messages (defaults to ``"<buffer>"``).
    """
    name = name or "<buffer>"
    view = memoryview(buffer)
    try:
        file_size = len(view)
        if file_size < _HEADER.size:
            raise BinaryTraceError(f"truncated binary trace file {name!r}")
        magic, version, _, name_len = _HEADER.unpack_from(view, 0)
        if magic != BINARY_MAGIC:
            raise BinaryTraceError(f"{name!r} is not a binary trace file")
        if version not in SUPPORTED_VERSIONS:
            raise BinaryTraceError(
                f"{name!r}: unsupported binary trace version {version} "
                f"(supported: {SUPPORTED_VERSIONS})")
        records_start = _HEADER.size + name_len
        if file_size < records_start + _TRAILER.size:
            raise BinaryTraceError(f"truncated binary trace file {name!r}")
        module_name = (view[_HEADER.size:records_start].tobytes()
                       .decode("utf-8"))
        footer_offset, trailer = _TRAILER.unpack_from(
            view, file_size - _TRAILER.size)
        if trailer != TRAILER_MAGIC:
            raise BinaryTraceError(
                f"{name!r}: missing binary trace trailer "
                f"(file truncated or still being written)")
        footer = view[footer_offset:file_size - _TRAILER.size].tobytes()
    finally:
        view.release()
    return _parse_footer(footer, version, module_name, records_start,
                         footer_offset, name)


def read_preamble_binary(path: str) -> Tuple[str, List[GlobalSymbol]]:
    """Module name and globals of a binary trace (footer read only)."""
    layout = read_layout(path)
    return layout.module_name, layout.globals


# --------------------------------------------------------------------------- #
# Decoder
# --------------------------------------------------------------------------- #
# Operand blocks come in four fixed layouts (int/float value × with/without
# address) plus a rare variable-length one (big integers).  The flags byte
# fully determines the layout, so a 256-entry dispatch table keyed by it
# turns operand decoding into a single precompiled ``unpack_from`` call —
# this is what makes the binary reader several times faster than the text
# parser, which pays one ``str.split`` plus several ``int()`` calls per line.
def _build_operand_table():
    layouts = {
        _VALUE_INT: ("q", _I64), _VALUE_FLOAT: ("d", _F64),
    }
    table: List[Optional[Tuple]] = [None] * 256
    for flags in range(256):
        tag = flags >> 4
        if tag not in layouts:
            continue  # big-int (or invalid) values take the slow path
        value_code = layouts[tag][0]
        has_addr = bool(flags & 2)
        layout = struct.Struct("<BIiI" + value_code + ("Q" if has_addr else ""))
        table[flags] = (layout.unpack_from, layout.size, has_addr,
                        bool(flags & 1))
    return table


_OPERAND_TABLE = _build_operand_table()


def _decode_operand_slow(buf, position: int,
                         strings: List[str]) -> Tuple[TraceOperand, int]:
    """Variable-length (big-integer) and validation fallback."""
    flags, index_id, bits, name_id = _OPERAND_FIXED.unpack_from(buf, position)
    position += _OPERAND_FIXED.size
    tag = flags >> 4
    if tag != _VALUE_BIG:
        raise BinaryTraceError(f"unknown operand value tag {tag}")
    (digit_count,) = _U32.unpack_from(buf, position)
    position += 4
    if position + digit_count > len(buf):
        raise struct.error("big-integer value overruns the buffer")
    value = int(bytes(buf[position:position + digit_count]))
    position += digit_count
    if flags & 2:
        (address,) = _U64.unpack_from(buf, position)
        position += 8
    else:
        address = None
    return TraceOperand(strings[index_id], bits, value, bool(flags & 1),
                        strings[name_id], address), position


def _decode_record(buf, position: int, strings: List[str],
                   ) -> Tuple[TraceRecord, int]:
    """Decode one record block at ``position``; return (record, next position)."""
    (dyn_id, opcode, line, column, bb_label, opcode_name_id, function_id,
     bb_id_id, callee_id, operand_count,
     has_result) = _RECORD_FIXED.unpack_from(buf, position)
    position += _RECORD_FIXED.size
    table = _OPERAND_TABLE
    operands: List[TraceOperand] = []
    result: Optional[TraceOperand] = None
    for slot in range(operand_count + has_result):
        entry = table[buf[position]]
        if entry is None:
            operand, position = _decode_operand_slow(buf, position, strings)
        else:
            unpack, size, has_addr, is_register = entry
            if has_addr:
                _, index_id, bits, name_id, value, address = unpack(
                    buf, position)
            else:
                _, index_id, bits, name_id, value = unpack(buf, position)
                address = None
            position += size
            operand = TraceOperand(strings[index_id], bits, value,
                                   is_register, strings[name_id], address)
        if slot < operand_count:
            operands.append(operand)
        else:
            result = operand
    record = TraceRecord(dyn_id, opcode, strings[opcode_name_id],
                         strings[function_id], line, column, bb_label,
                         strings[bb_id_id], operands, result,
                         strings[callee_id])
    return record, position


def decode_record_range(buf, start: int, end: int,
                        strings: List[str]) -> List[TraceRecord]:
    """Decode every record block in ``buf[start:end]``."""
    records: List[TraceRecord] = []
    append = records.append
    decode = _decode_record
    position = start
    while position < end:
        record, position = decode(buf, position, strings)
        append(record)
    if position != end:
        raise BinaryTraceError("record block overruns its partition")
    return records


# --------------------------------------------------------------------------- #
# Readers
# --------------------------------------------------------------------------- #
class TraceBinaryReader:
    """Read a binary trace back into memory, serially or record by record.

    Accepts either a ``path`` or an already-open whole-file ``buffer`` /
    ``mmap`` (optionally with a pre-read ``layout``), so warm re-reads
    within one process — e.g. ``analyze-batch`` generating a trace and
    immediately analyzing it — skip the reopen and the footer re-parse.
    """

    def __init__(self, path: Optional[str] = None,
                 layout: Optional[BinaryTraceLayout] = None,
                 buffer=None) -> None:
        if (path is None) and (buffer is None):
            raise ValueError("pass a path or an already-open buffer")
        self.path = path
        self._buffer = buffer
        if layout is None:
            layout = (layout_from_buffer(buffer, name=path)
                      if buffer is not None else read_layout(path))
        self.layout = layout

    def read(self) -> Trace:
        """Decode the whole file into an in-memory :class:`Trace`.

        Returns:
            The trace with its globals preamble and every record, in file
            order.
        """
        layout = self.layout
        if self._buffer is not None:
            records = decode_record_range(self._buffer, layout.records_start,
                                          layout.records_end, layout.strings)
        else:
            with open(self.path, "rb") as handle:
                handle.seek(layout.records_start)
                buf = _read_exact(handle,
                                  layout.records_end - layout.records_start)
            records = decode_record_range(buf, 0, len(buf), layout.strings)
        return Trace(module_name=layout.module_name,
                     globals=list(layout.globals), records=records)

    def iter_records(self, start_record: int = 0,
                     chunk_bytes: int = 1 << 20) -> Iterator[TraceRecord]:
        """Yield records starting at ``start_record`` with bounded memory.

        The block index makes the initial seek O(1); a file source is then
        decoded in ``chunk_bytes`` slices so multi-hundred-MB traces never
        have to be resident at once (an in-memory ``buffer`` source is
        decoded in place).
        """
        layout = self.layout
        offset, skip = layout.seek_position(start_record)
        if self._buffer is not None:
            buf = self._buffer
            position = offset
            end = layout.records_end
            strings = layout.strings
            while position < end:
                record, position = _decode_record(buf, position, strings)
                if skip > 0:
                    skip -= 1
                    continue
                yield record
            return
        with open(self.path, "rb") as handle:
            handle.seek(offset)
            to_read = layout.records_end - offset
            buffer = b""
            position = 0
            while True:
                if position >= len(buffer):
                    if to_read <= 0:
                        return
                    buffer = handle.read(min(chunk_bytes, to_read))
                    to_read -= len(buffer)
                    position = 0
                try:
                    record, position = _decode_record(buffer, position,
                                                      layout.strings)
                except (IndexError, struct.error):
                    # Partial block at the end of the buffer (the flags-byte
                    # peek raises IndexError, fixed-layout unpacks raise
                    # struct.error): pull more bytes and retry.
                    if to_read <= 0:
                        raise BinaryTraceError(
                            f"truncated record block in "
                            f"{self.path!r}") from None
                    extra = handle.read(min(chunk_bytes, to_read))
                    to_read -= len(extra)
                    buffer = buffer[position:] + extra
                    position = 0
                    continue
                if skip > 0:
                    skip -= 1
                    continue
                yield record


def _skip_operands(buf, position: int, count: int) -> int:
    """Advance ``position`` past ``count`` encoded operands without decoding.

    The flags byte fully determines each operand's size (the same property
    the decode dispatch table exploits), so skipping costs one byte peek and
    one addition per operand.  Raises :class:`IndexError` / ``struct.error``
    on a partial operand so chunked callers can refill and retry, exactly
    like :func:`_decode_record`.
    """
    table = _OPERAND_TABLE
    for _ in range(count):
        flags = buf[position]
        entry = table[flags]
        if entry is not None:
            position += entry[1]
            continue
        if (flags >> 4) != _VALUE_BIG:
            raise BinaryTraceError(f"unknown operand value tag {flags >> 4}")
        position += _OPERAND_FIXED.size
        (digit_count,) = _U32.unpack_from(buf, position)
        position += 4 + digit_count
        if flags & 2:
            position += 8
    if position > len(buf):
        raise struct.error("operand overruns the buffer")
    return position


_NO_FULL_OPCODES: frozenset = frozenset()


def scan_record_headers(path: str,
                        layout: Optional[BinaryTraceLayout] = None,
                        full_opcodes: frozenset = _NO_FULL_OPCODES,
                        chunk_bytes: int = 1 << 20,
                        ) -> Iterator[Tuple[int, int, int, int, int,
                                            Optional[TraceRecord]]]:
    """Stream every record block's fixed header without decoding operands.

    This is the parallel fused engine's phase-1 fast path: the sequential
    scope scan needs each record's opcode, source line and function (to
    locate the main loop and mirror the call/return structure) but not its
    operands — except for the opcodes in ``full_opcodes`` (``Alloca``, whose
    operands carry the allocation size), which are decoded in full.

    Args:
        path: binary trace file.
        layout: pre-read footer (decoded from ``path`` when omitted).
        full_opcodes: raw opcode values whose records are fully decoded.
        chunk_bytes: read granularity; memory stays bounded by this.

    Yields:
        ``(dyn_id, opcode, line, function_id, callee_id, record)`` per
        record block, in file order.  ``function_id`` / ``callee_id`` are
        string-table ids (resolve via ``layout.strings``); ``record`` is the
        fully decoded :class:`~repro.trace.records.TraceRecord` for opcodes
        in ``full_opcodes`` and ``None`` otherwise.
    """
    layout = layout or read_layout(path)
    strings = layout.strings
    decode = _decode_record
    skip = _skip_operands
    fixed = _RECORD_FIXED
    fixed_size = fixed.size
    with open(path, "rb") as handle:
        handle.seek(layout.records_start)
        to_read = layout.records_end - layout.records_start
        buffer = b""
        position = 0
        while True:
            if position >= len(buffer):
                if to_read <= 0:
                    return
                buffer = handle.read(min(chunk_bytes, to_read))
                to_read -= len(buffer)
                position = 0
            try:
                (dyn_id, opcode, line, _column, _bb_label, _opcode_name_id,
                 function_id, _bb_id_id, callee_id, operand_count,
                 has_result) = fixed.unpack_from(buffer, position)
                if opcode in full_opcodes:
                    record, next_position = decode(buffer, position, strings)
                else:
                    record = None
                    next_position = skip(buffer, position + fixed_size,
                                         operand_count + has_result)
            except (IndexError, struct.error):
                # Partial block at the end of the chunk: refill and retry
                # (same protocol as TraceBinaryReader.iter_records).
                if to_read <= 0:
                    raise BinaryTraceError(
                        f"truncated record block in {path!r}") from None
                extra = handle.read(min(chunk_bytes, to_read))
                to_read -= len(extra)
                buffer = buffer[position:] + extra
                position = 0
                continue
            position = next_position
            yield dyn_id, opcode, line, function_id, callee_id, record


def read_trace_file_binary(path: str) -> Trace:
    """Convenience wrapper around :class:`TraceBinaryReader`."""
    return TraceBinaryReader(path).read()


def iter_trace_file_binary(path: str,
                           start_record: int = 0) -> Iterator[TraceRecord]:
    """Stream the records of a binary trace without materializing the trace."""
    return TraceBinaryReader(path).iter_records(start_record=start_record)


# --------------------------------------------------------------------------- #
# Partitioned (parallel) reading
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class BinaryPartition:
    """A byte range of record blocks, exact by construction."""

    index: int
    start: int
    end: int

    @property
    def size(self) -> int:
        return self.end - self.start


def partition_offsets_binary(path_or_layout: Union[str, BinaryTraceLayout],
                             num_partitions: int) -> List[BinaryPartition]:
    """Split the record region into block-aligned byte ranges via the index.

    Unlike the text partitioner there is no boundary *scanning*: every
    candidate boundary comes from the block index, so it is a record start
    by construction and the split is pure byte arithmetic.
    """
    if num_partitions < 1:
        raise ValueError("num_partitions must be >= 1")
    layout = (path_or_layout if isinstance(path_or_layout, BinaryTraceLayout)
              else read_layout(path_or_layout))
    start, end = layout.records_start, layout.records_end
    boundaries = [start]
    for part in range(1, num_partitions):
        target = start + ((end - start) * part) // num_partitions
        entry = bisect_right(layout.block_offsets, target)
        aligned = layout.block_offsets[entry] if entry < len(
            layout.block_offsets) else end
        boundaries.append(max(aligned, boundaries[-1]))
    boundaries.append(end)
    return [BinaryPartition(index=i, start=boundaries[i], end=boundaries[i + 1])
            for i in range(num_partitions)]


def _parse_binary_partition(path: str, start: int, end: int,
                            strings: Optional[List[str]] = None,
                            ) -> List[TraceRecord]:
    """Worker: decode the record blocks in ``[start, end)`` of ``path``."""
    if end <= start:
        return []
    if strings is None:  # process worker: re-read the footer itself
        strings = read_layout(path).strings
    with open(path, "rb") as handle:
        handle.seek(start)
        buf = _read_exact(handle, end - start)
    return decode_record_range(buf, 0, len(buf), strings)


def read_trace_file_binary_parallel(path: str, num_workers: int = 4,
                                    use_processes: bool = False) -> Trace:
    """Read a binary trace by decoding index-aligned partitions concurrently.

    Returns records in file order (identical, record for record, to
    :func:`read_trace_file_binary`); no post-hoc sort is needed because the
    partitions tile the record region in order.
    """
    layout = read_layout(path)
    partitions = partition_offsets_binary(layout, max(1, num_workers))

    if len(partitions) == 1 or num_workers <= 1:
        records = _parse_binary_partition(path, partitions[0].start,
                                          partitions[-1].end, layout.strings)
        return Trace(module_name=layout.module_name,
                     globals=list(layout.globals), records=records)

    executor_cls = ProcessPoolExecutor if use_processes else ThreadPoolExecutor
    chunks: List[Optional[List[TraceRecord]]] = [None] * len(partitions)
    shared_strings = None if use_processes else layout.strings
    with executor_cls(max_workers=num_workers) as executor:
        futures = {
            executor.submit(_parse_binary_partition, path, part.start,
                            part.end, shared_strings): part.index
            for part in partitions
        }
        for future, index in futures.items():
            chunks[index] = future.result()

    records: List[TraceRecord] = []
    for chunk in chunks:
        if chunk:
            records.extend(chunk)
    return Trace(module_name=layout.module_name, globals=list(layout.globals),
                 records=records)
